//! The experiment implementations — one function per table/figure of
//! the paper's §VI, shared by the CLI binaries and the criterion
//! wrappers.
//!
//! Absolute numbers differ from the paper (scaled datasets, different
//! machine, simulated I/O); the *shape* — which approach wins, by
//! roughly what factor, where the crossovers sit — is the reproduction
//! target. EXPERIMENTS.md records paper-vs-measured for each.

use crate::datasets::{dataset, BenchScale, DatasetKind};
use crate::queries;
use crate::report::{secs, Table};
use crate::runner::{
    bench_config, cold_hot, fresh_shared_system, fresh_system, fresh_system_with, time_it,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sommelier_core::cellar::CellarPolicyKind;
use sommelier_core::{LoadingMode, Result, Sommelier, SommelierConfig};
use sommelier_mseed::repo::days_for_sf;
use sommelier_storage::buffer::SimIo;
use sommelier_storage::time::days_from_civil;

/// First day of every synthetic dataset (2010-01-01), in days.
fn start_day() -> i64 {
    days_from_civil(2010, 1, 1)
}

/// Paper reference rows for Table II (files, segments, samples).
fn paper_table2(sf: u32) -> Option<(u64, u64, u64)> {
    match sf {
        1 => Some((160, 2_009, 1_273_454_901)),
        3 => Some((484, 7_802, 3_929_151_193)),
        9 => Some((1_464, 12_566, 11_912_163_036)),
        27 => Some((4_384, 74_526, 33_683_711_338)),
        _ => None,
    }
}

/// Table II — dataset record counts per scale factor.
pub fn table2(scale: &BenchScale) -> Table {
    let mut t = Table::new(
        "Table II: INGV-like dataset (measured vs paper structure)",
        &[
            "sf",
            "days",
            "files",
            "segments",
            "samples",
            "paper_files",
            "paper_segments",
            "paper_samples",
        ],
    );
    for &sf in &scale.sfs {
        let (_, stats) = dataset(scale, DatasetKind::Ingv, sf);
        let paper = paper_table2(sf);
        t.row(vec![
            format!("sf-{sf}"),
            days_for_sf(sf).to_string(),
            stats.files.to_string(),
            stats.segments.to_string(),
            stats.samples.to_string(),
            paper.map_or("-".into(), |p| p.0.to_string()),
            paper.map_or("-".into(), |p| p.1.to_string()),
            paper.map_or("-".into(), |p| p.2.to_string()),
        ]);
    }
    t
}

/// Table III + Figure 6 — storage footprints and loading-time
/// breakdowns for all five approaches (shared preparation work).
pub fn table3_and_fig6(scale: &BenchScale) -> Result<(Table, Table)> {
    let mut t3 = Table::new(
        "Table III: dataset sizes",
        &["sf", "mseed", "csv", "db", "keys_extra", "lazy_metadata"],
    );
    let mut f6 = Table::new(
        "Figure 6: loading-time breakdown (seconds)",
        &[
            "sf",
            "approach",
            "register",
            "chunks_to_csv",
            "csv_to_db",
            "chunks_to_db",
            "indexing",
            "dmd",
            "total",
        ],
    );
    for &sf in &scale.sfs {
        let (repo, stats) = dataset(scale, DatasetKind::Ingv, sf);
        let mut csv_bytes = 0u64;
        let mut db_bytes = 0u64;
        let mut keys_bytes = 0u64;
        let mut lazy_bytes = 0u64;
        for mode in LoadingMode::ALL {
            let guard = fresh_system(scale, &repo, mode)?;
            let p = &guard.prep;
            f6.row(vec![
                format!("sf-{sf}"),
                mode.label().to_string(),
                secs(p.register),
                secs(p.chunks_to_csv),
                secs(p.csv_to_db),
                secs(p.chunks_to_db),
                secs(p.indexing),
                secs(p.dmd_derivation),
                secs(p.total()),
            ]);
            match mode {
                LoadingMode::EagerCsv => csv_bytes = p.csv_bytes,
                LoadingMode::EagerPlain => db_bytes = guard.somm.db_bytes(),
                LoadingMode::EagerIndex => keys_bytes = guard.somm.index_bytes(),
                LoadingMode::Lazy => lazy_bytes = guard.somm.metadata_bytes(),
                LoadingMode::EagerDmd => {}
            }
        }
        t3.row(vec![
            format!("sf-{sf}"),
            stats.bytes.to_string(),
            csv_bytes.to_string(),
            db_bytes.to_string(),
            keys_bytes.to_string(),
            lazy_bytes.to_string(),
        ]);
    }
    Ok((t3, f6))
}

/// The four loading approaches Figure 7 compares (eager_csv loads the
/// same data as eager_plain, so the paper omits it here).
const FIG7_MODES: [LoadingMode; 4] = [
    LoadingMode::EagerPlain,
    LoadingMode::EagerIndex,
    LoadingMode::EagerDmd,
    LoadingMode::Lazy,
];

/// Figure 7a–e — cold/hot single-query time per query type, scale
/// factor, and loading approach. Each query type uses its own 2-day
/// window of one station (the paper's domain-expert queries), at a
/// different offset so DMd derivation is observed per type.
pub fn fig7(scale: &BenchScale) -> Result<Table> {
    let mut t = Table::new(
        "Figure 7: single-query performance, cold and hot (seconds)",
        &["sf", "query", "approach", "cold", "hot"],
    );
    let d0 = start_day();
    for &sf in &scale.sfs {
        let (repo, _) = dataset(scale, DatasetKind::Ingv, sf);
        for mode in FIG7_MODES {
            let guard = fresh_system(scale, &repo, mode)?;
            let queries: [(&str, String); 5] = [
                ("T1", queries::t1("ISK")),
                ("T2", {
                    let (a, b) = queries::day_range(d0 + 2, 2);
                    queries::t2("ISK", "BHE", a, b)
                }),
                ("T3", {
                    let (a, b) = queries::day_range(d0 + 6, 2);
                    queries::t3("ISK", "BHE", a, b)
                }),
                ("T4", {
                    let (a, b) = queries::day_range(d0 + 10, 2);
                    queries::t4("ISK", "BHE", a, b)
                }),
                ("T5", {
                    let (a, b) = queries::day_range(d0 + 14, 2);
                    queries::t5("ISK", "BHE", a, b, 10_000.0, 10.0)
                }),
            ];
            for (name, sql) in &queries {
                let (cold, hot) = cold_hot(&guard.somm, sql, scale.runs)?;
                t.row(vec![
                    format!("sf-{sf}"),
                    name.to_string(),
                    mode.label().to_string(),
                    secs(cold),
                    secs(hot),
                ]);
            }
        }
    }
    Ok(t)
}

/// The approaches Figure 8 sweeps.
const FIG8_MODES: [LoadingMode; 4] = [
    LoadingMode::EagerDmd,
    LoadingMode::EagerIndex,
    LoadingMode::EagerPlain,
    LoadingMode::Lazy,
];

/// Figure 8 — data-to-insight time (preparation + first query) over
/// query selectivity, on the FIAM dataset, for T4 and T5.
///
/// One system is prepared per (sf, approach); the per-selectivity
/// "first query" is emulated by flushing caches and resetting the
/// incrementally derived metadata before each point (equivalent to a
/// fresh prepare, without re-paying the load).
pub fn fig8(scale: &BenchScale) -> Result<Table> {
    let mut t = Table::new(
        "Figure 8: data-to-insight time vs query selectivity (FIAM, seconds)",
        &[
            "sf",
            "query",
            "approach",
            "selectivity_pct",
            "prep",
            "first_query",
            "data_to_insight",
        ],
    );
    let (lo, hi) = scale.sf_extremes();
    let sfs = if lo == hi { vec![lo] } else { vec![lo, hi] };
    let d0 = start_day();
    for &sf in &sfs {
        let (repo, _) = dataset(scale, DatasetKind::Fiam, sf);
        let total_days = days_for_sf(sf) as i64;
        for qtype in ["T4", "T5"] {
            for mode in FIG8_MODES {
                let guard = fresh_system(scale, &repo, mode)?;
                let prep = guard.prep.total();
                for &sel in &scale.selectivities {
                    let query_time = if sel == 0 {
                        std::time::Duration::ZERO
                    } else {
                        guard.somm.flush_caches();
                        if !mode.materializes_dmd() {
                            guard.somm.reset_dmd()?;
                        }
                        let days = ((total_days * sel as i64) / 100).max(1);
                        let (a, b) = queries::day_range(d0, days);
                        let sql = if qtype == "T4" {
                            queries::t4_selectivity(a, b)
                        } else {
                            queries::t5_selectivity(a, b)
                        };
                        let (r, d) = time_it(|| guard.somm.query(&sql));
                        r?;
                        d
                    };
                    t.row(vec![
                        format!("sf-{sf}"),
                        qtype.to_string(),
                        mode.label().to_string(),
                        sel.to_string(),
                        secs(prep),
                        secs(query_time),
                        secs(prep + query_time),
                    ]);
                }
            }
        }
    }
    Ok(t)
}

/// Figure 9 — cumulative workload time over workload selectivity
/// (FIAM dataset; fixed 2.5 % query selectivity; T3 against eager_dmd,
/// T4 against eager_index, both against lazy).
pub fn fig9(scale: &BenchScale) -> Result<Table> {
    let mut t = Table::new(
        "Figure 9: cumulative workload time vs workload selectivity (FIAM, seconds)",
        &[
            "sf",
            "query",
            "approach",
            "queries",
            "workload_selectivity_pct",
            "prep",
            "workload",
            "cumulative",
        ],
    );
    let (lo, hi) = scale.sf_extremes();
    let sfs = if lo == hi { vec![lo] } else { vec![lo, hi] };
    let d0 = start_day();
    for &sf in &sfs {
        let (repo, _) = dataset(scale, DatasetKind::Fiam, sf);
        let total_days = days_for_sf(sf) as i64;
        // 2.5 % query selectivity, at least one day.
        let qdays = ((total_days * 25) / 1000).max(1);
        for (qtype, eager_mode) in
            [("T3", LoadingMode::EagerDmd), ("T4", LoadingMode::EagerIndex)]
        {
            for mode in [eager_mode, LoadingMode::Lazy] {
                let guard = fresh_system(scale, &repo, mode)?;
                let prep = guard.prep.total();
                for &n in &scale.workload_queries {
                    for &wsel in &scale.workload_selectivities {
                        let mut workload_time = std::time::Duration::ZERO;
                        if wsel > 0 {
                            guard.somm.flush_caches();
                            if !mode.materializes_dmd() {
                                guard.somm.reset_dmd()?;
                            }
                            let wdays = ((total_days * wsel as i64) / 100).max(qdays);
                            let mut rng = SmallRng::seed_from_u64(
                                0xF19_u64
                                    ^ (sf as u64) << 32
                                    ^ (n as u64) << 16
                                    ^ wsel as u64
                                    ^ if qtype == "T3" { 1 } else { 2 },
                            );
                            for _ in 0..n {
                                let span = (wdays - qdays).max(0);
                                let offset =
                                    if span == 0 { 0 } else { rng.random_range(0..=span) };
                                let (a, b) = queries::day_range(d0 + offset, qdays);
                                let sql = if qtype == "T3" {
                                    queries::t3_selectivity(a, b)
                                } else {
                                    queries::t4_selectivity(a, b)
                                };
                                let (r, d) = time_it(|| guard.somm.query(&sql));
                                r?;
                                workload_time += d;
                            }
                        }
                        t.row(vec![
                            format!("sf-{sf}"),
                            qtype.to_string(),
                            mode.label().to_string(),
                            n.to_string(),
                            wsel.to_string(),
                            secs(prep),
                            secs(workload_time),
                            secs(prep + workload_time),
                        ]);
                    }
                }
            }
        }
    }
    Ok(t)
}

/// The budget fractions the cellar sweep compares (percent of the
/// workload's total decoded bytes).
const CELLAR_FRACTIONS: [u32; 3] = [100, 50, 10];

/// Run the repeated sliding-window workload, returning its wall time
/// and a correctness checksum (sum of the per-query averages).
fn cellar_workload(
    somm: &Sommelier,
    total_days: i64,
    rounds: usize,
) -> Result<(std::time::Duration, f64)> {
    let d0 = start_day();
    let window = 2i64.min(total_days);
    let mut checksum = 0.0;
    let t = std::time::Instant::now();
    for _ in 0..rounds {
        let mut day = 0i64;
        while day + window <= total_days {
            let (a, b) = queries::day_range(d0 + day, window);
            let r = somm.query(&queries::t4("FIAM", "HHZ", a, b))?;
            if r.relation.rows() == 1 {
                if let sommelier_storage::Value::Float(v) = r
                    .relation
                    .value(0, "avg")
                    .map_err(sommelier_core::SommelierError::Engine)?
                {
                    checksum += v;
                }
            }
            day += window;
        }
    }
    Ok((t.elapsed(), checksum))
}

/// Cellar sweep — bounded-memory residency under a repeated-query
/// workload. A calibration pass with an unbounded budget measures the
/// workload's total decoded bytes; budgets at 100 %, 50 % and 10 % of
/// that are then swept for both eviction policies, reporting
/// hit/evict/reload counts alongside wall-clock. The `checksum` column
/// must be identical in every row: bounding memory must never change
/// answers.
pub fn cellar_sweep(scale: &BenchScale) -> Result<Table> {
    let mut t = Table::new(
        "Cellar sweep: budget vs hit/evict/reload and wall-clock (FIAM, lazy)",
        &[
            "sf",
            "policy",
            "budget_pct",
            "budget_bytes",
            "workload_s",
            "hits",
            "loads",
            "reloads",
            "evictions",
            "peak_resident",
            "resident_after",
            "checksum",
        ],
    );
    let (sf, _) = scale.sf_extremes();
    let (repo, _) = dataset(scale, DatasetKind::Fiam, sf);
    let total_days = days_for_sf(sf) as i64;
    let rounds = scale.runs.max(2);

    // Calibration: unbounded budget → the workload's full decoded size.
    let unbounded = SommelierConfig { cellar_bytes: Some(usize::MAX), ..bench_config(scale) };
    let guard = fresh_system_with(scale, &repo, LoadingMode::Lazy, unbounded)?;
    let (wall, reference_checksum) = cellar_workload(&guard.somm, total_days, rounds)?;
    let cellar = guard.somm.cellar().expect("prepared");
    let total_bytes = cellar.peak_resident_bytes().max(1);
    let s = cellar.stats();
    t.row(vec![
        format!("sf-{sf}"),
        "unbounded".into(),
        "-".into(),
        total_bytes.to_string(),
        secs(wall),
        s.hits.to_string(),
        s.loads.to_string(),
        s.reloads.to_string(),
        s.evictions.to_string(),
        cellar.peak_resident_bytes().to_string(),
        cellar.resident_bytes().to_string(),
        format!("{reference_checksum:.6e}"),
    ]);
    drop(guard);

    for policy in [CellarPolicyKind::Lru, CellarPolicyKind::CostAware] {
        for pct in CELLAR_FRACTIONS {
            let budget = (total_bytes as u64 * pct as u64 / 100).max(1) as usize;
            let config = SommelierConfig {
                cellar_bytes: Some(budget),
                cellar_policy: policy,
                ..bench_config(scale)
            };
            let guard = fresh_system_with(scale, &repo, LoadingMode::Lazy, config)?;
            let (wall, checksum) = cellar_workload(&guard.somm, total_days, rounds)?;
            let cellar = guard.somm.cellar().expect("prepared");
            let s = cellar.stats();
            t.row(vec![
                format!("sf-{sf}"),
                policy.label().to_string(),
                pct.to_string(),
                budget.to_string(),
                secs(wall),
                s.hits.to_string(),
                s.loads.to_string(),
                s.reloads.to_string(),
                s.evictions.to_string(),
                cellar.peak_resident_bytes().to_string(),
                cellar.resident_bytes().to_string(),
                format!("{checksum:.6e}"),
            ]);
        }
    }
    Ok(t)
}

/// Worker counts the stage-2 parallelism sweep compares.
const STAGE2_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Stage-2 morsel parallelism sweep — worker counts × selection/partial-
/// aggregation pushdown on multi-chunk aggregate queries (T4 and T5
/// over the whole FIAM range, lazy loading).
///
/// Per configuration the query runs `runs` times with the caches
/// flushed before each run, so every run pays decode + stage-2
/// execution — the fused per-chunk wave this sweep measures. Reported
/// per row: average wall-clock, the load/stage-2 split, how many rows
/// stage 2 materialized into a union (`union_rows`, 0 when partial
/// aggregation fused), how many chunks went through per-chunk pipelines
/// (`partial_chunks`), and the result as exact bits (`result_bits`) —
/// identical `result_bits` across worker counts of one (query,
/// pushdown) group is the serial ≡ parallel guarantee.
pub fn stage2_parallel(scale: &BenchScale) -> Result<Table> {
    let mut t = Table::new(
        "Stage-2 morsel parallelism: workers × pushdown on multi-chunk aggregates \
         (FIAM, lazy)",
        &[
            "sf",
            "query",
            "workers",
            "pushdown",
            "wall_s",
            "load_s",
            "stage2_s",
            "union_rows",
            "partial_chunks",
            "files_loaded",
            "result_bits",
        ],
    );
    let (sf, _) = scale.sf_extremes();
    let (repo, _) = dataset(scale, DatasetKind::Fiam, sf);
    let total_days = days_for_sf(sf) as i64;
    let d0 = start_day();
    let (a, b) = queries::day_range(d0, total_days);
    let sqls = [("T4", queries::t4_selectivity(a, b)), ("T5", queries::t5_selectivity(a, b))];
    for (name, sql) in &sqls {
        for pushdown in [true, false] {
            for &workers in &STAGE2_WORKERS {
                let config = SommelierConfig {
                    max_threads: workers,
                    chunk_pushdown: pushdown,
                    ..bench_config(scale)
                };
                let guard = fresh_system_with(scale, &repo, LoadingMode::Lazy, config)?;
                // Warm run: derive any DMd the query needs (T5's windows)
                // so the timed runs measure chunk work, not derivation.
                guard.somm.query(sql)?;
                let runs = scale.runs.max(1);
                let mut wall = std::time::Duration::ZERO;
                let mut load = std::time::Duration::ZERO;
                let mut stage2 = std::time::Duration::ZERO;
                let mut last: Option<sommelier_core::QueryResult> = None;
                for _ in 0..runs {
                    // Flush residency: every run decodes its chunks.
                    guard.somm.flush_caches();
                    let (r, d) = time_it(|| guard.somm.query(sql));
                    let r = r?;
                    wall += d;
                    load += r.stats.load;
                    stage2 += r.stats.stage2;
                    last = Some(r);
                }
                let last = last.expect("runs >= 1");
                let avg = match last
                    .relation
                    .value(0, "avg")
                    .map_err(sommelier_core::SommelierError::Engine)?
                {
                    sommelier_storage::Value::Float(v) => v,
                    other => {
                        return Err(sommelier_core::SommelierError::Usage(format!(
                            "expected a float AVG, got {other:?}"
                        )))
                    }
                };
                t.row(vec![
                    format!("sf-{sf}"),
                    name.to_string(),
                    workers.to_string(),
                    if pushdown { "on" } else { "off" }.to_string(),
                    secs(wall / runs as u32),
                    secs(load / runs as u32),
                    secs(stage2 / runs as u32),
                    last.stats.rows_union_materialized.to_string(),
                    last.stats.partial_agg_chunks.to_string(),
                    last.stats.files_loaded.to_string(),
                    format!("{:016x}", avg.to_bits()),
                ]);
            }
        }
    }
    Ok(t)
}

/// The knob combinations the optimizer sweep compares:
/// (projection pushdown, zone-map pruning).
const OPT_KNOBS: [(bool, bool); 4] =
    [(false, false), (true, false), (false, true), (true, true)];

/// One optimizer-sweep measurement: run `sql` `runs` times (caches
/// flushed, so every run decodes) and report counters + result bits.
fn optimizer_row(
    t: &mut Table,
    adapter: &str,
    query: &str,
    (projection, zone): (bool, bool),
    somm: &Sommelier,
    sql: &str,
    runs: usize,
) -> Result<()> {
    let runs = runs.max(1);
    let mut wall = std::time::Duration::ZERO;
    let mut last = None;
    for _ in 0..runs {
        somm.flush_caches();
        let (r, d) = time_it(|| somm.query(sql));
        last = Some(r?);
        wall += d;
    }
    let last = last.expect("runs >= 1");
    let bits = match last
        .relation
        .value(0, last.relation.names().first().expect("one output"))
        .map_err(sommelier_core::SommelierError::Engine)?
    {
        sommelier_storage::Value::Float(v) => format!("f{:016x}", v.to_bits()),
        other => format!("{other:?}"),
    };
    t.row(vec![
        adapter.to_string(),
        query.to_string(),
        if projection { "on" } else { "off" }.to_string(),
        if zone { "on" } else { "off" }.to_string(),
        secs(wall / runs as u32),
        last.stats.files_selected.to_string(),
        last.stats.files_pruned.to_string(),
        last.stats.files_loaded.to_string(),
        last.stats.rows_loaded.to_string(),
        last.stats.bytes_loaded.to_string(),
        bits,
    ]);
    Ok(())
}

/// The per-file `E.val` maxima threshold for the event-log zone query
/// (see [`sommelier_core::adapters::value_stats_midpoint`]): a
/// midpoint ensures the predicate contradicts some files' zones but
/// not others'.
fn eventlog_threshold(logs: &std::path::Path, host: &str) -> Result<f64> {
    sommelier_core::adapters::value_stats_midpoint(logs, Some(host))?.ok_or_else(|| {
        sommelier_core::SommelierError::Usage(
            "event-log value maxima do not vary; cannot pick a pruning threshold".into(),
        )
    })
}

/// Optimizer sweep — {projection pushdown} × {zone-map pruning} on
/// both built-in adapters, over one zone-prunable T4 each:
///
/// * **mseed** — `t4_filezone` (FIAM, first day): the segment-free
///   view gets no metadata inference, so stage 1 selects every FIAM
///   chunk and only zone maps can prune; projection drops `D.seg_id`
///   from the decode.
/// * **eventlog** — a value-threshold scan whose bound comes from the
///   headers' per-file statistics; zone maps prune the quiet files,
///   projection drops `E.ts` from the decode.
///
/// Runs with the recycler off (every run decodes; the non-retaining
/// cellar honors the decode projection). `result_bits` must be
/// identical within each adapter: neither pass may change answers.
/// With `sim_chunk_io` active, pruned chunks also skip their simulated
/// per-file seek, so wall-clock scales with `files_loaded`.
pub fn optimizer_sweep(scale: &BenchScale) -> Result<Table> {
    use sommelier_core::adapters::{generate_event_logs, EventLogAdapter, EventLogSpec};
    let mut t = Table::new(
        "Optimizer sweep: projection pushdown × zone-map pruning (recycler off)",
        &[
            "adapter",
            "query",
            "projection",
            "zone_pruning",
            "wall_s",
            "files_selected",
            "files_pruned",
            "files_loaded",
            "rows_decoded",
            "bytes_decoded",
            "result_bits",
        ],
    );
    // ---- mSEED (FIAM) --------------------------------------------
    let (sf, _) = scale.sf_extremes();
    let (repo, _) = dataset(scale, DatasetKind::Fiam, sf);
    let (a, b) = queries::day_range(start_day(), 1);
    let mseed_sql = queries::t4_filezone("FIAM", a, b);
    for (projection, zone) in OPT_KNOBS {
        let config = SommelierConfig {
            use_recycler: false,
            projection_pushdown: projection,
            zone_map_pruning: zone,
            ..bench_config(scale)
        };
        let guard = fresh_system_with(scale, &repo, LoadingMode::Lazy, config)?;
        optimizer_row(
            &mut t,
            "mseed",
            "T4/filedataview",
            (projection, zone),
            &guard.somm,
            &mseed_sql,
            scale.runs,
        )?;
    }
    // ---- Event log -----------------------------------------------
    let logs = scale.data_dir.join("optimizer-eventlog");
    if !logs.join("web-1-api-20110301.evl").exists() {
        generate_event_logs(&logs, &EventLogSpec::small(8, 256))?;
    }
    let threshold = eventlog_threshold(&logs, "web-1")?;
    let evl_sql = format!(
        "SELECT COUNT(E.val) AS n FROM eventview \
         WHERE G.host = 'web-1' AND E.val > {threshold}"
    );
    for (projection, zone) in OPT_KNOBS {
        let config = SommelierConfig {
            use_recycler: false,
            projection_pushdown: projection,
            zone_map_pruning: zone,
            ..bench_config(scale)
        };
        let somm = Sommelier::builder()
            .source(EventLogAdapter::new(&logs))
            .config(config)
            .build()?;
        somm.prepare(LoadingMode::Lazy)?;
        optimizer_row(
            &mut t,
            "eventlog",
            "T4/eventview",
            (projection, zone),
            &somm,
            &evl_sql,
            scale.runs,
        )?;
    }
    Ok(t)
}

/// Decode hot path sweep — two measurements behind `load_s` being ~95 %
/// of lazy query wall time after the stage-2 optimizations:
///
/// 1. **decode** — T4/T5 (sf-1, recycler off, 1 worker, simulated I/O
///    off so the decode itself is what's timed): the single-pass
///    arena-backed columnar decode vs the retained reference decode
///    (per-segment relations + unions, the pre-PR code path).
///    `result_bits` must be identical in every row, and must match the
///    committed stage-2 baseline.
/// 2. **stage1** — candidate selection over the `sf-reg` registry
///    (`SOMM_REG_CHUNKS` registered chunks, headers only): the sorted
///    zone interval index vs the linear per-chunk registry scan, on a
///    two-day window. The candidate sets must be identical.
pub fn decode_hotpath(scale: &BenchScale) -> Result<Table> {
    decode_hotpath_sized(scale, crate::datasets::sf_reg_chunks())
}

/// [`decode_hotpath`] with an explicit `sf-reg` registry size (the
/// criterion wrapper runs a scaled-down registry; the `decode` binary
/// uses the full `SOMM_REG_CHUNKS`).
pub fn decode_hotpath_sized(scale: &BenchScale, reg_chunks: usize) -> Result<Table> {
    use crate::datasets::sf_reg_registry;
    use crate::runner::fresh_system_with_adapter;
    use sommelier_engine::{CmpOp, ZoneConstraint};
    use sommelier_mseed::{MseedAdapter, Repository};

    let mut t = Table::new(
        "Decode hot path: single-pass decode vs reference, indexed vs linear stage-1 \
         selection",
        &[
            "experiment",
            "query",
            "variant",
            "wall_s",
            "load_s",
            "rows_decoded",
            "files",
            "speedup",
            "result_bits",
        ],
    );

    // ---- 1. Chunk decode (FIAM sf-1, recycler off, 1 worker) -------
    let sf = 1;
    let (repo, _) = dataset(scale, DatasetKind::Fiam, sf);
    let total_days = days_for_sf(sf) as i64;
    let (a, b) = queries::day_range(start_day(), total_days);
    let sqls = [("T4", queries::t4_selectivity(a, b)), ("T5", queries::t5_selectivity(a, b))];
    // Decode-bound configuration: no recycler (every run decodes), one
    // worker (serial decode cost, not parallel overlap), simulated I/O
    // off (the sleep would swamp the decode being measured).
    let config = || SommelierConfig {
        use_recycler: false,
        max_threads: 1,
        sim_io: None,
        sim_chunk_io: None,
        ..bench_config(scale)
    };
    for (name, sql) in &sqls {
        // The recorded PR-4 load_s under this exact configuration
        // (measured from a build of the PR-4 commit — see
        // EXPERIMENTS.md for the recipe). When present it is the
        // speedup baseline and appears as its own row; otherwise the
        // in-run reference-decode ablation is the baseline.
        let pr4: Option<f64> =
            std::env::var(format!("SOMM_PR4_LOAD_{name}")).ok().and_then(|v| v.parse().ok());
        if let Some(load) = pr4 {
            t.row(vec![
                "decode".into(),
                name.to_string(),
                "pr4_baseline".into(),
                "-".into(),
                format!("{load:.6}"),
                "-".into(),
                "-".into(),
                "-".into(),
                "recorded from the PR-4 build".into(),
            ]);
        }
        let mut reference_load = None;
        for reference in [true, false] {
            let adapter = MseedAdapter::new(Repository::at(repo.dir()));
            let adapter = if reference { adapter.with_reference_decode() } else { adapter };
            let guard =
                fresh_system_with_adapter(scale, adapter, LoadingMode::Lazy, config())?;
            // Warm run: derive any DMd the query needs (T5's windows)
            // so the timed runs measure chunk decode, not derivation.
            guard.somm.query(sql)?;
            let runs = scale.runs.max(1);
            let mut wall = std::time::Duration::ZERO;
            let mut load = std::time::Duration::ZERO;
            let mut last = None;
            for _ in 0..runs {
                guard.somm.flush_caches();
                let (r, d) = time_it(|| guard.somm.query(sql));
                let r = r?;
                wall += d;
                load += r.stats.load;
                last = Some(r);
            }
            let last = last.expect("runs >= 1");
            let avg = match last
                .relation
                .value(0, "avg")
                .map_err(sommelier_core::SommelierError::Engine)?
            {
                sommelier_storage::Value::Float(v) => v,
                other => {
                    return Err(sommelier_core::SommelierError::Usage(format!(
                        "expected a float AVG, got {other:?}"
                    )))
                }
            };
            let load = load / runs as u32;
            let speedup = match (reference_load, pr4) {
                (None, _) => {
                    reference_load = Some(load);
                    "-".to_string()
                }
                // Speedup vs the recorded PR-4 load when available,
                // else vs the in-run reference-decode ablation.
                (Some(reference), baseline) => {
                    let baseline = baseline.unwrap_or(reference.as_secs_f64());
                    format!("{:.2}", baseline / load.as_secs_f64().max(1e-12))
                }
            };
            t.row(vec![
                "decode".into(),
                name.to_string(),
                if reference { "reference" } else { "single_pass" }.to_string(),
                secs(wall / runs as u32),
                secs(load),
                last.stats.rows_loaded.to_string(),
                last.stats.files_loaded.to_string(),
                speedup,
                format!("{:016x}", avg.to_bits()),
            ]);
        }
    }

    // ---- 2. Stage-1 candidate selection (sf-reg, headers only) -----
    let n = reg_chunks.max(1);
    let registry = sf_reg_registry(n);
    // A two-day window, mid-registry: the indexed path must find the
    // handful of covering chunks without touching the other ~n entries.
    let days = (n / 4) as i64;
    let d0 = 14_610 + days / 2;
    let (lo, hi) = queries::day_range(d0, 2.min(days.max(1)));
    let constraints = vec![
        ZoneConstraint {
            column: "D.sample_time".into(),
            op: CmpOp::Ge,
            value: sommelier_storage::Value::Time(lo),
        },
        ZoneConstraint {
            column: "D.sample_time".into(),
            op: CmpOp::Lt,
            value: sommelier_storage::Value::Time(hi),
        },
    ];
    let reps = (scale.runs.max(1) * 5).max(10);
    let (linear, linear_t) = time_it(|| {
        let mut last = Vec::new();
        for _ in 0..reps {
            last = registry.linear_candidate_positions(&constraints);
        }
        last
    });
    let (indexed, indexed_t) = time_it(|| {
        let mut last = Vec::new();
        for _ in 0..reps {
            last = registry
                .indexed_candidate_positions(&constraints)
                .expect("sf-reg zones are indexed");
        }
        last
    });
    if indexed != linear {
        return Err(sommelier_core::SommelierError::Usage(format!(
            "indexed candidates diverge from the linear scan: {} vs {} hits",
            indexed.len(),
            linear.len()
        )));
    }
    let speedup = linear_t.as_secs_f64() / indexed_t.as_secs_f64().max(1e-12);
    for (variant, duration) in [("linear_scan", linear_t), ("interval_index", indexed_t)] {
        t.row(vec![
            "stage1".into(),
            format!("{n}-chunk window"),
            variant.to_string(),
            secs(duration / reps as u32),
            "-".into(),
            "-".into(),
            indexed.len().to_string(),
            if variant == "interval_index" { format!("{speedup:.1}") } else { "-".into() },
            format!("hits:{}", indexed.len()),
        ]);
    }
    Ok(t)
}

/// Observability overhead: the decode-bound T4/T5 sweep (FIAM sf-1,
/// recycler off, 1 worker, simulated I/O off — the `decode_hotpath`
/// configuration) at each [`sommelier_core::ObsLevel`]. `Off` is the baseline;
/// `Counters` (the default level) must stay within noise of it, and
/// `result_bits` must be byte-identical across all three levels.
pub fn obs_overhead(scale: &BenchScale) -> Result<Table> {
    use crate::runner::fresh_system_with_adapter;
    use sommelier_core::ObsLevel;
    use sommelier_mseed::{MseedAdapter, Repository};

    let mut t = Table::new(
        "Observability overhead: T4/T5 decode-bound sweep at Off / Counters / Spans",
        &[
            "experiment",
            "query",
            "level",
            "wall_s",
            "load_s",
            "runs",
            "overhead_pct",
            "result_bits",
        ],
    );
    let sf = 1;
    let (repo, _) = dataset(scale, DatasetKind::Fiam, sf);
    let total_days = days_for_sf(sf) as i64;
    let (a, b) = queries::day_range(start_day(), total_days);
    let sqls = [("T4", queries::t4_selectivity(a, b)), ("T5", queries::t5_selectivity(a, b))];
    let config = |level: ObsLevel| SommelierConfig {
        use_recycler: false,
        max_threads: 1,
        sim_io: None,
        sim_chunk_io: None,
        observability: level,
        ..bench_config(scale)
    };
    for (name, sql) in &sqls {
        let mut off_wall: Option<f64> = None;
        for level in [ObsLevel::Off, ObsLevel::Counters, ObsLevel::Spans] {
            let adapter = MseedAdapter::new(Repository::at(repo.dir()));
            let guard =
                fresh_system_with_adapter(scale, adapter, LoadingMode::Lazy, config(level))?;
            // Warm run: derive any DMd the query needs (T5's windows)
            // so the timed runs measure the observed hot path only.
            guard.somm.query(sql)?;
            let runs = scale.runs.max(1);
            // Best-of-N: the minimum is robust to scheduler noise,
            // which at ~5 ms per run otherwise swamps the sub-percent
            // counter overhead being measured.
            let mut wall = std::time::Duration::MAX;
            let mut load = std::time::Duration::MAX;
            let mut last = None;
            for _ in 0..runs {
                guard.somm.flush_caches();
                let (r, d) = time_it(|| guard.somm.query(sql));
                let r = r?;
                wall = wall.min(d);
                load = load.min(r.stats.load);
                last = Some(r);
            }
            let last = last.expect("runs >= 1");
            let avg = match last
                .relation
                .value(0, "avg")
                .map_err(sommelier_core::SommelierError::Engine)?
            {
                sommelier_storage::Value::Float(v) => v,
                other => {
                    return Err(sommelier_core::SommelierError::Usage(format!(
                        "expected a float AVG, got {other:?}"
                    )))
                }
            };
            let wall_s = wall.as_secs_f64();
            let overhead = match off_wall {
                None => {
                    off_wall = Some(wall_s);
                    "-".to_string()
                }
                Some(base) => format!("{:+.2}", 100.0 * (wall_s - base) / base.max(1e-12)),
            };
            t.row(vec![
                "obs_overhead".into(),
                name.to_string(),
                format!("{level:?}"),
                format!("{wall_s:.6}"),
                secs(load),
                runs.to_string(),
                overhead,
                format!("{:016x}", avg.to_bits()),
            ]);
        }
    }
    Ok(t)
}

/// Fault-tolerance sweep: T4 over the full FIAM sf-1 window (touches
/// every chunk) under rising transient-fault rates × retry budgets,
/// plus a degradation section where one chunk is permanently corrupt
/// and the query runs under `SkipUnreadable`.
///
/// Each run gets a *fresh* system with a run-specific injector seed —
/// the injector is deterministic per `(seed, uri, attempt)`, so reusing
/// one system would replay identical faults (and the per-chunk
/// transient cap would drain after the first run). Expected shape:
/// budget 1 fails roughly at the per-query fault probability, the
/// default budget 4 rides out the per-chunk cap of 2 and recovers to
/// 100% success at a p99 cost of a few backoffs, and `SkipUnreadable`
/// converts the remaining permanent failures into degraded answers.
pub fn fault_sweep(scale: &BenchScale) -> Result<Table> {
    use sommelier_core::{DegradationPolicy, FaultPlan, QueryOptions, RetryPolicy};

    let mut t = Table::new(
        "Fault tolerance: transient rate x retry budget -> success / p99 / degraded \
         (FIAM sf-1, lazy, T4 full window)",
        &[
            "mode",
            "rate",
            "budget",
            "runs",
            "success_pct",
            "degraded_pct",
            "p50_s",
            "p99_s",
            "retries",
            "faults",
        ],
    );
    let sf = 1;
    let (repo, _) = dataset(scale, DatasetKind::Fiam, sf);
    let total_days = days_for_sf(sf) as i64;
    let (a, b) = queries::day_range(start_day(), total_days);
    let sql = queries::t4_selectivity(a, b);
    let runs = (scale.runs * 5).max(12);

    // (mode, transient rate, retry budget, corrupt one chunk?)
    let mut cells: Vec<(&str, f64, u32, bool)> = Vec::new();
    for &rate in &[0.0, 0.25, 0.5] {
        for &budget in &[1u32, 2, 4] {
            if rate == 0.0 && budget != 1 {
                continue; // fault-free baseline needs one row only
            }
            cells.push(("strict", rate, budget, false));
        }
    }
    cells.push(("skip", 0.5, 4, true));
    cells.push(("strict", 0.5, 4, true));

    for (mode, rate, budget, corrupt) in cells {
        let mut ok = 0usize;
        let mut degraded = 0usize;
        let mut lat = Vec::new();
        let mut faults = 0u64;
        let retries_before = sommelier_core::fault::io_retries();
        for run in 0..runs {
            let mut plan = FaultPlan::transient(rate);
            plan.seed = 0x5eed_f00d ^ (run as u64).wrapping_mul(0x9e37_79b9);
            if corrupt {
                // Sacrifice a deterministic victim chunk: the first
                // miniSEED file of the repository in sorted order (the
                // dir also holds the dataset's `.complete` marker).
                let mut files: Vec<_> = walk_files(repo.dir());
                files.retain(|f| f.ends_with(".msd"));
                files.sort();
                plan.corrupt_uris = vec![files.first().expect("non-empty repo").clone()];
            }
            let config = SommelierConfig {
                sim_io: None,
                sim_chunk_io: None,
                fault_plan: Some(plan),
                io_retry: RetryPolicy { max_attempts: budget, ..RetryPolicy::default() },
                ..bench_config(scale)
            };
            let guard = fresh_system_with(scale, &repo, LoadingMode::Lazy, config)?;
            let opts = QueryOptions {
                degradation: if mode == "skip" {
                    DegradationPolicy::SkipUnreadable
                } else {
                    DegradationPolicy::Strict
                },
                ..Default::default()
            };
            let (r, d) = time_it(|| guard.somm.query_opts(&sql, &opts));
            match r {
                Ok(res) => {
                    ok += 1;
                    if res.degraded.is_some() {
                        degraded += 1;
                    }
                    lat.push(d.as_secs_f64());
                }
                Err(e) => {
                    // Only injected faults may fail a run; anything
                    // else is a bench bug worth surfacing loudly.
                    assert!(
                        e.to_string().contains("injected")
                            || e.to_string().contains("failed to load"),
                        "unexpected failure: {e}"
                    );
                }
            }
            faults += guard.somm.fault_counts().map(|c| c.errors()).unwrap_or(0);
        }
        lat.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let q = |p: f64| -> String {
            if lat.is_empty() {
                return "-".into();
            }
            let i = ((p * lat.len() as f64).ceil() as usize).clamp(1, lat.len()) - 1;
            format!("{:.6}", lat[i])
        };
        t.row(vec![
            mode.to_string(),
            format!("{rate:.2}"),
            budget.to_string(),
            runs.to_string(),
            format!("{:.1}", 100.0 * ok as f64 / runs as f64),
            format!("{:.1}", 100.0 * degraded as f64 / runs as f64),
            q(0.50),
            q(0.99),
            (sommelier_core::fault::io_retries() - retries_before).to_string(),
            faults.to_string(),
        ]);
    }
    Ok(t)
}

/// Every file under `dir`, recursively, as chunk-uri strings (the
/// adapters use the file path as the chunk uri).
fn walk_files(dir: &std::path::Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        if let Ok(entries) = std::fs::read_dir(&d) {
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    stack.push(p);
                } else {
                    out.push(p.to_string_lossy().into_owned());
                }
            }
        }
    }
    out
}

/// FNV-1a hash of a string (stable across runs and platforms; used to
/// fingerprint query results order-independently).
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Row-order-independent fingerprint of a relation, bound to the
/// query's workload position `i`: schema + row count hashed once, then
/// an XOR over per-row hashes. Row-returning queries whose waves span
/// several chunks concatenate per-chunk results in completion order,
/// so row *order* is scheduling-dependent while the row *multiset* is
/// not — this is exactly the equality the traffic driver must check.
fn relation_fingerprint(i: usize, rel: &sommelier_engine::Relation) -> u64 {
    use std::fmt::Write;
    let mut bits = fnv1a(&format!("{i}:cols={:?}:rows={}", rel.names(), rel.rows()));
    for r in 0..rel.rows() {
        let mut row = String::new();
        for (name, col) in rel.columns() {
            let _ = write!(row, "{name}={:?};", col.get(r));
        }
        bits ^= fnv1a(&format!("{i}:{row}"));
    }
    bits
}

/// Query-server traffic driver: a fixed mixed T1–T5 workload replayed
/// through the session API at rising client counts, comparing the
/// shared morsel scheduler (plus admission control) against the legacy
/// one-scoped-pool-per-query baseline.
///
/// Every cell executes the *same* global workload — clients pull the
/// next query from a shared cursor — so `result_bits` (an XOR of
/// per-query row-multiset fingerprints, each bound to its workload
/// position — see `relation_fingerprint` above) must be identical
/// across every mode × client-count cell; the function asserts this. The configuration is decode-bound
/// (recycler off, simulated I/O off) so the baseline pays its real
/// oversubscription cost: up to `clients × max_threads` live worker
/// threads versus the shared pool's fixed `max_threads`.
pub fn server_traffic(scale: &BenchScale) -> Result<Table> {
    use sommelier_server::{Server, SessionOptions};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    let mut t = Table::new(
        "Query server: mixed T1-T5 traffic, shared scheduler vs per-query pools \
         (FIAM, lazy, decode-bound)",
        &[
            "mode",
            "clients",
            "queries",
            "threads",
            "wall_s",
            "qps",
            "p50_ms",
            "p99_ms",
            "result_bits",
        ],
    );
    let (sf, _) = scale.sf_extremes();
    let (repo, _) = dataset(scale, DatasetKind::Fiam, sf);
    let total_days = days_for_sf(sf) as i64;
    let d0 = start_day();

    // The fixed global workload: T1-T5 over rotating 4-day windows.
    let window = 4i64.min(total_days);
    let mut workload = Vec::new();
    for r in 0..12i64 {
        let day = d0 + (r * window) % (total_days - window + 1).max(1);
        let (a, b) = queries::day_range(day, window);
        workload.push(queries::t1("FIAM"));
        workload.push(queries::t2("FIAM", "HHZ", a, b));
        workload.push(queries::t3("FIAM", "HHZ", a, b));
        workload.push(queries::t4("FIAM", "HHZ", a, b));
        workload.push(queries::t5_selectivity(a, b));
    }

    // Decode-bound: the recycler would serve repeats from cache and
    // hide the scheduling difference entirely, and simulated I/O
    // sleeps would overlap for free in the oversubscribed baseline.
    // `max_threads` is pinned so the cell is machine-independent.
    let shared = SommelierConfig {
        use_recycler: false,
        sim_io: None,
        sim_chunk_io: None,
        max_threads: 4,
        ..bench_config(scale)
    };
    // The baseline models the pre-server engine: no shared pool (every
    // query wave spawns its own scoped pool) and admission effectively
    // disabled, so every caller runs immediately.
    let baseline = SommelierConfig {
        shared_scheduler: false,
        admission_max_concurrent: usize::MAX / 2,
        admission_high_water: f64::INFINITY,
        ..shared.clone()
    };
    let threads = shared.max_threads;

    let mut reference_bits: Option<u64> = None;
    for (mode, config) in [("per-query-pools", baseline), ("shared-sched", shared)] {
        for &clients in &[1usize, 4, 8, 16] {
            let guard = fresh_shared_system(scale, &repo, LoadingMode::Lazy, config.clone())?;
            // Warm every DMd type the workload touches over the full
            // range so derivation (whose table row order would depend
            // on concurrent completion order) happens outside the
            // measured region; measured queries then exercise decode +
            // scheduling only.
            let (wa, wb) = queries::day_range(d0, total_days);
            guard.somm.query(&queries::t2("FIAM", "HHZ", wa, wb))?;
            guard.somm.query(&queries::t3("FIAM", "HHZ", wa, wb))?;
            guard.somm.query(&queries::t4("FIAM", "HHZ", wa, wb))?;
            guard.somm.query(&queries::t5_selectivity(wa, wb))?;
            guard.somm.flush_caches();

            let server = Server::new(Arc::clone(&guard.somm));
            // Replay the workload `runs` times per cell; latencies
            // aggregate across repeats (percentiles stabilize), and
            // every repeat must reproduce the reference bits exactly.
            let mut ms: Vec<f64> = Vec::new();
            let mut total_wall = 0.0f64;
            let mut cell_bits = 0u64;
            for _rep in 0..scale.runs.max(1) {
                let cursor = AtomicUsize::new(0);
                let bits = AtomicU64::new(0);
                let lat = Mutex::new(Vec::with_capacity(workload.len()));
                let t0 = std::time::Instant::now();
                std::thread::scope(|scope| {
                    for _ in 0..clients {
                        scope.spawn(|| {
                            let session = server.open_session(SessionOptions::default());
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(sql) = workload.get(i) else { break };
                                let tq = std::time::Instant::now();
                                let res = session
                                    .submit(sql)
                                    .and_then(|h| h.wait())
                                    .unwrap_or_else(|e| panic!("query {i} failed: {e}"));
                                let d = tq.elapsed();
                                bits.fetch_xor(
                                    relation_fingerprint(i, &res.relation),
                                    Ordering::Relaxed,
                                );
                                lat.lock().expect("latency lock").push(d);
                            }
                        });
                    }
                });
                total_wall += t0.elapsed().as_secs_f64();
                let rep = lat.into_inner().expect("latency lock");
                assert_eq!(rep.len(), workload.len(), "every query ran exactly once");
                ms.extend(rep.iter().map(|d| d.as_secs_f64() * 1e3));
                cell_bits = bits.load(Ordering::Relaxed);
                match reference_bits {
                    None => reference_bits = Some(cell_bits),
                    Some(r) => assert_eq!(
                        r, cell_bits,
                        "results diverged: {mode} at {clients} clients"
                    ),
                }
            }

            ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
            let n = ms.len();
            let p50 = ms[(n - 1) / 2];
            let p99 = ms[((n - 1) as f64 * 0.99).round() as usize];
            t.row(vec![
                mode.into(),
                clients.to_string(),
                n.to_string(),
                threads.to_string(),
                format!("{total_wall:.6}"),
                format!("{:.2}", n as f64 / total_wall.max(1e-12)),
                format!("{p50:.3}"),
                format!("{p99:.3}"),
                format!("{cell_bits:016x}"),
            ]);
        }
    }
    Ok(t)
}

/// Window depths the prefetch sweep compares (0 = classic fused path).
const PREFETCH_DEPTHS: [usize; 5] = [0, 1, 2, 4, 8];

/// Prefetch sweep: window depth × simulated seek latency × workers on
/// cold multi-chunk aggregates (FIAM, lazy, T4/T5). Every run flushes
/// residency first, so the wall clock is the cold fetch+decode
/// pipeline; `result_bits` must be identical down every column. The
/// headline is the depth ≥ 2 vs depth 0 cold-run ratio under the
/// seek-dominated medium (`sim_ms > 0`): fetch overlaps decode, so
/// per-chunk cost drops from `seek + decode` toward
/// `max(seek/io_threads, decode)`.
pub fn prefetch_sweep(scale: &BenchScale) -> Result<Table> {
    let mut t = Table::new(
        "Prefetch: depth x sim seek x workers on cold runs (FIAM, lazy)",
        &[
            "sf",
            "query",
            "sim_ms",
            "workers",
            "depth",
            "io_threads",
            "wall_s",
            "load_s",
            "issued",
            "hits",
            "wasted_b",
            "io_wait_s",
            "files_loaded",
            "result_bits",
        ],
    );
    let (sf, _) = scale.sf_extremes();
    let (repo, _) = dataset(scale, DatasetKind::Fiam, sf);
    let total_days = days_for_sf(sf) as i64;
    let d0 = start_day();
    let (a, b) = queries::day_range(d0, total_days);
    let sqls = [("T4", queries::t4_selectivity(a, b)), ("T5", queries::t5_selectivity(a, b))];
    let sim_points: &[u64] = if scale.sim_io { &[2, 8] } else { &[0] };
    for (name, sql) in &sqls {
        for &sim_ms in sim_points {
            for &workers in &[1usize, 8] {
                for &depth in &PREFETCH_DEPTHS {
                    let config = SommelierConfig {
                        max_threads: workers,
                        prefetch_depth: depth,
                        sim_chunk_io: (sim_ms > 0).then(|| SimIo {
                            per_page: std::time::Duration::from_millis(sim_ms),
                        }),
                        ..bench_config(scale)
                    };
                    let io_threads = if depth > 0 { config.prefetch_io_threads() } else { 0 };
                    let guard = fresh_system_with(scale, &repo, LoadingMode::Lazy, config)?;
                    // Warm run: derive any DMd the query needs (T5's
                    // windows) so the timed runs measure chunk work.
                    guard.somm.query(sql)?;
                    let stats0 =
                        guard.somm.prefetch_stage().map_or((0, 0, 0, 0), |s| s.stats());
                    let runs = scale.runs.max(1);
                    let mut wall = std::time::Duration::ZERO;
                    let mut load = std::time::Duration::ZERO;
                    let mut last: Option<sommelier_core::QueryResult> = None;
                    for _ in 0..runs {
                        // Flush residency: every run fetches cold.
                        guard.somm.flush_caches();
                        let (r, d) = time_it(|| guard.somm.query(sql));
                        let r = r?;
                        wall += d;
                        load += r.stats.load;
                        last = Some(r);
                    }
                    let last = last.expect("runs >= 1");
                    let (issued, hits, wasted, io_wait) =
                        guard.somm.prefetch_stage().map_or((0, 0, 0, 0), |s| s.stats());
                    let avg = match last
                        .relation
                        .value(0, "avg")
                        .map_err(sommelier_core::SommelierError::Engine)?
                    {
                        sommelier_storage::Value::Float(v) => v,
                        other => {
                            return Err(sommelier_core::SommelierError::Usage(format!(
                                "expected a float AVG, got {other:?}"
                            )))
                        }
                    };
                    t.row(vec![
                        format!("sf-{sf}"),
                        name.to_string(),
                        sim_ms.to_string(),
                        workers.to_string(),
                        depth.to_string(),
                        io_threads.to_string(),
                        secs(wall / runs as u32),
                        secs(load / runs as u32),
                        (issued - stats0.0).to_string(),
                        (hits - stats0.1).to_string(),
                        (wasted - stats0.2).to_string(),
                        secs(std::time::Duration::from_nanos(io_wait - stats0.3)),
                        last.stats.files_loaded.to_string(),
                        format!("{:016x}", avg.to_bits()),
                    ]);
                }
            }
        }
    }
    Ok(t)
}

/// Deterministic chaos harness: seeded schedules composing injected
/// transient faults and latency spikes, one deterministically
/// panicking chunk, mid-query cancellation, tight timeouts, and
/// admission saturation, driven through the session API by concurrent
/// clients — finishing with a shutdown fired while the server is
/// freshly loaded.
///
/// Every cell first computes a fault-free reference for the whole
/// workload; a chaos run's *survivors* (queries that complete) must
/// reproduce their reference fingerprints exactly — asserted inside the
/// experiment — and every failure must be one of the typed lifecycle
/// errors. `result_bits` is the XOR of the surviving fingerprints;
/// `clean` reports the post-storm invariant ledger (zero pins, zero
/// staged bytes, zero queued) plus the shutdown report's own ledger.
pub fn chaos(scale: &BenchScale) -> Result<Table> {
    use sommelier_core::FaultPlan;
    use sommelier_server::{Server, ServerError, SessionOptions, SubmitOptions};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    let mut t = Table::new(
        "Chaos: seeded fault x cancel x timeout x panic x saturation schedules, \
         then shutdown-while-loaded (event logs, lazy)",
        &[
            "seed",
            "clients",
            "ops",
            "ok",
            "cancelled",
            "timed_out",
            "overloaded",
            "panicked",
            "p99_ms",
            "shutdown_drained",
            "shutdown_cancelled",
            "clean",
            "result_bits",
        ],
    );

    // A small event-log source: its chunk URIs are plain file paths,
    // which the workload uses for chunk-pruned queries that avoid the
    // poisoned chunk.
    use sommelier_core::adapters::{generate_event_logs, EventLogAdapter, EventLogSpec};
    let logs = scale.data_dir.join(format!("chaos-logs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&logs);
    generate_event_logs(&logs, &EventLogSpec::small(3, 64)).expect("generate event logs");
    let mut chunks = walk_files(&logs);
    chunks.sort();
    assert!(chunks.len() >= 3, "need a victim and several healthy chunks");
    let victim = chunks[0].clone();
    let healthy: Vec<&String> = chunks.iter().filter(|c| **c != victim).collect();

    // DMd-derived tables (Y) are excluded from the workload: their
    // derivation scans every chunk, which would make any query touching
    // them a second poison query.
    let mut workload: Vec<String> =
        vec!["SELECT COUNT(*) AS n FROM G WHERE host = 'web-1'".into()];
    for c in &healthy {
        workload.push(format!("SELECT COUNT(*) AS n FROM eventview WHERE G.uri = '{c}'"));
        workload.push(format!("SELECT AVG(E.val) FROM eventview WHERE G.uri = '{c}'"));
    }
    let poison_op = workload.len();
    workload.push("SELECT COUNT(*) AS n FROM eventview WHERE E.val > -1000000000".into());

    // Fault-free reference fingerprints for every workload position.
    let build = |plan: Option<FaultPlan>| -> Result<Sommelier> {
        let config = SommelierConfig {
            max_threads: 4,
            use_recycler: false,
            sim_chunk_io: Some(SimIo { per_page: Duration::from_millis(5) }),
            admission_max_concurrent: 2,
            admission_queue_limit: 3,
            fault_plan: plan,
            ..SommelierConfig::default()
        };
        let somm = Sommelier::builder()
            .source(EventLogAdapter::new(&logs))
            .config(config)
            .build()?;
        somm.prepare(LoadingMode::Lazy)?;
        Ok(somm)
    };
    let clean_somm = build(None)?;
    let reference: Vec<u64> = workload
        .iter()
        .enumerate()
        .map(|(i, sql)| Ok(relation_fingerprint(i, &clean_somm.query(sql)?.relation)))
        .collect::<Result<_>>()?;
    drop(clean_somm);

    let clients = 6usize;
    let ops_per_seed = (scale.runs * 16).max(48);
    for seed in [0x01ce_2015_u64, 0xc4a6_0b5e, 0x5eed_cafe] {
        let somm = Arc::new(build(Some(FaultPlan {
            seed,
            transient_rate: 0.4,
            spike_rate: 0.2,
            spike: Duration::from_millis(2),
            panic_uris: vec![victim.clone()],
            ..FaultPlan::default()
        }))?);
        let server = Server::new(Arc::clone(&somm));

        // The schedule is a pure function of the seed.
        let mut rng = SmallRng::seed_from_u64(seed);
        let schedule: Vec<(usize, u64, u64)> = (0..ops_per_seed)
            .map(|k| {
                let q = if k % 8 == 7 { poison_op } else { rng.random_range(0..poison_op) };
                // action: 0..=5 wait, 6..=7 cancel after 0..30ms,
                // 8..=9 timeout 1..=40ms.
                (q, rng.random_range(0..10u64), rng.random_range(0..40u64))
            })
            .collect();

        let counts: [AtomicUsize; 5] = Default::default(); // ok, cancel, timeout, overload, panic
        let bits = AtomicU64::new(0);
        let cursor = AtomicUsize::new(0);
        let lat = Mutex::new(Vec::with_capacity(schedule.len()));
        std::thread::scope(|scope| {
            for _ in 0..clients {
                let server = server.clone();
                let (schedule, workload, reference) = (&schedule, &workload, &reference);
                let (counts, bits, cursor, lat) = (&counts, &bits, &cursor, &lat);
                scope.spawn(move || {
                    let session = server.open_session(SessionOptions::default());
                    loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&(q, action, ms)) = schedule.get(k) else { break };
                        let sql = &workload[q];
                        let tq = std::time::Instant::now();
                        let submitted = if action >= 8 {
                            session.submit_with(
                                sql,
                                &SubmitOptions {
                                    timeout: Some(Duration::from_millis(1 + ms)),
                                    ..Default::default()
                                },
                            )
                        } else {
                            session.submit(sql)
                        };
                        let res = match submitted {
                            Ok(handle) => {
                                if (6..8).contains(&action) {
                                    std::thread::sleep(Duration::from_millis(ms % 30));
                                    handle.cancel();
                                }
                                handle.wait()
                            }
                            Err(e) => Err(e),
                        };
                        lat.lock().expect("latency lock").push(tq.elapsed());
                        match res {
                            Ok(r) => {
                                assert_ne!(
                                    q, poison_op,
                                    "op {k}: poison query cannot succeed"
                                );
                                let f = relation_fingerprint(q, &r.relation);
                                assert_eq!(
                                    f, reference[q],
                                    "op {k} (workload {q}) survived but drifted"
                                );
                                bits.fetch_xor(f, Ordering::Relaxed);
                                counts[0].fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                let slot = match e {
                                    ServerError::Cancelled => 1,
                                    ServerError::TimedOut => 2,
                                    ServerError::Overloaded { retry_after_ms, .. } => {
                                        // Honor (a capped slice of) the
                                        // advertised backpressure before
                                        // taking the next op.
                                        std::thread::sleep(Duration::from_millis(
                                            retry_after_ms.min(10),
                                        ));
                                        3
                                    }
                                    ServerError::Quarantined { .. }
                                    | ServerError::Query(
                                        sommelier_core::SommelierError::QueryPanicked {
                                            ..
                                        },
                                    ) => 4,
                                    other => panic!("op {k} failed untyped: {other}"),
                                };
                                counts[slot].fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });

        // Shutdown while freshly loaded: one more wave, then drain.
        let fresh = server.open_session(SessionOptions::default());
        let wave: Vec<_> = healthy
            .iter()
            .take(4)
            .map(|c| {
                fresh
                    .submit(&format!("SELECT AVG(E.val) FROM eventview WHERE G.uri = '{c}'"))
                    .expect("submit wave")
            })
            .collect();
        let report = server.shutdown(Duration::from_secs(120));
        for h in wave {
            if let Err(e) = h.wait() {
                assert!(
                    matches!(e, ServerError::Cancelled | ServerError::ShuttingDown),
                    "wave failed untyped: {e}"
                );
            }
        }
        let clean = report.is_clean()
            && somm.cellar().map_or(0, |c| c.total_pins()) == 0
            && somm.prefetch_stage().map_or(0, |s| s.staged_bytes()) == 0;
        let mut ms: Vec<f64> = lat
            .into_inner()
            .expect("latency lock")
            .iter()
            .map(|d| d.as_secs_f64() * 1e3)
            .collect();
        ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        let p99 = ms[((ms.len() - 1) as f64 * 0.99).round() as usize];
        t.row(vec![
            format!("{seed:#x}"),
            clients.to_string(),
            ops_per_seed.to_string(),
            counts[0].load(Ordering::Relaxed).to_string(),
            counts[1].load(Ordering::Relaxed).to_string(),
            counts[2].load(Ordering::Relaxed).to_string(),
            counts[3].load(Ordering::Relaxed).to_string(),
            counts[4].load(Ordering::Relaxed).to_string(),
            format!("{p99:.3}"),
            report.drained.to_string(),
            report.cancelled.to_string(),
            if clean { "yes".into() } else { "NO".into() },
            format!("{:016x}", bits.load(Ordering::Relaxed)),
        ]);
    }
    let _ = std::fs::remove_dir_all(&logs);
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(tag: &str) -> BenchScale {
        let mut scale = BenchScale::tiny();
        scale.data_dir =
            std::env::temp_dir().join(format!("somm-exp-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scale.data_dir);
        scale
    }

    #[test]
    fn table2_shape() {
        let scale = tiny("t2");
        let t = table2(&scale);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0][2], "160", "sf-1 has the paper's 160 files");
        let _ = std::fs::remove_dir_all(&scale.data_dir);
    }

    #[test]
    fn cellar_sweep_shape_and_invariants() {
        let scale = tiny("cellar");
        let t = cellar_sweep(&scale).unwrap();
        // 1 calibration row + 3 fractions × 2 policies.
        assert_eq!(t.rows.len(), 1 + 3 * 2);
        // Bounding memory must never change answers: one checksum.
        let checksums: std::collections::HashSet<&String> =
            t.rows.iter().map(|r| &r[11]).collect();
        assert_eq!(checksums.len(), 1, "identical results across budgets: {t:?}");
        for row in &t.rows[1..] {
            let pct: u32 = row[2].parse().unwrap();
            let budget: u64 = row[3].parse().unwrap();
            let reloads: u64 = row[7].parse().unwrap();
            let evictions: u64 = row[8].parse().unwrap();
            let resident_after: u64 = row[10].parse().unwrap();
            assert!(
                resident_after <= budget,
                "resident {resident_after} over budget {budget} in {row:?}"
            );
            if pct == 10 {
                // A 10% budget under a repeated workload must thrash.
                assert!(evictions > 0, "{row:?}");
                assert!(reloads > 0, "{row:?}");
            }
        }
        let _ = std::fs::remove_dir_all(&scale.data_dir);
    }

    #[test]
    fn stage2_parallel_shape_and_invariants() {
        let scale = tiny("stage2");
        let t = stage2_parallel(&scale).unwrap();
        // 2 queries × 2 pushdown settings × 4 worker counts.
        assert_eq!(t.rows.len(), 2 * 2 * 4);
        for row in &t.rows {
            let pushdown = &row[3];
            let union_rows: u64 = row[7].parse().unwrap();
            let partial_chunks: u64 = row[8].parse().unwrap();
            let files_loaded: u64 = row[9].parse().unwrap();
            assert!(files_loaded > 1, "multi-chunk query: {row:?}");
            if pushdown == "on" {
                // Partial aggregation fused: the union never materialized.
                assert_eq!(union_rows, 0, "{row:?}");
                assert_eq!(partial_chunks, files_loaded, "{row:?}");
            } else {
                assert!(union_rows > 0, "baseline materializes the union: {row:?}");
                assert_eq!(partial_chunks, 0, "{row:?}");
            }
        }
        // Serial ≡ parallel, bit for bit, within each (query, pushdown)
        // group.
        let mut groups: std::collections::HashMap<(String, String), Vec<&String>> =
            std::collections::HashMap::new();
        for row in &t.rows {
            groups.entry((row[1].clone(), row[3].clone())).or_default().push(&row[10]);
        }
        for ((query, pushdown), bits) in groups {
            assert!(
                bits.iter().all(|b| *b == bits[0]),
                "{query}/{pushdown}: results differ across worker counts: {bits:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&scale.data_dir);
    }

    #[test]
    fn optimizer_sweep_shape_and_invariants() {
        let scale = tiny("optimizer");
        let t = optimizer_sweep(&scale).unwrap();
        // 2 adapters × 4 knob combinations.
        assert_eq!(t.rows.len(), 2 * 4);
        for adapter in ["mseed", "eventlog"] {
            let rows: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == adapter).collect();
            // Answers are knob-independent, bit for bit.
            assert!(
                rows.iter().all(|r| r[10] == rows[0][10]),
                "{adapter}: result bits differ across knobs: {rows:?}"
            );
            for row in &rows {
                let (projection, zone) = (&row[2], &row[3]);
                let pruned: u64 = row[6].parse().unwrap();
                let loaded: u64 = row[7].parse().unwrap();
                if zone == "on" {
                    assert!(pruned > 0, "{adapter}: zone maps must prune: {row:?}");
                } else {
                    assert_eq!(pruned, 0, "{row:?}");
                }
                assert!(loaded > 0, "{row:?}");
                let _ = projection;
            }
            // Projection pushdown shrinks decoded bytes at equal chunk
            // counts (compare within the same zone setting).
            for zone in ["on", "off"] {
                let bytes = |proj: &str| -> u64 {
                    rows.iter().find(|r| r[2] == proj && r[3] == zone).expect("row present")
                        [9]
                    .parse()
                    .unwrap()
                };
                assert!(
                    bytes("on") < bytes("off"),
                    "{adapter}/zone={zone}: projection must shrink decoded bytes"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&scale.data_dir);
    }

    #[test]
    fn table3_fig6_shapes() {
        let scale = tiny("t3f6");
        let (t3, f6) = table3_and_fig6(&scale).unwrap();
        assert_eq!(t3.rows.len(), 1);
        assert_eq!(f6.rows.len(), 5, "five approaches");
        // The paper's Table III orderings that survive tiny scale:
        // mSEED ≪ CSV and DB; indexes add bytes; lazy metadata is tiny.
        // (The CSV-vs-DB ratio needs realistic sample counts — per-file
        // headers dominate at 16 samples/segment; the harness binaries
        // run at ≥256.)
        let mseed: u64 = t3.rows[0][1].parse().unwrap();
        let csv: u64 = t3.rows[0][2].parse().unwrap();
        let db: u64 = t3.rows[0][3].parse().unwrap();
        let keys: u64 = t3.rows[0][4].parse().unwrap();
        let lazy: u64 = t3.rows[0][5].parse().unwrap();
        assert!(mseed < db, "mseed {mseed} < db {db}");
        assert!(mseed * 3 < csv, "csv expansion: mseed {mseed} vs csv {csv}");
        assert!(keys > 0, "indexes add bytes");
        assert!(lazy < db, "metadata {lazy} smaller than the loaded db {db}");
        let _ = std::fs::remove_dir_all(&scale.data_dir);
    }

    #[test]
    fn prefetch_sweep_shape() {
        let scale = tiny("prefetch");
        let t = prefetch_sweep(&scale).unwrap();
        // 2 queries x 1 sim point (off at tiny scale) x 2 workers x 5
        // depths; answers must be identical down every depth column.
        assert_eq!(t.rows.len(), 20);
        for query in ["T4", "T5"] {
            let bits: Vec<&String> =
                t.rows.iter().filter(|r| r[1] == query).map(|r| &r[13]).collect();
            assert!(bits.windows(2).all(|w| w[0] == w[1]), "{query}: identical results");
        }
        let hits: u64 = t.rows.iter().map(|r| r[9].parse::<u64>().unwrap()).sum();
        assert!(hits > 0, "windowed cells must consume prefetched bytes");
        let _ = std::fs::remove_dir_all(&scale.data_dir);
    }

    #[test]
    fn chaos_shape() {
        let scale = tiny("chaos");
        let t = chaos(&scale).unwrap();
        // 3 seeds; survivor byte-identity and typed-failure-only are
        // asserted inside the experiment itself.
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            assert_eq!(row[11], "yes", "seed {}: ledger must balance: {row:?}", row[0]);
            let ok: usize = row[3].parse().unwrap();
            assert!(ok > 0, "seed {}: chaos must not kill the whole schedule", row[0]);
        }
        let _ = std::fs::remove_dir_all(&scale.data_dir);
    }

    #[test]
    fn server_traffic_shape() {
        let scale = tiny("server");
        let t = server_traffic(&scale).unwrap();
        // 2 modes x 4 client counts; result_bits equality across cells
        // is asserted inside the experiment itself.
        assert_eq!(t.rows.len(), 8);
        let modes: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(modes.contains(&"per-query-pools") && modes.contains(&"shared-sched"));
        let first_bits = &t.rows[0][8];
        assert!(t.rows.iter().all(|r| &r[8] == first_bits), "identical results per cell");
        let _ = std::fs::remove_dir_all(&scale.data_dir);
    }
}
