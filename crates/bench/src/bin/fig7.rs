//! Regenerates the paper's Figures 7a–7e (cold/hot query performance).
fn main() {
    let scale = sommelier_bench::BenchScale::from_env();
    sommelier_bench::experiments::fig7(&scale).expect("figure 7").print();
}
