//! Regenerates the paper's Figure 9 (cumulative workload time).
fn main() {
    let scale = sommelier_bench::BenchScale::from_env();
    sommelier_bench::experiments::fig9(&scale).expect("figure 9").print();
}
