//! Sweeps the cellar's residency budget (100 %/50 %/10 % of the
//! workload's decoded bytes) under a repeated sliding-window workload
//! and reports hit/evict/reload counts alongside wall-clock time, for
//! both eviction policies.
fn main() {
    let scale = sommelier_bench::BenchScale::from_env();
    sommelier_bench::experiments::cellar_sweep(&scale).expect("cellar sweep").print();
}
