//! Regenerates the paper's Table III (dataset sizes).
fn main() {
    let scale = sommelier_bench::BenchScale::from_env();
    let (t3, _) = sommelier_bench::experiments::table3_and_fig6(&scale).expect("table 3");
    t3.print();
}
