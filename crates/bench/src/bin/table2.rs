//! Regenerates the paper's Table II (dataset record counts).
fn main() {
    let scale = sommelier_bench::BenchScale::from_env();
    sommelier_bench::experiments::table2(&scale).print();
}
