//! Deterministic chaos harness: seeded schedules composing injected
//! transient faults, latency spikes, one panicking chunk, mid-query
//! cancellation, tight timeouts, and admission saturation through the
//! session API — finishing each cell with a shutdown fired while the
//! server is freshly loaded. Survivor results are asserted
//! byte-identical to the fault-free reference inside the experiment;
//! the table reports the outcome mix, p99 latency, the shutdown
//! drain/cancel split, and whether the invariant ledger (pins, staged
//! bytes, admission queue) balanced to zero.
//!
//! Set `SOMM_JSON_OUT=<path>` to additionally record the table as JSON
//! (how `BENCH_resilience.json` at the workspace root was produced).
fn main() {
    let scale = sommelier_bench::BenchScale::from_env();
    let table = sommelier_bench::experiments::chaos(&scale).expect("chaos harness");
    table.print();
    if let Ok(path) = std::env::var("SOMM_JSON_OUT") {
        std::fs::write(&path, table.to_json()).expect("write JSON baseline");
        eprintln!("wrote {path}");
    }
}
