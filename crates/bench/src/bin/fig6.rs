//! Regenerates the paper's Figure 6 (loading-time breakdown).
fn main() {
    let scale = sommelier_bench::BenchScale::from_env();
    let (_, f6) = sommelier_bench::experiments::table3_and_fig6(&scale).expect("figure 6");
    f6.print();
}
