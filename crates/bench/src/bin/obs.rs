//! Observability overhead sweep: T4/T5 under the decode-bound
//! configuration (FIAM sf-1, recycler off, 1 worker, simulated I/O
//! off) at each observability level. `Off` is the baseline row per
//! query; `Counters` — the default level — must stay within noise,
//! and `result_bits` must be byte-identical across levels.
//!
//! Set `SOMM_JSON_OUT=<path>` to additionally record the table as JSON
//! (how `BENCH_obs.json` at the workspace root was produced).
fn main() {
    let scale = sommelier_bench::BenchScale::from_env();
    let table = sommelier_bench::experiments::obs_overhead(&scale).expect("obs sweep");
    table.print();
    if let Ok(path) = std::env::var("SOMM_JSON_OUT") {
        std::fs::write(&path, table.to_json()).expect("write JSON baseline");
        eprintln!("wrote {path}");
    }
}
