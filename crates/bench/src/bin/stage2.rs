//! Sweeps stage-2 morsel parallelism: worker counts (1/2/4/8) ×
//! selection/partial-aggregation pushdown on multi-chunk aggregate
//! queries, reporting wall-clock, the load/stage-2 split, rows
//! materialized into unions, and exact result bits (which must be
//! identical across worker counts).
//!
//! Set `SOMM_JSON_OUT=<path>` to additionally record the table as JSON
//! (how `BENCH_stage2.json` at the workspace root was produced).
fn main() {
    let scale = sommelier_bench::BenchScale::from_env();
    let table = sommelier_bench::experiments::stage2_parallel(&scale).expect("stage2 sweep");
    table.print();
    if let Ok(path) = std::env::var("SOMM_JSON_OUT") {
        std::fs::write(&path, table.to_json()).expect("write JSON baseline");
        eprintln!("wrote {path}");
    }
}
