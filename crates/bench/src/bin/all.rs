//! Runs the full experiment suite (every table and figure of §VI).
fn main() {
    let scale = sommelier_bench::BenchScale::from_env();
    println!("# sommelier experiment suite\n# scale: {scale:?}\n");
    sommelier_bench::experiments::table2(&scale).print();
    let (t3, f6) =
        sommelier_bench::experiments::table3_and_fig6(&scale).expect("table3/fig6");
    t3.print();
    f6.print();
    sommelier_bench::experiments::fig7(&scale).expect("fig7").print();
    sommelier_bench::experiments::fig8(&scale).expect("fig8").print();
    sommelier_bench::experiments::fig9(&scale).expect("fig9").print();
    sommelier_bench::experiments::cellar_sweep(&scale).expect("cellar sweep").print();
    sommelier_bench::experiments::stage2_parallel(&scale).expect("stage2 sweep").print();
    sommelier_bench::experiments::optimizer_sweep(&scale).expect("optimizer sweep").print();
    sommelier_bench::experiments::decode_hotpath(&scale).expect("decode sweep").print();
    sommelier_bench::experiments::server_traffic(&scale).expect("server traffic").print();
    sommelier_bench::experiments::fault_sweep(&scale).expect("fault sweep").print();
}
