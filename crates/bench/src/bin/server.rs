//! Query-server traffic driver: a fixed mixed T1–T5 workload replayed
//! through the multi-tenant session API at 1/4/8/16 concurrent
//! clients, comparing the shared morsel scheduler (plus admission
//! control) against the legacy one-scoped-pool-per-query baseline.
//! The decode-bound configuration (FIAM, recycler off, simulated I/O
//! off) makes the baseline pay its real oversubscription cost;
//! `result_bits` must be byte-identical across every cell.
//!
//! Set `SOMM_JSON_OUT=<path>` to additionally record the table as JSON
//! (how `BENCH_server.json` at the workspace root was produced).
fn main() {
    let scale = sommelier_bench::BenchScale::from_env();
    let table = sommelier_bench::experiments::server_traffic(&scale).expect("server traffic");
    table.print();
    if let Ok(path) = std::env::var("SOMM_JSON_OUT") {
        std::fs::write(&path, table.to_json()).expect("write JSON baseline");
        eprintln!("wrote {path}");
    }
}
