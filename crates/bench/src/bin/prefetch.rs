//! Prefetch sweep: window depth {0,1,2,4,8} × simulated seek latency
//! × 1/8 workers over cold T4/T5 runs (FIAM, lazy). Depth 0 is the
//! classic fused fetch+decode path; at depth ≥ 2 the dedicated IO
//! threads read chunk `k+1..k+depth` while workers decode chunk `k`,
//! so the seek-dominated cold run drops from `seek + decode` per chunk
//! toward `max(seek/io_threads, decode)`. `result_bits` must be
//! identical in every row of a query.
//!
//! Set `SOMM_JSON_OUT=<path>` to additionally record the table as JSON
//! (how `BENCH_prefetch.json` at the workspace root was produced).
fn main() {
    let scale = sommelier_bench::BenchScale::from_env();
    let table = sommelier_bench::experiments::prefetch_sweep(&scale).expect("prefetch sweep");
    table.print();
    if let Ok(path) = std::env::var("SOMM_JSON_OUT") {
        std::fs::write(&path, table.to_json()).expect("write JSON baseline");
        eprintln!("wrote {path}");
    }
}
