//! Fault-tolerance sweep: transient fault rate × retry budget over the
//! full-window T4 workload (FIAM sf-1, lazy), reporting success rate,
//! p50/p99 latency, and the degraded fraction under `SkipUnreadable`
//! with one permanently corrupt chunk. Budget 1 (no retries) loses
//! queries at roughly the per-query fault probability; the default
//! budget 4 recovers every transient fault for a few backoffs of p99.
//!
//! Set `SOMM_JSON_OUT=<path>` to additionally record the table as JSON
//! (how `BENCH_faults.json` at the workspace root was produced).
fn main() {
    let scale = sommelier_bench::BenchScale::from_env();
    let table = sommelier_bench::experiments::fault_sweep(&scale).expect("fault sweep");
    table.print();
    if let Ok(path) = std::env::var("SOMM_JSON_OUT") {
        std::fs::write(&path, table.to_json()).expect("write JSON baseline");
        eprintln!("wrote {path}");
    }
}
