//! Sweeps the decode hot path: the single-pass arena-backed chunk
//! decode vs the retained reference decode on T4/T5 (sf-1, recycler
//! off, 1 worker, simulated I/O off), and indexed vs linear stage-1
//! candidate selection over the `sf-reg` headers-only registry
//! (`SOMM_REG_CHUNKS`, default 100 000 chunks). `result_bits` must be
//! identical across the decode variants of each query.
//!
//! Set `SOMM_JSON_OUT=<path>` to additionally record the table as JSON
//! (how `BENCH_decode.json` at the workspace root was produced).
fn main() {
    let scale = sommelier_bench::BenchScale::from_env();
    let table = sommelier_bench::experiments::decode_hotpath(&scale).expect("decode sweep");
    table.print();
    if let Ok(path) = std::env::var("SOMM_JSON_OUT") {
        std::fs::write(&path, table.to_json()).expect("write JSON baseline");
        eprintln!("wrote {path}");
    }
}
