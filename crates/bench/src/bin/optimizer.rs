//! Sweeps the optimizer's two new passes — projection-pushdown decode
//! and zone-map chunk pruning — across both built-in adapters,
//! reporting decoded chunks/rows/bytes and exact result bits (which
//! must be identical across every knob combination).
//!
//! Set `SOMM_JSON_OUT=<path>` to additionally record the table as JSON
//! (how `BENCH_optimizer.json` at the workspace root was produced).
fn main() {
    let scale = sommelier_bench::BenchScale::from_env();
    let table =
        sommelier_bench::experiments::optimizer_sweep(&scale).expect("optimizer sweep");
    table.print();
    if let Ok(path) = std::env::var("SOMM_JSON_OUT") {
        std::fs::write(&path, table.to_json()).expect("write JSON baseline");
        eprintln!("wrote {path}");
    }
}
