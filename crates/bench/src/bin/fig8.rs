//! Regenerates the paper's Figure 8 (data-to-insight vs selectivity).
fn main() {
    let scale = sommelier_bench::BenchScale::from_env();
    sommelier_bench::experiments::fig8(&scale).expect("figure 8").print();
}
