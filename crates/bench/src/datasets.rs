//! Dataset generation with on-disk caching, plus the env-driven scale
//! configuration shared by all experiments.

use sommelier_core::chunks::{ChunkRegistry, FileEntry};
use sommelier_engine::ColumnZone;
use sommelier_mseed::{DatasetSpec, RepoStats, Repository};
use sommelier_storage::time::MS_PER_DAY;
use sommelier_storage::Value;
use std::path::PathBuf;

/// Which of the paper's two dataset families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// 4 stations (Table II / Figs. 6–7).
    Ingv,
    /// Single-station FIAM (Figs. 8–9).
    Fiam,
}

impl DatasetKind {
    fn spec(self, sf: u32, samples: u32) -> DatasetSpec {
        match self {
            DatasetKind::Ingv => DatasetSpec::ingv(sf, samples),
            DatasetKind::Fiam => DatasetSpec::fiam(sf, samples),
        }
    }
}

/// Experiment scale, read once from the environment.
#[derive(Debug, Clone)]
pub struct BenchScale {
    pub sfs: Vec<u32>,
    pub samples_per_seg: u32,
    pub data_dir: PathBuf,
    pub runs: usize,
    pub sim_io: bool,
    pub pool_bytes: usize,
    pub full: bool,
    /// Selectivity sweep points for Fig. 8 (percent).
    pub selectivities: Vec<u32>,
    /// Workload-selectivity sweep points for Fig. 9 (percent).
    pub workload_selectivities: Vec<u32>,
    /// Workload sizes for Fig. 9.
    pub workload_queries: Vec<usize>,
}

fn env_flag(name: &str, default: bool) -> bool {
    match std::env::var(name) {
        Ok(v) => !matches!(v.as_str(), "" | "0" | "false" | "no"),
        Err(_) => default,
    }
}

fn env_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl BenchScale {
    /// Read the scale configuration from the environment.
    pub fn from_env() -> Self {
        let full = env_flag("SOMM_FULL", false);
        let sfs = std::env::var("SOMM_SFS")
            .ok()
            .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect::<Vec<u32>>())
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| if full { vec![1, 3, 9, 27] } else { vec![1, 3] });
        let data_dir = std::env::var("SOMM_DATA_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/sommelier-data"));
        BenchScale {
            sfs,
            samples_per_seg: env_num("SOMM_SAMPLES_PER_SEG", 256),
            data_dir,
            runs: env_num("SOMM_RUNS", 3usize),
            sim_io: env_flag("SOMM_SIM_IO", true),
            pool_bytes: env_num("SOMM_POOL_MB", 64usize) * 1024 * 1024,
            full,
            selectivities: if full {
                vec![0, 10, 20, 40, 60, 80, 100]
            } else {
                vec![0, 25, 50, 100]
            },
            workload_selectivities: if full {
                vec![0, 10, 20, 40, 60, 80, 100]
            } else {
                vec![0, 20, 60, 100]
            },
            workload_queries: if full { vec![100, 200] } else { vec![20, 40] },
        }
    }

    /// A tiny scale for smoke tests and criterion runs.
    pub fn tiny() -> Self {
        BenchScale {
            sfs: vec![1],
            samples_per_seg: 16,
            data_dir: std::env::temp_dir().join("sommelier-bench-tiny"),
            runs: 1,
            sim_io: false,
            pool_bytes: 64 * 1024 * 1024,
            full: false,
            selectivities: vec![0, 50, 100],
            workload_selectivities: vec![0, 50, 100],
            workload_queries: vec![5],
        }
    }

    /// Smallest and largest configured scale factor.
    pub fn sf_extremes(&self) -> (u32, u32) {
        let lo = self.sfs.iter().copied().min().unwrap_or(1);
        let hi = self.sfs.iter().copied().max().unwrap_or(1);
        (lo, hi)
    }
}

/// Number of registered chunks of the `sf-reg` registry-scale dataset
/// (`SOMM_REG_CHUNKS`, default 100 000 — the paper's repositories hold
/// millions of files; stage-1 selection must stay sub-linear there).
pub fn sf_reg_chunks() -> usize {
    env_num("SOMM_REG_CHUNKS", 100_000usize).max(1)
}

/// The `sf-reg` registry-scale dataset: `n` registered chunks, *headers
/// only*. The entries are exactly what the registrar would produce from
/// an mSEED repository of `n` day-chunk files over four stations
/// (day-partitioned `D.sample_time` zone maps, round-robin station
/// order) — no payload bytes ever exist, because stage-1 candidate
/// selection touches nothing but the registry. Day 14 610 is
/// 2010-01-01, matching the seismology datasets.
pub fn sf_reg_registry(n: usize) -> ChunkRegistry {
    const STATIONS: [&str; 4] = ["ISK", "FIAM", "AQU", "TRI"];
    let entries: Vec<FileEntry> = (0..n)
        .map(|i| {
            let station = STATIONS[i % STATIONS.len()];
            let day = 14_610 + (i / STATIONS.len()) as i64;
            let lo = day * MS_PER_DAY;
            FileEntry {
                uri: format!("sf-reg/{station}-{day}.msd"),
                file_id: i as i64,
                seg_base: i as i64 * 24,
                seg_count: 24,
                zones: vec![ColumnZone {
                    column: "D.sample_time".into(),
                    min: Value::Time(lo),
                    max: Value::Time(lo + MS_PER_DAY - 1),
                }],
            }
        })
        .collect();
    ChunkRegistry::new(entries)
}

/// Generate (or reuse) a dataset, returning the repository and its
/// stats. Cached by (kind, sf, samples) under `scale.data_dir`; a
/// marker file records the stats of a completed generation.
pub fn dataset(scale: &BenchScale, kind: DatasetKind, sf: u32) -> (Repository, RepoStats) {
    let spec = kind.spec(sf, scale.samples_per_seg);
    let dir = scale.data_dir.join(&spec.name).join(format!("s{}", scale.samples_per_seg));
    let marker = dir.join(".complete");
    let repo = Repository::at(&dir);
    if let Ok(text) = std::fs::read_to_string(&marker) {
        let nums: Vec<u64> = text.split_whitespace().filter_map(|t| t.parse().ok()).collect();
        if nums.len() == 4 {
            return (
                repo,
                RepoStats {
                    files: nums[0],
                    segments: nums[1],
                    samples: nums[2],
                    bytes: nums[3],
                },
            );
        }
    }
    let stats = repo.generate(&spec).expect("dataset generation");
    std::fs::write(
        &marker,
        format!("{} {} {} {}", stats.files, stats.segments, stats.samples, stats.bytes),
    )
    .expect("writing dataset marker");
    (repo, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_has_one_sf() {
        let s = BenchScale::tiny();
        assert_eq!(s.sfs, vec![1]);
        assert_eq!(s.sf_extremes(), (1, 1));
    }

    #[test]
    fn dataset_cache_roundtrip() {
        let mut scale = BenchScale::tiny();
        scale.data_dir =
            std::env::temp_dir().join(format!("somm-bench-ds-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scale.data_dir);
        let (_, first) = dataset(&scale, DatasetKind::Fiam, 1);
        assert!(first.files > 0);
        // Second call must come from the marker, byte-identical stats.
        let (_, second) = dataset(&scale, DatasetKind::Fiam, 1);
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&scale.data_dir);
    }
}
