//! # sommelier-bench
//!
//! The experiment harness: one module per concern, one binary per table
//! or figure of the paper's evaluation (§VI). See EXPERIMENTS.md at the
//! workspace root for the experiment ↔ binary index and the recorded
//! paper-vs-measured series.
//!
//! Scale is controlled by environment variables (all optional):
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `SOMM_SFS` | `1,3` (`1,3,9,27` with `SOMM_FULL=1`) | scale factors to run |
//! | `SOMM_SAMPLES_PER_SEG` | `256` | samples per segment (the scale-down knob) |
//! | `SOMM_DATA_DIR` | `target/sommelier-data` | dataset & scratch-database cache |
//! | `SOMM_RUNS` | `3` | repetitions averaged for hot timings (paper: 3) |
//! | `SOMM_SIM_IO` | `1` | charge a simulated per-page I/O latency on pool misses |
//! | `SOMM_POOL_MB` | `64` | buffer-pool budget (MiB) — small enough that big sfs spill |
//! | `SOMM_FULL` | unset | paper-scale defaults (all four sfs, more sweep points) |

pub mod datasets;
pub mod experiments;
pub mod queries;
pub mod report;
pub mod runner;

pub use datasets::{dataset, BenchScale, DatasetKind};
pub use report::Table;
pub use runner::{fresh_system, time_it};
