//! # sommelier-server
//!
//! The multi-tenant query front end of the sommelier system: a
//! long-running [`Server`] wraps one [`Sommelier`] instance and hands
//! out [`Session`]s, each with its own priority, in-flight quota and
//! default timeout. Sessions submit SQL and get back a
//! [`QueryHandle`] — cancellable, timeout-able, waitable — while every
//! query's morsels run on the system's **one shared scheduler**
//! (`max_threads` persistent workers, see
//! `SommelierConfig::shared_scheduler`), so the total number of live
//! worker threads is bounded no matter how many sessions are active.
//! Admission control (`SommelierConfig::admission_*`) queues excess
//! queries instead of letting them thrash the cellar's byte budget.
//! The same bounding applies to cold-read bandwidth: raw-byte prefetch
//! (`SommelierConfig::prefetch_depth`) runs on the system's **one
//! shared IO-thread pool**, so concurrent sessions compete for a fixed
//! set of `somm-io-N` readers (and one staged-byte cap) rather than
//! spawning per-session prefetchers.
//!
//! ```no_run
//! use sommelier_core::adapters::EventLogAdapter;
//! use sommelier_core::{LoadingMode, Priority, Sommelier};
//! use sommelier_server::{Server, SessionOptions};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let somm = Sommelier::builder()
//!     .source(EventLogAdapter::new("/data/logs"))
//!     .build()
//!     .unwrap();
//! somm.prepare(LoadingMode::Lazy).unwrap();
//! let server = Server::new(Arc::new(somm));
//! let session = server.open_session(SessionOptions {
//!     priority: Priority::High,
//!     default_timeout: Some(Duration::from_secs(30)),
//!     ..Default::default()
//! });
//! let handle = session.submit("SELECT AVG(E.val) FROM eventview").unwrap();
//! let result = handle.wait().unwrap();
//! println!("{} rows", result.relation.rows());
//! ```

use sommelier_core::{
    CancelToken, DegradationPolicy, Priority, QueryOptions, QueryResult, Sommelier,
    SommelierError,
};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------------
// Errors

/// Failure of a server-submitted query.
#[derive(Debug)]
pub enum ServerError {
    /// The query was cancelled via [`QueryHandle::cancel`] (or its
    /// session token).
    Cancelled,
    /// The query's timeout elapsed (default from
    /// [`SessionOptions::default_timeout`] or per-submit override).
    TimedOut,
    /// The session already has [`SessionOptions::max_in_flight`]
    /// queries running.
    QuotaExceeded { limit: usize },
    /// Admission control rejected the query: the server-wide wait
    /// queue is full. `retry_after_ms` is the backpressure contract —
    /// how long the client should wait before resubmitting, computed
    /// from queue depth and observed query latency. Transient by
    /// definition: the same query is expected to succeed later.
    Overloaded { message: String, retry_after_ms: u64 },
    /// The server is draining ([`Server::shutdown`] was called) and no
    /// longer accepts queries.
    ShuttingDown,
    /// This exact query text panicked earlier in this session and is
    /// quarantined: resubmitting it verbatim fails fast instead of
    /// hot-looping a poison query through the worker pool.
    Quarantined { fingerprint: u64 },
    /// Any other failure, forwarded from the underlying system.
    Query(SommelierError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Cancelled => write!(f, "query cancelled"),
            ServerError::TimedOut => write!(f, "query timed out"),
            ServerError::QuotaExceeded { limit } => {
                write!(f, "session quota exceeded ({limit} queries in flight)")
            }
            ServerError::Overloaded { message, retry_after_ms } => {
                write!(f, "server overloaded: {message} (retry after {retry_after_ms}ms)")
            }
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
            ServerError::Quarantined { fingerprint } => {
                write!(f, "query quarantined after a panic (fingerprint {fingerprint:#x})")
            }
            ServerError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SommelierError> for ServerError {
    fn from(e: SommelierError) -> Self {
        use sommelier_engine::EngineError;
        match e {
            SommelierError::Engine(EngineError::Cancelled { timed_out: true }) => {
                ServerError::TimedOut
            }
            SommelierError::Engine(EngineError::Cancelled { timed_out: false }) => {
                ServerError::Cancelled
            }
            SommelierError::Overloaded { message, retry_after_ms } => {
                ServerError::Overloaded { message, retry_after_ms }
            }
            SommelierError::ShuttingDown => ServerError::ShuttingDown,
            other => ServerError::Query(other),
        }
    }
}

// ---------------------------------------------------------------------
// Server

struct ServerShared {
    somm: Arc<Sommelier>,
    active_sessions: AtomicU64,
    next_session: AtomicU64,
    /// Set once by [`Server::shutdown`]; submits fail fast with
    /// [`ServerError::ShuttingDown`] from then on.
    shutting_down: AtomicBool,
    /// Every in-flight query's completion state + cancel token, so
    /// shutdown (and the drop drain) can watch and fire them without
    /// the client keeping its [`QueryHandle`] alive. Finished entries
    /// are pruned on each registration.
    inflight: Mutex<Vec<(Arc<HandleState>, CancelToken)>>,
}

impl ServerShared {
    fn publish_sessions(&self) {
        self.somm
            .metrics()
            .gauge("server.active_sessions")
            .set(self.active_sessions.load(Ordering::Relaxed));
    }

    fn register_inflight(&self, state: &Arc<HandleState>, cancel: &CancelToken) {
        let mut v = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        v.retain(|(st, _)| !st.finished.load(Ordering::Acquire));
        v.push((Arc::clone(state), cancel.clone()));
    }

    fn unfinished_inflight(&self) -> usize {
        let v = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        v.iter().filter(|(st, _)| !st.finished.load(Ordering::Acquire)).count()
    }

    fn cancel_inflight(&self) -> usize {
        let v = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        let mut fired = 0;
        for (st, cancel) in v.iter() {
            if !st.finished.load(Ordering::Acquire) {
                cancel.cancel();
                fired += 1;
            }
        }
        fired
    }

    /// Poll until every registered query finished or `deadline` passes.
    /// Returns the number still unfinished.
    fn drain_until(&self, deadline: std::time::Instant) -> usize {
        loop {
            let left = self.unfinished_inflight();
            if left == 0 || std::time::Instant::now() >= deadline {
                return left;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for ServerShared {
    fn drop(&mut self) {
        // Best-effort drain on the last server clone going away:
        // cancel whatever is still running and give it a short window
        // to unwind, so dropped servers do not leave control threads
        // mutating a system the caller believes quiesced. Deliberately
        // does NOT flip the system's admission into shutdown — the
        // shared `Sommelier` stays fully usable after the server drops.
        if self.cancel_inflight() > 0 {
            let deadline = std::time::Instant::now() + Duration::from_secs(2);
            self.drain_until(deadline);
        }
    }
}

/// What [`Server::shutdown`] accomplished, including the invariant
/// ledger read after the drain: a clean shutdown reports zeros across
/// `leaked_pins`, `staged_bytes`, and `queued`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Queries that finished on their own within the deadline.
    pub drained: usize,
    /// Queries still running at the deadline whose cancel tokens were
    /// fired.
    pub cancelled: usize,
    /// Chunk pins still held after the drain (0 on a clean shutdown).
    pub leaked_pins: usize,
    /// Prefetch bytes still staged after the drain (0 on a clean
    /// shutdown).
    pub staged_bytes: usize,
    /// Admission-queue depth after the drain (0 on a clean shutdown —
    /// queued waiters are woken with `ShuttingDown`).
    pub queued: u64,
    /// Wall-clock time the shutdown took.
    pub elapsed: Duration,
}

impl ShutdownReport {
    /// Did the drain leave the system with balanced books?
    pub fn is_clean(&self) -> bool {
        self.leaked_pins == 0 && self.staged_bytes == 0 && self.queued == 0
    }
}

/// The long-running multi-tenant front end over one [`Sommelier`].
/// Cheap to clone; all clones share the same session accounting.
#[derive(Clone)]
pub struct Server {
    shared: Arc<ServerShared>,
}

impl Server {
    /// Wrap a (prepared) system. The system should run with its
    /// defaults of `shared_scheduler: true` and admission control on —
    /// the server works without them, but then each query spawns its
    /// own scoped thread pool and nothing bounds concurrency.
    pub fn new(somm: Arc<Sommelier>) -> Self {
        Server {
            shared: Arc::new(ServerShared {
                somm,
                active_sessions: AtomicU64::new(0),
                next_session: AtomicU64::new(1),
                shutting_down: AtomicBool::new(false),
                inflight: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Gracefully drain and stop the server.
    ///
    /// 1. New submits (and queries waiting in the admission queue)
    ///    fail fast with a typed [`ServerError::ShuttingDown`].
    /// 2. In-flight queries get up to `deadline` to finish on their
    ///    own.
    /// 3. Stragglers have their [`CancelToken`]s fired, and are given
    ///    a bounded grace period to observe the token and unwind.
    /// 4. The shared [`sommelier_core::MorselScheduler`]'s workers are
    ///    joined (post-shutdown queries would still run, inline).
    /// 5. The invariant ledger is read: pinned chunks, staged prefetch
    ///    bytes, and admission-queue depth must all be zero — reported,
    ///    not assumed, in the returned [`ShutdownReport`].
    ///
    /// Idempotent: later calls re-drain whatever is left (trivially
    /// nothing) and re-read the ledger.
    pub fn shutdown(&self, deadline: Duration) -> ShutdownReport {
        let t0 = std::time::Instant::now();
        let shared = &self.shared;
        shared.shutting_down.store(true, Ordering::Release);
        // Admission starts rejecting (and wakes queued waiters typed).
        shared.somm.begin_shutdown();
        let before = shared.unfinished_inflight();
        let left = shared.drain_until(t0 + deadline);
        let drained = before - left;
        let cancelled = shared.cancel_inflight();
        if cancelled > 0 {
            // Cancellation is cooperative (observed at chunk-pipeline
            // boundaries), so give stragglers a bounded grace window —
            // generous, but never unbounded.
            shared.drain_until(std::time::Instant::now() + Duration::from_secs(30));
        }
        if let Some(sched) = shared.somm.scheduler() {
            sched.shutdown();
        }
        let leaked_pins = shared.somm.cellar().map_or(0, |c| c.total_pins());
        let staged_bytes = shared.somm.prefetch_stage().map_or(0, |s| s.staged_bytes());
        let queued = shared.somm.admission_stats().queue_depth;
        ShutdownReport {
            drained,
            cancelled,
            leaked_pins,
            staged_bytes,
            queued,
            elapsed: t0.elapsed(),
        }
    }

    /// Has [`Server::shutdown`] been called?
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::Acquire)
    }

    /// Open a session with the given per-session policy.
    pub fn open_session(&self, options: SessionOptions) -> Session {
        let shared = Arc::clone(&self.shared);
        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
        shared.active_sessions.fetch_add(1, Ordering::Relaxed);
        shared.publish_sessions();
        Session {
            shared,
            id,
            options,
            in_flight: Arc::new(AtomicUsize::new(0)),
            quarantined: Arc::new(Mutex::new(std::collections::HashSet::new())),
        }
    }

    /// The wrapped system (for metrics scraping, EXPLAIN, ...).
    pub fn sommelier(&self) -> &Arc<Sommelier> {
        &self.shared.somm
    }

    /// Currently open sessions (also the `server.active_sessions`
    /// gauge in `metrics_snapshot()`).
    pub fn active_sessions(&self) -> u64 {
        self.shared.active_sessions.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server").field("active_sessions", &self.active_sessions()).finish()
    }
}

// ---------------------------------------------------------------------
// Session

/// Per-session policy.
#[derive(Clone, Debug)]
pub struct SessionOptions {
    /// Scheduling priority of the session's queries: position in the
    /// admission queue and of their morsel batches on the shared pool.
    pub priority: Priority,
    /// Quota: how many of the session's queries may be in flight at
    /// once; further submits fail fast with
    /// [`ServerError::QuotaExceeded`].
    pub max_in_flight: usize,
    /// Timeout applied to every query that does not override it.
    pub default_timeout: Option<Duration>,
    /// What the session's queries do with chunks that stay unreadable
    /// after retries: fail (`Strict`, default) or complete over the
    /// readable rest and report the skips
    /// (`sommelier_core::QueryResult::degraded`).
    pub degradation: DegradationPolicy,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            priority: Priority::Normal,
            max_in_flight: 8,
            default_timeout: None,
            degradation: DegradationPolicy::default(),
        }
    }
}

/// Per-submit overrides of the session policy.
#[derive(Clone, Debug, Default)]
pub struct SubmitOptions {
    /// Override the session priority for this query.
    pub priority: Option<Priority>,
    /// Override the session default timeout for this query.
    pub timeout: Option<Duration>,
    /// Approximate execution: deterministic chunk-sampling fraction.
    pub sampling: Option<f64>,
    /// Override the session degradation policy for this query.
    pub degradation: Option<DegradationPolicy>,
}

/// One tenant's handle on the server. Thread-safe; dropping it closes
/// the session (in-flight queries run to completion).
pub struct Session {
    shared: Arc<ServerShared>,
    id: u64,
    options: SessionOptions,
    in_flight: Arc<AtomicUsize>,
    /// Fingerprints (hashes of the exact query text) of queries that
    /// panicked in this session. Resubmitting one fails fast with
    /// [`ServerError::Quarantined`] — a poison query cannot be
    /// hot-looped through the worker pool.
    quarantined: Arc<Mutex<std::collections::HashSet<u64>>>,
}

/// The quarantine fingerprint of a query: a hash of its exact text.
fn query_fingerprint(sql: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    sql.hash(&mut h);
    h.finish()
}

impl Session {
    /// The server-assigned session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Queries of this session quarantined after panicking.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Queries of this session currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// The session's degradation policy (what its queries do with
    /// unreadable chunks, absent a per-submit override).
    pub fn degradation_policy(&self) -> DegradationPolicy {
        self.options.degradation
    }

    /// Submit a query under the session's policy. Returns immediately
    /// with a [`QueryHandle`]; the query runs asynchronously (queued
    /// by admission control when the server is busy).
    pub fn submit(&self, sql: &str) -> Result<QueryHandle, ServerError> {
        self.submit_with(sql, &SubmitOptions::default())
    }

    /// Submit with per-query overrides.
    pub fn submit_with(
        &self,
        sql: &str,
        overrides: &SubmitOptions,
    ) -> Result<QueryHandle, ServerError> {
        // Lifecycle gates first — they must not consume a quota slot.
        if self.shared.shutting_down.load(Ordering::Acquire) {
            return Err(ServerError::ShuttingDown);
        }
        let fingerprint = query_fingerprint(sql);
        if self.quarantined.lock().unwrap_or_else(|e| e.into_inner()).contains(&fingerprint) {
            return Err(ServerError::Quarantined { fingerprint });
        }
        let limit = self.options.max_in_flight.max(1);
        // Claim a quota slot (released by the query thread when done).
        if self
            .in_flight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < limit).then_some(n + 1)
            })
            .is_err()
        {
            return Err(ServerError::QuotaExceeded { limit });
        }
        let cancel = CancelToken::new();
        let qopts = QueryOptions {
            sampling: overrides.sampling,
            priority: overrides.priority.unwrap_or(self.options.priority),
            cancel: Some(cancel.clone()),
            timeout: overrides.timeout.or(self.options.default_timeout),
            degradation: overrides.degradation.unwrap_or(self.options.degradation),
        };
        let state = Arc::new(HandleState {
            result: Mutex::new(None),
            cv: Condvar::new(),
            finished: AtomicBool::new(false),
        });
        let somm = Arc::clone(&self.shared.somm);
        let sql = sql.to_string();
        let in_flight = Arc::clone(&self.in_flight);
        let st = Arc::clone(&state);
        let quarantined = Arc::clone(&self.quarantined);
        self.shared.register_inflight(&state, &cancel);
        // One lightweight control thread per in-flight query: it blocks
        // in admission and on the scheduler; the actual morsel work
        // runs on the shared pool, so worker threads stay bounded by
        // `max_threads`.
        let thread = std::thread::Builder::new()
            .name(format!("somm-query-s{}", self.id))
            .spawn(move || {
                let res = somm.query_opts(&sql, &qopts).map_err(ServerError::from);
                if matches!(
                    &res,
                    Err(ServerError::Query(SommelierError::QueryPanicked { .. }))
                ) {
                    quarantined.lock().unwrap_or_else(|e| e.into_inner()).insert(fingerprint);
                }
                in_flight.fetch_sub(1, Ordering::SeqCst);
                *st.result.lock().unwrap_or_else(|e| e.into_inner()) = Some(res);
                st.finished.store(true, Ordering::Release);
                st.cv.notify_all();
            })
            .expect("spawn query control thread");
        Ok(QueryHandle { cancel, state, thread: Some(thread) })
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.shared.active_sessions.fetch_sub(1, Ordering::Relaxed);
        self.shared.publish_sessions();
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("in_flight", &self.in_flight())
            .field("options", &self.options)
            .finish()
    }
}

// ---------------------------------------------------------------------
// QueryHandle

struct HandleState {
    result: Mutex<Option<Result<QueryResult, ServerError>>>,
    cv: Condvar,
    finished: AtomicBool,
}

/// An in-flight query. Wait on it, poll it, or cancel it; dropping the
/// handle detaches the query (it runs to completion unobserved).
pub struct QueryHandle {
    cancel: CancelToken,
    state: Arc<HandleState>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl QueryHandle {
    /// Request cooperative cancellation. The engine observes the token
    /// at the next chunk-pipeline boundary (or in the admission
    /// queue); the query then fails with [`ServerError::Cancelled`].
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The query's cancellation token (shareable with watchdogs).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Has the query finished (successfully or not)?
    pub fn is_finished(&self) -> bool {
        self.state.finished.load(Ordering::Acquire)
    }

    /// Block until the query finishes and return its result.
    pub fn wait(mut self) -> Result<QueryResult, ServerError> {
        let mut guard = self.state.result.lock().unwrap_or_else(|e| e.into_inner());
        while guard.is_none() {
            guard = self.state.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
        let res = guard.take().expect("result present");
        drop(guard);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        res
    }

    /// Wait up to `timeout` for the result. `None` means the query is
    /// still running and the handle stays usable (poll again, cancel,
    /// or [`QueryHandle::wait`]).
    pub fn wait_for(
        &mut self,
        timeout: Duration,
    ) -> Option<Result<QueryResult, ServerError>> {
        let mut guard = self.state.result.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = std::time::Instant::now() + timeout;
        while guard.is_none() {
            let left = deadline.checked_duration_since(std::time::Instant::now())?;
            let (g, _) =
                self.state.cv.wait_timeout(guard, left).unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
        let res = guard.take().expect("result present");
        drop(guard);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        Some(res)
    }
}

impl fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryHandle").field("finished", &self.is_finished()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_core::adapters::{generate_event_logs, EventLogAdapter, EventLogSpec};
    use sommelier_core::LoadingMode;

    fn test_server(tag: &str) -> Server {
        let dir = std::env::temp_dir()
            .join(format!("somm-server-unit-{tag}-{}", std::process::id()));
        generate_event_logs(&dir, &EventLogSpec::small(2, 128)).unwrap();
        let somm = Sommelier::builder().source(EventLogAdapter::new(&dir)).build().unwrap();
        somm.prepare(LoadingMode::Lazy).unwrap();
        Server::new(Arc::new(somm))
    }

    #[test]
    fn sessions_are_counted_and_queries_run() {
        let server = test_server("count");
        assert_eq!(server.active_sessions(), 0);
        let session = server.open_session(SessionOptions::default());
        assert_eq!(server.active_sessions(), 1);
        let r = session.submit("SELECT AVG(E.val) FROM eventview").unwrap().wait().unwrap();
        assert_eq!(r.relation.rows(), 1);
        assert_eq!(session.in_flight(), 0);
        drop(session);
        assert_eq!(server.active_sessions(), 0);
    }

    #[test]
    fn quota_rejects_typed() {
        let server = test_server("quota");
        let session =
            server.open_session(SessionOptions { max_in_flight: 1, ..Default::default() });
        // Occupy the single slot manually so the second submit is
        // deterministic regardless of query speed.
        session.in_flight.store(1, Ordering::SeqCst);
        let err = session.submit("SELECT AVG(E.val) FROM eventview").unwrap_err();
        assert!(matches!(err, ServerError::QuotaExceeded { limit: 1 }), "{err}");
        session.in_flight.store(0, Ordering::SeqCst);
    }

    #[test]
    fn bad_sql_is_a_query_error() {
        let server = test_server("badsql");
        let session = server.open_session(SessionOptions::default());
        let err = session.submit("SELECT nonsense FROM nowhere").unwrap().wait().unwrap_err();
        assert!(matches!(err, ServerError::Query(_)), "{err}");
    }

    #[test]
    fn shutdown_drains_and_rejects_new_submits() {
        let server = test_server("shutdown");
        let session = server.open_session(SessionOptions::default());
        // One query through first, so the drain has had real traffic.
        let r = session.submit("SELECT AVG(E.val) FROM eventview").unwrap().wait().unwrap();
        assert_eq!(r.relation.rows(), 1);
        assert!(!server.is_shutting_down());
        let report = server.shutdown(Duration::from_secs(5));
        assert!(server.is_shutting_down());
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.cancelled, 0, "idle server cancels nothing");
        assert!(report.elapsed < Duration::from_secs(5));
        // New submits fail fast and typed, without consuming quota.
        let err = session.submit("SELECT AVG(E.val) FROM eventview").unwrap_err();
        assert!(matches!(err, ServerError::ShuttingDown), "{err}");
        assert_eq!(session.in_flight(), 0);
        // Shutdown is idempotent.
        let again = server.shutdown(Duration::from_millis(100));
        assert!(again.is_clean(), "{again:?}");
    }

    #[test]
    fn panicking_query_is_typed_and_quarantined() {
        use sommelier_core::{FaultPlan, SommelierConfig};
        let dir =
            std::env::temp_dir().join(format!("somm-server-panic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        generate_event_logs(&dir, &EventLogSpec::small(2, 64)).unwrap();
        let mut chunks = Vec::new();
        fn walk(dir: &std::path::Path, out: &mut Vec<String>) {
            for e in std::fs::read_dir(dir).unwrap().flatten() {
                let p = e.path();
                if p.is_dir() {
                    walk(&p, out);
                } else {
                    out.push(p.to_string_lossy().into_owned());
                }
            }
        }
        walk(&dir, &mut chunks);
        chunks.sort();
        let somm = Sommelier::builder()
            .config(SommelierConfig {
                fault_plan: Some(FaultPlan {
                    panic_uris: vec![chunks[0].clone()],
                    ..FaultPlan::default()
                }),
                ..Default::default()
            })
            .source(EventLogAdapter::new(&dir))
            .build()
            .unwrap();
        somm.prepare(LoadingMode::Lazy).unwrap();
        let somm = Arc::new(somm);
        let server = Server::new(Arc::clone(&somm));
        let session = server.open_session(SessionOptions::default());
        let sql = "SELECT AVG(E.val) FROM eventview";
        // First submit: the injected decode panic fails only this
        // query, typed.
        let err = session.submit(sql).unwrap().wait().unwrap_err();
        assert!(
            matches!(&err, ServerError::Query(SommelierError::QueryPanicked { .. })),
            "{err}"
        );
        assert!(err.to_string().contains("panic"), "{err}");
        assert_eq!(session.quarantined_count(), 1);
        // Resubmitting the poison query fails fast — no hot loop.
        let err = session.submit(sql).unwrap_err();
        assert!(matches!(err, ServerError::Quarantined { .. }), "{err}");
        // No pins or staged bytes leaked, and a query over the healthy
        // chunk (fresh session, same system) still works — the panic
        // poisoned neither the pool nor the cellar.
        assert_eq!(somm.cellar().map_or(0, |c| c.total_pins()), 0);
        assert_eq!(somm.prefetch_stage().map_or(0, |s| s.staged_bytes()), 0);
        let other = server.open_session(SessionOptions::default());
        let healthy = &chunks[1];
        let r = other
            .submit(&format!("SELECT COUNT(*) AS n FROM eventview WHERE G.uri = '{healthy}'"))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(r.relation.rows(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sessions_share_one_prefetch_stage() {
        use sommelier_core::LoadingMode;
        let dir =
            std::env::temp_dir().join(format!("somm-server-prefetch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        generate_event_logs(&dir, &EventLogSpec::small(3, 64)).unwrap();
        let somm = Sommelier::builder().source(EventLogAdapter::new(&dir)).build().unwrap();
        somm.prepare(LoadingMode::Lazy).unwrap();
        let somm = Arc::new(somm);
        let server = Server::new(Arc::clone(&somm));
        // Two sessions race cold multi-chunk scans: both windows run on
        // the system's single IO pool and stage, whose issue/hit
        // counters therefore accumulate across sessions.
        let sql = "SELECT AVG(E.val) FROM eventview WHERE E.val > -1000000000";
        let a = server.open_session(SessionOptions::default());
        let b = server.open_session(SessionOptions::default());
        let (ha, hb) = (a.submit(sql).unwrap(), b.submit(sql).unwrap());
        let (ra, rb) = (ha.wait().unwrap(), hb.wait().unwrap());
        assert_eq!(
            format!("{:?}", ra.relation),
            format!("{:?}", rb.relation),
            "shared staging must not change answers"
        );
        let stage = somm.prefetch_stage().expect("prefetch on by default");
        let (issued, hits, _, _) = stage.stats();
        assert!(issued >= 1, "cold scans must issue prefetches");
        assert!(hits >= 1, "decodes must consume staged bytes");
        assert_eq!(stage.staged_bytes(), 0, "stage drains once queries end");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_session_degradation_policy() {
        use sommelier_core::{FaultPlan, SommelierConfig};
        let dir =
            std::env::temp_dir().join(format!("somm-server-degraded-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        generate_event_logs(&dir, &EventLogSpec::small(2, 64)).unwrap();
        // Declare one chunk file permanently corrupt via the injector.
        fn walk(dir: &std::path::Path, out: &mut Vec<String>) {
            for e in std::fs::read_dir(dir).unwrap().flatten() {
                let p = e.path();
                if p.is_dir() {
                    walk(&p, out);
                } else {
                    out.push(p.to_string_lossy().into_owned());
                }
            }
        }
        let mut chunks = Vec::new();
        walk(&dir, &mut chunks);
        chunks.sort();
        let victim = chunks[0].clone();
        let somm = Sommelier::builder()
            .config(SommelierConfig {
                fault_plan: Some(FaultPlan {
                    corrupt_uris: vec![victim.clone()],
                    ..FaultPlan::default()
                }),
                ..Default::default()
            })
            .source(EventLogAdapter::new(&dir))
            .build()
            .unwrap();
        somm.prepare(LoadingMode::Lazy).unwrap();
        let server = Server::new(Arc::new(somm));
        // A strict session fails with a typed error naming the chunk...
        let strict = server.open_session(SessionOptions::default());
        assert_eq!(strict.degradation_policy(), DegradationPolicy::Strict);
        let err =
            strict.submit("SELECT AVG(E.val) FROM eventview").unwrap().wait().unwrap_err();
        assert!(err.to_string().contains(&victim), "{err}");
        // ...while a SkipUnreadable session completes over the readable
        // rest and reports the skip.
        let skip = server.open_session(SessionOptions {
            degradation: DegradationPolicy::SkipUnreadable,
            ..Default::default()
        });
        let r = skip.submit("SELECT AVG(E.val) FROM eventview").unwrap().wait().unwrap();
        assert_eq!(r.relation.rows(), 1);
        let d = r.degraded.expect("degraded report present");
        assert_eq!(d.skipped_chunks, vec![victim]);
        assert_eq!(d.reasons.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
