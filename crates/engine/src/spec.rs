//! Bound query specifications — the optimizer's input.
//!
//! The SQL binder (crate `sommelier-sql`) lowers a parsed statement to a
//! [`QuerySpec`]: the set of base tables, the join edges between them
//! (equi-joins on per-side key *expressions*, so computed keys like
//! `HOUR_BUCKET(D.sample_time) = H.window_start_ts` are representable),
//! per-table selection conjuncts, and the output shape. All column
//! references in a spec are fully qualified (`F.station`).

use crate::error::{EngineError, Result};
use crate::expr::{AggFunc, Expr};
use sommelier_storage::TableClass;
use std::collections::BTreeSet;

/// A base-table occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    pub name: String,
    pub class: TableClass,
}

/// An equi-join edge between two tables. `left_keys[i] = right_keys[i]`
/// for all `i`; each key expression references only its side's columns.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinEdge {
    pub left: String,
    pub right: String,
    pub left_keys: Vec<Expr>,
    pub right_keys: Vec<Expr>,
}

impl JoinEdge {
    /// Build an edge, validating arity.
    pub fn new(
        left: impl Into<String>,
        right: impl Into<String>,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
    ) -> Result<Self> {
        if left_keys.len() != right_keys.len() || left_keys.is_empty() {
            return Err(EngineError::Plan("join edge key arity mismatch".into()));
        }
        Ok(JoinEdge { left: left.into(), right: right.into(), left_keys, right_keys })
    }

    /// Column-name pairs if every key is a bare column (used to detect
    /// FK→PK joins eligible for index joins).
    pub fn simple_columns(&self) -> Option<Vec<(&str, &str)>> {
        self.left_keys
            .iter()
            .zip(&self.right_keys)
            .map(|(l, r)| match (l, r) {
                (Expr::Col(a), Expr::Col(b)) => Some((a.as_str(), b.as_str())),
                _ => None,
            })
            .collect()
    }

    /// The key expressions belonging to `table`, oriented so that the
    /// returned pair is (this side, other side); `None` if the edge does
    /// not touch `table`.
    pub fn keys_for(&self, table: &str) -> Option<(&[Expr], &[Expr])> {
        if self.left == table {
            Some((&self.left_keys, &self.right_keys))
        } else if self.right == table {
            Some((&self.right_keys, &self.left_keys))
        } else {
            None
        }
    }
}

/// One output item of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputExpr {
    /// Plain scalar output (`SELECT D.sample_time`).
    Column { name: String, expr: Expr },
    /// Aggregate output (`SELECT AVG(D.sample_value)`).
    Aggregate { name: String, func: AggFunc, expr: Expr },
}

impl OutputExpr {
    /// The output column's name.
    pub fn name(&self) -> &str {
        match self {
            OutputExpr::Column { name, .. } | OutputExpr::Aggregate { name, .. } => name,
        }
    }

    /// True for aggregates.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, OutputExpr::Aggregate { .. })
    }
}

/// A bound query.
#[derive(Debug, Clone, Default)]
pub struct QuerySpec {
    pub tables: Vec<TableRef>,
    pub joins: Vec<JoinEdge>,
    /// Single-table selection conjuncts: (table, predicate).
    pub predicates: Vec<(String, Expr)>,
    /// Predicates spanning multiple tables (applied above the joins).
    pub residual: Vec<Expr>,
    pub output: Vec<OutputExpr>,
    /// Group-by expressions (named, so the output can reference them).
    pub group_by: Vec<(String, Expr)>,
    /// Ordering over output column names.
    pub order_by: Vec<(String, bool)>,
    pub limit: Option<usize>,
    pub distinct: bool,
}

impl QuerySpec {
    /// Does the query reference any table of the given class?
    pub fn references_class(&self, class: TableClass) -> bool {
        self.tables.iter().any(|t| t.class == class)
    }

    /// The table entry for `name`.
    pub fn table(&self, name: &str) -> Result<&TableRef> {
        self.tables
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| EngineError::Plan(format!("spec has no table {name:?}")))
    }

    /// True if the query has any aggregate output.
    pub fn has_aggregates(&self) -> bool {
        self.output.iter().any(|o| o.is_aggregate())
    }

    /// All predicates attached to `table`, conjoined.
    pub fn table_predicate(&self, table: &str) -> Option<Expr> {
        Expr::conjoin(
            self.predicates.iter().filter(|(t, _)| t == table).map(|(_, e)| e.clone()),
        )
    }

    /// The set of qualified columns of `table` the query needs anywhere
    /// (selections, join keys, outputs, grouping, ordering) — the
    /// scan-level projection. `extra` adds caller-required columns
    /// (e.g. `F.uri` for lazy loading).
    pub fn needed_columns(&self, table: &str, extra: &[&str]) -> Vec<String> {
        let prefix = format!("{table}.");
        let mut out: BTreeSet<String> = BTreeSet::new();
        let mut add_from = |e: &Expr| {
            for c in e.columns() {
                if c.starts_with(&prefix) {
                    out.insert(c.to_string());
                }
            }
        };
        for (_, p) in &self.predicates {
            add_from(p);
        }
        for j in &self.joins {
            for k in j.left_keys.iter().chain(&j.right_keys) {
                add_from(k);
            }
        }
        for o in &self.output {
            match o {
                OutputExpr::Column { expr, .. } | OutputExpr::Aggregate { expr, .. } => {
                    add_from(expr)
                }
            }
        }
        for (_, e) in &self.group_by {
            add_from(e);
        }
        for c in extra {
            if c.starts_with(&prefix) {
                out.insert((*c).to_string());
            }
        }
        out.into_iter().collect()
    }

    /// Validate basic well-formedness.
    pub fn validate(&self) -> Result<()> {
        if self.tables.is_empty() {
            return Err(EngineError::Plan("query references no tables".into()));
        }
        for (i, t) in self.tables.iter().enumerate() {
            if self.tables[..i].iter().any(|o| o.name == t.name) {
                return Err(EngineError::Plan(format!("duplicate table {:?}", t.name)));
            }
        }
        for j in &self.joins {
            self.table(&j.left)?;
            self.table(&j.right)?;
            if j.left == j.right {
                return Err(EngineError::Plan(format!("self-join edge on {:?}", j.left)));
            }
        }
        for (t, _) in &self.predicates {
            self.table(t)?;
        }
        if self.output.is_empty() {
            return Err(EngineError::Plan("query outputs nothing".into()));
        }
        let mixes_plain =
            self.output.iter().any(|o| !o.is_aggregate()) && self.group_by.is_empty();
        if self.has_aggregates() && mixes_plain {
            return Err(EngineError::Plan(
                "non-aggregate output without GROUP BY alongside aggregates".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Func;

    fn spec() -> QuerySpec {
        QuerySpec {
            tables: vec![
                TableRef { name: "F".into(), class: TableClass::MetadataGiven },
                TableRef { name: "D".into(), class: TableClass::ActualData },
            ],
            joins: vec![JoinEdge::new(
                "F",
                "D",
                vec![Expr::col("F.file_id")],
                vec![Expr::col("D.file_id")],
            )
            .unwrap()],
            predicates: vec![("F".into(), Expr::col("F.station").eq(Expr::lit("ISK")))],
            output: vec![OutputExpr::Aggregate {
                name: "avg_v".into(),
                func: AggFunc::Avg,
                expr: Expr::col("D.sample_value"),
            }],
            ..QuerySpec::default()
        }
    }

    #[test]
    fn validates() {
        spec().validate().unwrap();
        let mut bad = spec();
        bad.tables.push(TableRef { name: "F".into(), class: TableClass::MetadataGiven });
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.output.clear();
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.output
            .push(OutputExpr::Column { name: "s".into(), expr: Expr::col("F.station") });
        assert!(bad.validate().is_err(), "mixing plain + aggregate without GROUP BY");
    }

    #[test]
    fn needed_columns_gathers_everything() {
        let s = spec();
        assert_eq!(
            s.needed_columns("F", &["F.uri"]),
            vec!["F.file_id", "F.station", "F.uri"]
        );
        assert_eq!(s.needed_columns("D", &[]), vec!["D.file_id", "D.sample_value"]);
    }

    #[test]
    fn computed_join_keys_are_not_simple() {
        let simple =
            JoinEdge::new("D", "S", vec![Expr::col("D.seg_id")], vec![Expr::col("S.seg_id")])
                .unwrap();
        assert_eq!(simple.simple_columns().unwrap(), vec![("D.seg_id", "S.seg_id")]);
        let computed = JoinEdge::new(
            "D",
            "H",
            vec![Expr::Call(Func::HourBucket, vec![Expr::col("D.sample_time")])],
            vec![Expr::col("H.window_start_ts")],
        )
        .unwrap();
        assert!(computed.simple_columns().is_none());
        // keys_for orients correctly.
        let (mine, other) = computed.keys_for("H").unwrap();
        assert_eq!(mine[0], Expr::col("H.window_start_ts"));
        assert!(matches!(other[0], Expr::Call(Func::HourBucket, _)));
        assert!(computed.keys_for("F").is_none());
    }

    #[test]
    fn references_class_and_predicates() {
        let s = spec();
        assert!(s.references_class(TableClass::ActualData));
        assert!(!s.references_class(TableClass::MetadataDerived));
        assert!(s.table_predicate("F").is_some());
        assert!(s.table_predicate("D").is_none());
    }
}
