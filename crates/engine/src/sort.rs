//! Ordering (ORDER BY) support.

use crate::error::Result;
use crate::relation::Relation;
use std::cmp::Ordering;

/// Stable sort of `rel` by the named key columns (`true` = ascending).
pub fn sort_relation(rel: &Relation, keys: &[(String, bool)]) -> Result<Relation> {
    let key_idx: Vec<(usize, bool)> = keys
        .iter()
        .map(|(name, asc)| Ok((rel.resolve(name)?, *asc)))
        .collect::<Result<_>>()?;
    let mut order: Vec<u32> = (0..rel.rows() as u32).collect();
    order.sort_by(|&a, &b| {
        for &(ci, asc) in &key_idx {
            let col = rel.column_at(ci);
            let va = col.get(a as usize);
            let vb = col.get(b as usize);
            let ord = va.compare(&vb).unwrap_or(Ordering::Equal);
            let ord = if asc { ord } else { ord.reverse() };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        // Stable tie-break on original position.
        a.cmp(&b)
    });
    Ok(rel.take(&order))
}

/// Keep only the first `n` rows.
pub fn limit(rel: &Relation, n: usize) -> Relation {
    if rel.rows() <= n {
        return rel.clone();
    }
    let idx: Vec<u32> = (0..n as u32).collect();
    rel.take(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_storage::column::TextColumn;
    use sommelier_storage::{ColumnData, Value};

    fn rel() -> Relation {
        Relation::new(vec![
            ("s".into(), ColumnData::Text(TextColumn::from_strs(["b", "a", "b", "a"]))),
            ("v".into(), ColumnData::Int64(vec![1, 4, 3, 2])),
        ])
        .unwrap()
    }

    #[test]
    fn single_key_ascending() {
        let out = sort_relation(&rel(), &[("v".into(), true)]).unwrap();
        let vs: Vec<Value> = (0..4).map(|r| out.value(r, "v").unwrap()).collect();
        assert_eq!(vs, vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)]);
    }

    #[test]
    fn multi_key_mixed_direction() {
        let out = sort_relation(&rel(), &[("s".into(), true), ("v".into(), false)]).unwrap();
        let rows: Vec<(String, i64)> = (0..4)
            .map(|r| {
                let s = match out.value(r, "s").unwrap() {
                    Value::Text(s) => s,
                    _ => unreachable!(),
                };
                let v = out.value(r, "v").unwrap().as_i64().unwrap();
                (s, v)
            })
            .collect();
        assert_eq!(
            rows,
            vec![("a".into(), 4), ("a".into(), 2), ("b".into(), 3), ("b".into(), 1)]
        );
    }

    #[test]
    fn unknown_key_errors() {
        assert!(sort_relation(&rel(), &[("nope".into(), true)]).is_err());
    }

    #[test]
    fn limit_caps_rows() {
        assert_eq!(limit(&rel(), 2).rows(), 2);
        assert_eq!(limit(&rel(), 10).rows(), 4);
        assert_eq!(limit(&rel(), 0).rows(), 0);
    }
}
