//! The concrete optimizer passes. See the [module docs](super) for the
//! pipeline order.

use super::{ColumnZone, OptPass, OptState, PassEffect, ZoneCandidates, ZoneConstraint};
use crate::error::{EngineError, Result};
use crate::expr::{CmpOp, Expr};
use crate::joinorder::{plan_query, PlanOptions};
use crate::logical::LogicalPlan;
use crate::physical::{fuse_partial_agg, lower, LowerOptions, PhysicalPlan};
use sommelier_storage::Value;
use std::collections::HashSet;

/// `join_order` — the paper's R1–R4 metadata-first decomposition
/// (`Q = Qf ▷ Qs`) or, for eager plans, the traditional greedy order.
/// Consumes [`OptState::spec`], produces [`OptState::logical`].
pub struct JoinOrder {
    pub options: PlanOptions,
}

impl JoinOrder {
    /// Wrap existing plan options.
    pub fn from_options(opts: &PlanOptions) -> Self {
        JoinOrder { options: opts.clone() }
    }
}

impl OptPass for JoinOrder {
    fn name(&self) -> &'static str {
        "join_order"
    }

    fn apply(&self, state: &mut OptState) -> Result<PassEffect> {
        let Some(spec) = state.spec else {
            return Ok(PassEffect::Skipped("no spec to order".into()));
        };
        let plan = plan_query(spec, &self.options)?;
        let detail = if self.options.metadata_first {
            match plan.qf() {
                Some(qf) => format!(
                    "metadata-first: Qf over [{}]{}",
                    qf.tables().join(", "),
                    if plan.has_lazy_scan() { ", lazy actual-data scans above" } else { "" }
                ),
                None => "metadata-first: no metadata tables (pure actual-data)".into(),
            }
        } else {
            "traditional greedy order (eager plan)".into()
        };
        state.logical = Some(std::borrow::Cow::Owned(plan));
        Ok(PassEffect::Fired(detail))
    }
}

/// `zone_map_pruning` — drop chunks whose recorded min/max zone maps
/// contradict the lazy scan's pushed-down predicate, before any decode
/// is scheduled. With several lazy scans (which share one chunk list),
/// a chunk is dropped only if *every* scan's predicate contradicts it.
pub struct ZoneMapPruning {
    pub enabled: bool,
}

impl OptPass for ZoneMapPruning {
    fn name(&self) -> &'static str {
        "zone_map_pruning"
    }

    fn apply(&self, state: &mut OptState) -> Result<PassEffect> {
        if !self.enabled {
            return Ok(PassEffect::Skipped("disabled by config".into()));
        }
        let Some(chunks) = state.chunks.as_mut() else {
            return Ok(PassEffect::Skipped("no run-time chunk list".into()));
        };
        let Some(zones) = state.zones else {
            // Plan-time pipelines (EXPLAIN) have no zone provider; the
            // pass is armed and applies once the chunk list is real.
            return Ok(PassEffect::Skipped("armed; chunk zones resolved at run time".into()));
        };
        let plan = state.logical.as_ref().ok_or_else(|| {
            EngineError::Plan("zone_map_pruning needs the logical plan".into())
        })?;
        let mut predicates: Vec<Option<&Expr>> = Vec::new();
        plan.visit(&mut |p| {
            if let LogicalPlan::LazyScan { predicate, .. } = p {
                predicates.push(predicate.as_ref());
            }
        });
        if predicates.is_empty() || predicates.iter().any(|p| p.is_none()) {
            return Ok(PassEffect::Skipped(
                "no pushed-down predicate on the lazy scans".into(),
            ));
        }
        // Split each predicate into conjuncts once, not once per chunk.
        let conjunct_sets: Vec<Vec<Expr>> = predicates
            .iter()
            .map(|p| p.expect("checked above").clone().split_conjunction())
            .collect();
        let before = chunks.len();

        // Indexed prefilter: ask the registry's sorted interval index
        // which chunks may satisfy each scan's constraints
        // (O(log n + hits) instead of touching every chunk's zones). A
        // chunk survives if *any* scan's candidate set keeps it; the
        // exact per-chunk checks below then run on the survivors only —
        // so an over-approximating index stays sound and the final
        // chunk list is identical to the unindexed path.
        let mut indexed = false;
        if let Some(index) = state.zone_candidates {
            let mut keep: HashSet<std::sync::Arc<str>> = HashSet::new();
            let mut keep_all = false;
            for conjuncts in &conjunct_sets {
                let constraints: Vec<ZoneConstraint> =
                    conjuncts.iter().filter_map(as_zone_constraint).collect();
                match (!constraints.is_empty()).then(|| index(&constraints)).flatten() {
                    Some(ZoneCandidates::Uris(uris)) => keep.extend(uris),
                    // This scan constrains nothing the index can see:
                    // every chunk survives the prefilter.
                    Some(ZoneCandidates::All) | None => {
                        keep_all = true;
                        break;
                    }
                }
            }
            if !keep_all {
                chunks.retain(|c| keep.contains(c.uri.as_str()));
                indexed = true;
            }
        }

        // Exact per-chunk zone checks on the (prefiltered) list.
        chunks.retain(|c| {
            let Some(zone) = zones(&c.uri) else { return true };
            // Prunable only if every lazy scan's predicate rules the
            // chunk out.
            !conjunct_sets
                .iter()
                .all(|conjuncts| conjuncts.iter().any(|c| conjunct_contradicted(c, &zone)))
        });
        let pruned = before - chunks.len();
        state.pruned = pruned;
        let how = if indexed { "indexed" } else { "scanned" };
        if pruned == 0 {
            Ok(PassEffect::Skipped(format!("no chunk of {before} contradicted ({how})")))
        } else {
            Ok(PassEffect::Fired(format!("pruned {pruned} of {before} chunks ({how})")))
        }
    }
}

/// Normalize one conjunct into the `column ⟨op⟩ literal` form a zone
/// interval index can answer; `None` for any other shape.
pub fn as_zone_constraint(conjunct: &Expr) -> Option<ZoneConstraint> {
    let Expr::Cmp(op, lhs, rhs) = conjunct else { return None };
    let (op, col, lit) = match (&**lhs, &**rhs) {
        (Expr::Col(c), Expr::Lit(v)) => (*op, c, v),
        (Expr::Lit(v), Expr::Col(c)) => (op.flip(), c, v),
        _ => return None,
    };
    Some(ZoneConstraint { column: col.clone(), op, value: lit.clone() })
}

/// The zone constraints of every lazy scan's pushed-down predicate in
/// `plan` — one entry per lazy scan carrying a predicate. This is how
/// `EXPLAIN` probes the registry's zone index for a candidate count
/// without running the query (at plan time the chunk list is not yet
/// real, so `ZoneMapPruning` itself only reports "armed").
pub fn plan_zone_constraints(plan: &LogicalPlan) -> Vec<Vec<ZoneConstraint>> {
    let mut out = Vec::new();
    plan.visit(&mut |p| {
        if let LogicalPlan::LazyScan { predicate: Some(pred), .. } = p {
            out.push(
                pred.clone()
                    .split_conjunction()
                    .iter()
                    .filter_map(as_zone_constraint)
                    .collect(),
            );
        }
    });
    out
}

/// Is `column ⟨op⟩ lit` provably false for every row of a chunk with
/// the given zones? The single source of truth for zone contradiction —
/// the pruning pass, the core registry's linear scan and the interval
/// index's equivalence tests all funnel through it.
pub fn zone_conjunct_contradicted(
    op: CmpOp,
    column: &str,
    lit: &Value,
    zones: &[ColumnZone],
) -> bool {
    let Some(zone) = zones.iter().find(|z| z.column == column) else { return false };
    // Coerce the literal into the zone's type family (e.g. a quoted
    // timestamp against a Time zone); incomparable → keep the chunk.
    let lit = match zone.min.data_type().and_then(|t| lit.coerce_to(t).ok()) {
        Some(v) => v,
        None => return false,
    };
    let (Ok(min_lit), Ok(max_lit)) = (zone.min.compare(&lit), zone.max.compare(&lit)) else {
        return false;
    };
    use std::cmp::Ordering::*;
    match op {
        // col < L: impossible if even the smallest value is >= L.
        CmpOp::Lt => matches!(min_lit, Greater | Equal),
        // col <= L: impossible if min > L.
        CmpOp::Le => matches!(min_lit, Greater),
        // col > L: impossible if even the largest value is <= L.
        CmpOp::Gt => matches!(max_lit, Less | Equal),
        // col >= L: impossible if max < L.
        CmpOp::Ge => matches!(max_lit, Less),
        // col = L: impossible if L lies outside [min, max].
        CmpOp::Eq => matches!(min_lit, Greater) || matches!(max_lit, Less),
        CmpOp::Ne => false,
    }
}

/// Is `pred` provably false for every row of a chunk with the given
/// zones? Only plain `col ⟨op⟩ literal` conjuncts can contradict;
/// anything else (disjunctions, computed columns, unzoned columns)
/// conservatively keeps the chunk. (The pass itself pre-splits the
/// conjunctions; this convenience form drives the unit tests.)
#[cfg(test)]
fn contradicted(pred: &Expr, zones: &[ColumnZone]) -> bool {
    pred.clone().split_conjunction().iter().any(|c| conjunct_contradicted(c, zones))
}

fn conjunct_contradicted(conjunct: &Expr, zones: &[ColumnZone]) -> bool {
    // Borrowing normalization (no per-chunk clones): this runs once per
    // chunk per conjunct in the exact retain pass.
    let Expr::Cmp(op, lhs, rhs) = conjunct else { return false };
    let (op, col, lit) = match (&**lhs, &**rhs) {
        (Expr::Col(c), Expr::Lit(v)) => (*op, c.as_str(), v),
        (Expr::Lit(v), Expr::Col(c)) => (op.flip(), c.as_str(), v),
        _ => return false,
    };
    zone_conjunct_contradicted(op, col, lit, zones)
}

/// `chunk_rewrite` — the run-time rewrite rule (1): every lazy
/// `scan(a)` becomes the union of cache-scans and chunk-accesses over
/// the stage-1 chunk list, and the plan lowers to physical operators
/// (`QfMark` → result-scan, index joins where available). Selections
/// stay *above* the per-chunk accesses here; `selection_pushdown`
/// moves them in.
pub struct ChunkRewrite {
    pub use_index_joins: bool,
}

impl OptPass for ChunkRewrite {
    fn name(&self) -> &'static str {
        "chunk_rewrite"
    }

    fn apply(&self, state: &mut OptState) -> Result<PassEffect> {
        let plan = state
            .logical
            .as_ref()
            .ok_or_else(|| EngineError::Plan("chunk_rewrite needs a logical plan".into()))?;
        let opts = LowerOptions {
            db: state.db,
            use_index_joins: self.use_index_joins,
            lazy_chunks: state.chunks.as_deref(),
            chunk_pushdown: false,
            qf_result_id: state.qf_result_id,
        };
        let phys = lower(plan, &opts)?;
        let detail = match &state.chunks {
            Some(chunks) => {
                let cached = chunks.iter().filter(|c| c.cached).count();
                format!(
                    "lazy scans -> union of {cached} cache-scan + {} chunk-access",
                    chunks.len() - cached
                )
            }
            None => "lowered (no lazy scans)".into(),
        };
        let fired = state.chunks.is_some();
        state.physical = Some(phys);
        if fired {
            Ok(PassEffect::Fired(detail))
        } else {
            Ok(PassEffect::Skipped(detail))
        }
    }
}

/// `selection_pushdown` — move each rewritten scan's selection into
/// the per-chunk accesses (the paper's rewrite-rule refinement), so
/// chunks filter as they decode instead of after the union
/// materializes. Also the gate for `partial_agg_fusion`: without it
/// the union deliberately materializes (the ablation baseline).
pub struct SelectionPushdown {
    pub enabled: bool,
}

impl OptPass for SelectionPushdown {
    fn name(&self) -> &'static str {
        "selection_pushdown"
    }

    fn apply(&self, state: &mut OptState) -> Result<PassEffect> {
        let phys = state.physical.as_mut().ok_or_else(|| {
            EngineError::Plan("selection_pushdown needs a physical plan".into())
        })?;
        if !self.enabled {
            return Ok(PassEffect::Skipped("disabled by config".into()));
        }
        let mut unions = 0usize;
        let mut pushed = 0usize;
        phys.visit_mut(&mut |p| {
            if let PhysicalPlan::ChunkUnion { pushdown, predicate, .. } = p {
                unions += 1;
                *pushdown = true;
                if predicate.is_some() {
                    pushed += 1;
                }
            }
        });
        if unions == 0 {
            Ok(PassEffect::Skipped("no chunk unions in the plan".into()))
        } else {
            Ok(PassEffect::Fired(format!(
                "selections pushed into {pushed} of {unions} chunk unions"
            )))
        }
    }
}

/// `partial_agg_fusion` — rewrite `Aggregate` over a pushdown chunk
/// union (optionally through residual filters and one hash join
/// against a chunk-free build side) into a
/// [`PhysicalPlan::PartialAggUnion`], so stage 2 aggregates
/// chunk-by-chunk and never materializes the union.
pub struct PartialAggFusion;

impl OptPass for PartialAggFusion {
    fn name(&self) -> &'static str {
        "partial_agg_fusion"
    }

    fn apply(&self, state: &mut OptState) -> Result<PassEffect> {
        let phys = state.physical.take().ok_or_else(|| {
            EngineError::Plan("partial_agg_fusion needs a physical plan".into())
        })?;
        let fused = fuse_partial_agg(phys);
        let count = fused.partial_agg_count();
        state.physical = Some(fused);
        if count == 0 {
            Ok(PassEffect::Skipped("no fusable aggregate-over-union chain".into()))
        } else {
            Ok(PassEffect::Fired(format!(
                "{count} aggregate(s) fused into per-chunk partial aggregation"
            )))
        }
    }
}

/// `projection_pushdown` — mark every chunk scan so the *decode* path
/// materializes only the scan's referenced columns (computed by the
/// binder via `QuerySpec::needed_columns`) instead of the full
/// actual-data width. Cache-retained chunks still decode full width
/// (they must serve future queries with other column sets); the two-
/// stage driver applies the projection on the non-retaining decode
/// paths.
pub struct ProjectionPushdown {
    pub enabled: bool,
}

impl OptPass for ProjectionPushdown {
    fn name(&self) -> &'static str {
        "projection_pushdown"
    }

    fn apply(&self, state: &mut OptState) -> Result<PassEffect> {
        let db = state.db;
        let phys = state.physical.as_mut().ok_or_else(|| {
            EngineError::Plan("projection_pushdown needs a physical plan".into())
        })?;
        if !self.enabled {
            return Ok(PassEffect::Skipped("disabled by config".into()));
        }
        let mut details: Vec<String> = Vec::new();
        phys.visit_mut(&mut |p| {
            if let PhysicalPlan::ChunkUnion { table, columns, projected_decode, .. }
            | PhysicalPlan::PartialAggUnion {
                table, columns, projected_decode, ..
            } = p
            {
                *projected_decode = true;
                let width =
                    db.table_schema(table).map(|s| s.columns.len()).unwrap_or(columns.len());
                details.push(format!("{table}: decode {} of {width} columns", columns.len()));
            }
        });
        if details.is_empty() {
            Ok(PassEffect::Skipped("no chunk scans in the plan".into()))
        } else {
            Ok(PassEffect::Fired(details.join("; ")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_storage::Value;

    fn zone(col: &str, min: Value, max: Value) -> ColumnZone {
        ColumnZone { column: col.into(), min, max }
    }

    #[test]
    fn conjunct_contradiction_table() {
        let zones = vec![zone("D.t", Value::Time(100), Value::Time(200))];
        let col = || Expr::col("D.t");
        // Inside the zone: never contradicted.
        assert!(!contradicted(&col().cmp(CmpOp::Ge, Expr::lit(150i64)), &zones));
        // Entirely above the zone.
        assert!(contradicted(&col().cmp(CmpOp::Ge, Expr::lit(201i64)), &zones));
        assert!(contradicted(&col().cmp(CmpOp::Gt, Expr::lit(200i64)), &zones));
        assert!(!contradicted(&col().cmp(CmpOp::Ge, Expr::lit(200i64)), &zones));
        // Entirely below the zone.
        assert!(contradicted(&col().cmp(CmpOp::Lt, Expr::lit(100i64)), &zones));
        assert!(contradicted(&col().cmp(CmpOp::Le, Expr::lit(99i64)), &zones));
        assert!(!contradicted(&col().cmp(CmpOp::Le, Expr::lit(100i64)), &zones));
        // Equality outside / inside.
        assert!(contradicted(&col().eq(Expr::lit(50i64)), &zones));
        assert!(contradicted(&col().eq(Expr::lit(250i64)), &zones));
        assert!(!contradicted(&col().eq(Expr::lit(150i64)), &zones));
        // Flipped literal-first form.
        assert!(contradicted(&Expr::lit(201i64).cmp(CmpOp::Le, col()), &zones));
        // Unzoned column: keep.
        assert!(!contradicted(&Expr::col("D.v").cmp(CmpOp::Gt, Expr::lit(0i64)), &zones));
        // Conjunction: one contradicted factor suffices.
        let both = col().cmp(CmpOp::Ge, Expr::lit(150i64)).and(col().eq(Expr::lit(5i64)));
        assert!(contradicted(&both, &zones));
        // Disjunction: conservatively kept.
        let either = col().eq(Expr::lit(5i64)).or(col().eq(Expr::lit(6i64)));
        assert!(!contradicted(&either, &zones));
    }

    #[test]
    fn literal_coercion_in_pruning() {
        // Float zone vs int literal (the `E.val > 800` shape).
        let zones = vec![zone("E.val", Value::Float(1.0), Value::Float(700.0))];
        assert!(contradicted(&Expr::col("E.val").cmp(CmpOp::Gt, Expr::lit(800i64)), &zones));
        assert!(!contradicted(&Expr::col("E.val").cmp(CmpOp::Gt, Expr::lit(600i64)), &zones));
        // Time zone vs quoted timestamp literal.
        let zones = vec![zone("E.ts", Value::Time(0), Value::Time(1000))];
        let lit = Expr::lit("1970-01-01T00:00:02.000");
        assert!(contradicted(&Expr::col("E.ts").cmp(CmpOp::Ge, lit), &zones));
        // Garbage literal: keep the chunk.
        let lit = Expr::lit("not-a-time");
        assert!(!contradicted(&Expr::col("E.ts").cmp(CmpOp::Ge, lit), &zones));
    }
}
