//! The unified rule-based optimizer: one ordered rewrite pipeline.
//!
//! Before this module, the optimizer of the paper's §III/§V was
//! reproduced as rewrite logic scattered across four places — join
//! ordering in [`crate::joinorder`], lowering plus ad-hoc
//! partial-aggregate fusion in [`crate::physical`], the stage-1→stage-2
//! chunk rewrite open-coded in [`crate::twostage`], and
//! classification/inference in the core crate. Following the
//! rule-controller architecture of systems like AsterixDB, every
//! rewrite is now a named [`OptPass`] executed by an ordered
//! [`Pipeline`] over one [`OptState`], with a per-pass fired/skipped
//! [`PassTrace`] that `EXPLAIN` surfaces.
//!
//! Two pipelines cover the query lifecycle:
//!
//! * **compile** ([`compile_plan`]): `join_order` — the R1–R4
//!   metadata-first decomposition (or the traditional greedy order for
//!   eager plans), producing the logical plan.
//! * **stage 2** ([`rewrite_stage2`]), invoked by the two-stage driver
//!   once the stage-1 chunk list is known:
//!   `zone_map_pruning` → `chunk_rewrite` → `selection_pushdown` →
//!   `partial_agg_fusion` → `projection_pushdown`.
//!
//! The two genuinely new passes:
//!
//! * **`zone_map_pruning`** — drops chunks whose per-chunk min/max
//!   zone maps (recorded by the registrar from adapter-declared
//!   prunable columns) contradict the lazy scan's pushed-down
//!   predicate, *before any decode is scheduled*.
//! * **`projection_pushdown`** — marks chunk scans so the decode path
//!   materializes only the columns the query references (the
//!   scan-level projection the binder already computed via
//!   `QuerySpec::needed_columns`), instead of decoding the full
//!   actual-data width and projecting afterwards.

pub mod passes;

pub use passes::{
    as_zone_constraint, plan_zone_constraints, zone_conjunct_contradicted, ChunkRewrite,
    JoinOrder, PartialAggFusion, ProjectionPushdown, SelectionPushdown, ZoneMapPruning,
};

use crate::error::Result;
use crate::joinorder::PlanOptions;
use crate::logical::LogicalPlan;
use crate::physical::{ChunkRef, PhysicalPlan};
use crate::spec::QuerySpec;
use sommelier_storage::{Database, Value};
use std::borrow::Cow;
use std::fmt;

/// A per-chunk min/max summary of one column — the zone map the
/// registrar records for every adapter-declared prunable column.
/// Bounds are **inclusive** and may over-cover (a zone wider than the
/// actual data is safe: pruning only drops chunks whose zone is
/// provably disjoint from the predicate).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnZone {
    /// Qualified actual-data column (e.g. `"D.sample_time"`).
    pub column: String,
    pub min: Value,
    pub max: Value,
}

/// Zone-map lookup, by chunk URI. `None` = no zone maps recorded for
/// the chunk (never pruned).
pub type ZoneMapFn<'a> = dyn Fn(&str) -> Option<Vec<ColumnZone>> + 'a;

/// One `column ⟨op⟩ literal` conjunct of a pushed-down predicate, in
/// the normalized column-on-left form — the query shape a sorted zone
/// interval index answers.
#[derive(Debug, Clone)]
pub struct ZoneConstraint {
    /// Qualified actual-data column (e.g. `"D.sample_time"`).
    pub column: String,
    pub op: crate::expr::CmpOp,
    pub value: Value,
}

/// An indexed answer to "which chunks may satisfy these constraints?".
#[derive(Debug, Clone)]
pub enum ZoneCandidates {
    /// Every registered chunk may satisfy them (no pruning possible).
    All,
    /// Only these chunks (by URI) may satisfy them. Must be a superset
    /// of the exactly-not-contradicted chunks: chunks with no recorded
    /// zone for a constrained column are always included, and
    /// constraints the index cannot answer constrain nothing. The
    /// exact per-chunk zone check still runs on the survivors, so an
    /// over-approximation is sound — an under-approximation is not.
    /// Shared `Arc<str>` URIs keep per-hit cost at a refcount bump
    /// (implementations intern them once at registration).
    Uris(std::collections::HashSet<std::sync::Arc<str>>),
}

/// Indexed stage-1 candidate selection over the chunk registry's zone
/// maps (O(log n + hits) instead of a per-chunk scan). `None` = no
/// index can answer (fall back to per-chunk zone checks only). The
/// implementation must be built over the same registry the run-time
/// chunk list is drawn from.
pub type ZoneCandidateFn<'a> = dyn Fn(&[ZoneConstraint]) -> Option<ZoneCandidates> + 'a;

/// What one pipeline run carries between passes.
pub struct OptState<'a> {
    pub db: &'a Database,
    /// The bound spec (input of the compile pipeline).
    pub spec: Option<&'a QuerySpec>,
    /// The logical plan (output of `join_order`, input of stage 2 —
    /// borrowed there, since the stage-2 passes only read it).
    pub logical: Option<Cow<'a, LogicalPlan>>,
    /// The physical plan (output of `chunk_rewrite`).
    pub physical: Option<PhysicalPlan>,
    /// The run-time chunk list for lazy-scan expansion. `None` for
    /// eager plans (no lazy scans to expand).
    pub chunks: Option<Vec<ChunkRef>>,
    /// Zone-map lookup for `zone_map_pruning`.
    pub zones: Option<&'a ZoneMapFn<'a>>,
    /// Indexed candidate selection for `zone_map_pruning` (the sorted
    /// interval index over the chunk registry); the exact per-chunk
    /// checks then run on the prefiltered survivors only.
    pub zone_candidates: Option<&'a ZoneCandidateFn<'a>>,
    /// What `QfMark` lowers to (a materialized result-scan slot).
    pub qf_result_id: Option<usize>,
    /// Chunks dropped by `zone_map_pruning` this run.
    pub pruned: usize,
}

impl<'a> OptState<'a> {
    /// An empty state over `db`.
    pub fn new(db: &'a Database) -> Self {
        OptState {
            db,
            spec: None,
            logical: None,
            physical: None,
            chunks: None,
            zones: None,
            zone_candidates: None,
            qf_result_id: None,
            pruned: 0,
        }
    }
}

/// Outcome of one pass application.
pub enum PassEffect {
    /// The pass rewrote the plan (detail says what it did).
    Fired(String),
    /// The pass did not apply (detail says why).
    Skipped(String),
}

/// One rewrite rule of the pipeline.
pub trait OptPass {
    /// Stable pass name (shown in traces and EXPLAIN).
    fn name(&self) -> &'static str;

    /// Apply the pass to `state`.
    fn apply(&self, state: &mut OptState) -> Result<PassEffect>;
}

/// One line of the optimizer trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PassTrace {
    pub name: &'static str,
    pub fired: bool,
    pub detail: String,
    /// Wall time the pass took. Always measured — two `Instant` reads
    /// per pass are noise — so `EXPLAIN ANALYZE` and the span trace can
    /// replay per-pass timings without re-running the pipeline.
    pub nanos: u64,
}

impl fmt::Display for PassTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({})",
            self.name,
            if self.fired { "fired" } else { "skipped" },
            self.detail
        )
    }
}

/// An ordered sequence of passes.
pub struct Pipeline {
    passes: Vec<Box<dyn OptPass>>,
}

impl Pipeline {
    /// A pipeline running `passes` in order.
    pub fn new(passes: Vec<Box<dyn OptPass>>) -> Self {
        Pipeline { passes }
    }

    /// Run every pass in order, collecting the trace.
    pub fn run(&self, state: &mut OptState) -> Result<Vec<PassTrace>> {
        let mut trace = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            let start = std::time::Instant::now();
            let (fired, detail) = match pass.apply(state)? {
                PassEffect::Fired(d) => (true, d),
                PassEffect::Skipped(d) => (false, d),
            };
            let nanos = start.elapsed().as_nanos() as u64;
            trace.push(PassTrace { name: pass.name(), fired, detail, nanos });
        }
        Ok(trace)
    }
}

/// Knobs of the stage-2 pipeline (mirrors
/// [`crate::twostage::TwoStageConfig`]).
#[derive(Debug, Clone)]
pub struct Stage2Options {
    pub use_index_joins: bool,
    /// `selection_pushdown` (rewrite-rule refinement; also the fusion
    /// gate).
    pub pushdown: bool,
    /// `projection_pushdown` (decode only referenced columns).
    pub projection_pushdown: bool,
    /// `zone_map_pruning` (drop contradicted chunks before decode).
    pub zone_map_pruning: bool,
}

/// Result of the stage-2 pipeline.
pub struct Stage2Plan {
    pub physical: PhysicalPlan,
    /// The (possibly zone-pruned) chunk list the driver must acquire,
    /// when the plan had lazy scans.
    pub chunks: Option<Vec<ChunkRef>>,
    /// Chunks dropped by `zone_map_pruning`.
    pub pruned: usize,
    pub trace: Vec<PassTrace>,
}

/// The compile pipeline: spec → logical plan via the `join_order` pass.
pub fn compile_plan(
    spec: &QuerySpec,
    db: &Database,
    opts: &PlanOptions,
) -> Result<(LogicalPlan, Vec<PassTrace>)> {
    let pipeline = Pipeline::new(vec![Box::new(JoinOrder::from_options(opts))]);
    let mut state = OptState::new(db);
    state.spec = Some(spec);
    let trace = pipeline.run(&mut state)?;
    let plan = state.logical.expect("join_order produced a plan").into_owned();
    Ok((plan, trace))
}

/// The stage-2 pipeline: logical plan + run-time chunk list → physical
/// plan, through every rewrite rule in order.
pub fn rewrite_stage2(
    plan: &LogicalPlan,
    db: &Database,
    chunks: Option<Vec<ChunkRef>>,
    zones: Option<&ZoneMapFn<'_>>,
    zone_candidates: Option<&ZoneCandidateFn<'_>>,
    qf_result_id: Option<usize>,
    opts: &Stage2Options,
) -> Result<Stage2Plan> {
    let pipeline = Pipeline::new(vec![
        Box::new(ZoneMapPruning { enabled: opts.zone_map_pruning }),
        Box::new(ChunkRewrite { use_index_joins: opts.use_index_joins }),
        Box::new(SelectionPushdown { enabled: opts.pushdown }),
        Box::new(PartialAggFusion),
        Box::new(ProjectionPushdown { enabled: opts.projection_pushdown }),
    ]);
    let mut state = OptState::new(db);
    state.logical = Some(Cow::Borrowed(plan));
    state.chunks = chunks;
    state.zones = zones;
    state.zone_candidates = zone_candidates;
    state.qf_result_id = qf_result_id;
    let trace = pipeline.run(&mut state)?;
    Ok(Stage2Plan {
        physical: state.physical.expect("chunk_rewrite produced a plan"),
        chunks: state.chunks,
        pruned: state.pruned,
        trace,
    })
}

/// Render a trace as indented lines (what EXPLAIN appends).
pub fn format_trace(trace: &[PassTrace]) -> String {
    let mut out = String::new();
    for t in trace {
        out.push_str("  ");
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}
