//! Materialized intermediate relations.
//!
//! A [`Relation`] is an ordered list of named columns of equal length.
//! Column names are qualified (`F.station`) at scan time; derived
//! columns carry whatever name the projection/aggregation gave them.
//! Lookup accepts either the exact name or an unambiguous suffix match
//! (`station` finds `F.station`), which is how the SQL layer resolves
//! bare identifiers.
//!
//! Column payloads are shared (`Arc<ColumnData>`), so cloning a
//! relation, projecting columns out of it, or handing it between the
//! cellar/recycler and the executor never copies row data — operators
//! that really produce new rows (filters, gathers, unions) copy, and
//! in-place mutation goes through copy-on-write
//! ([`std::sync::Arc::make_mut`]).
//!
//! A relation may carry *provenance*: the base table it was scanned
//! from plus the base-table row position of each of its rows. Filters
//! preserve provenance; that is what lets the executor use a
//! materialized FK [`sommelier_storage::index::JoinIndex`] (an
//! *index-scan* access path) on an already-filtered child.

use crate::error::{EngineError, Result};
use sommelier_storage::{ColumnData, DataType, Value};
use std::sync::Arc;

/// Row provenance for index joins.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// The base table these rows come from.
    pub table: String,
    /// For each relation row, its row position in the base table.
    pub rows: Vec<u32>,
}

/// A named-column relation with shared (zero-copy) column payloads.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    cols: Vec<(String, Arc<ColumnData>)>,
    provenance: Option<Provenance>,
}

impl Relation {
    /// Empty relation (no columns, no rows).
    pub fn empty() -> Self {
        Relation::default()
    }

    /// Build from named columns; validates equal lengths.
    pub fn new(cols: Vec<(String, ColumnData)>) -> Result<Self> {
        Relation::from_shared(cols.into_iter().map(|(n, c)| (n, Arc::new(c))).collect())
    }

    /// Build from already-shared columns (no copies); validates equal
    /// lengths.
    pub fn from_shared(cols: Vec<(String, Arc<ColumnData>)>) -> Result<Self> {
        if let Some(first) = cols.first().map(|(_, c)| c.len()) {
            for (name, c) in &cols {
                if c.len() != first {
                    return Err(EngineError::Exec(format!(
                        "ragged relation: column {name} has {} rows, expected {first}",
                        c.len()
                    )));
                }
            }
        }
        Ok(Relation { cols, provenance: None })
    }

    /// Attach provenance (base table + row positions).
    pub fn with_provenance(mut self, table: impl Into<String>, rows: Vec<u32>) -> Self {
        self.provenance = Some(Provenance { table: table.into(), rows });
        self
    }

    /// The provenance, if preserved.
    pub fn provenance(&self) -> Option<&Provenance> {
        self.provenance.as_ref()
    }

    /// Drop provenance (after joins and projections that break it).
    pub fn clear_provenance(&mut self) {
        self.provenance = None;
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.cols.first().map_or(0, |(_, c)| c.len())
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.cols.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The columns (name, shared data) in order.
    pub fn columns(&self) -> &[(String, Arc<ColumnData>)] {
        &self.cols
    }

    /// Mutable access (used by union assembly). Writing through a
    /// shared column copies it first ([`Arc::make_mut`]).
    pub fn columns_mut(&mut self) -> &mut Vec<(String, Arc<ColumnData>)> {
        self.provenance = None;
        &mut self.cols
    }

    /// Resolve `name` to a column position: exact match first, then an
    /// unambiguous `.name` suffix match.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        if let Some(i) = self.cols.iter().position(|(n, _)| n == name) {
            return Ok(i);
        }
        let suffix = format!(".{name}");
        let mut found = None;
        for (i, (n, _)) in self.cols.iter().enumerate() {
            if n.ends_with(&suffix) {
                if found.is_some() {
                    return Err(EngineError::Bind(format!("ambiguous column name {name:?}")));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            EngineError::Bind(format!(
                "unknown column {name:?} (have: {})",
                self.names().join(", ")
            ))
        })
    }

    /// The column named `name`.
    pub fn column(&self, name: &str) -> Result<&ColumnData> {
        Ok(&self.cols[self.resolve(name)?].1)
    }

    /// Column by position.
    pub fn column_at(&self, i: usize) -> &ColumnData {
        &self.cols[i].1
    }

    /// The scalar at (row, column name) — convenience for tests/results.
    pub fn value(&self, row: usize, name: &str) -> Result<Value> {
        Ok(self.column(name)?.get(row))
    }

    /// Gather rows by position into a new relation (provenance follows).
    /// The identity gather (every row once, in order — what an FK join
    /// whose every probe row matches exactly once produces) returns a
    /// cheap clone with shared columns instead of copying.
    pub fn take(&self, idx: &[u32]) -> Relation {
        if idx.len() == self.rows() && idx.iter().enumerate().all(|(i, &x)| x as usize == i) {
            return self.clone();
        }
        let cols =
            self.cols.iter().map(|(n, c)| (n.clone(), Arc::new(c.take(idx)))).collect();
        let provenance = self.provenance.as_ref().map(|p| Provenance {
            table: p.table.clone(),
            rows: idx.iter().map(|&i| p.rows[i as usize]).collect(),
        });
        Relation { cols, provenance }
    }

    /// Filter by a boolean mask (provenance follows). An all-true mask
    /// returns a cheap clone (shared columns, no per-row copies); the
    /// gather list is pre-sized from the mask's popcount otherwise.
    pub fn filter(&self, mask: &[bool]) -> Relation {
        debug_assert_eq!(mask.len(), self.rows());
        let kept = mask.iter().filter(|&&k| k).count();
        if kept == mask.len() {
            return self.clone();
        }
        let mut idx: Vec<u32> = Vec::with_capacity(kept);
        idx.extend(mask.iter().enumerate().filter_map(|(i, &k)| k.then_some(i as u32)));
        self.take(&idx)
    }

    /// Append `other`'s rows (schemas must match by name & type, in
    /// order). The first append to a shared column copies it
    /// (copy-on-write) with capacity reserved for both sides up front;
    /// a union of a single relation stays zero-copy.
    pub fn union_in_place(&mut self, other: &Relation) -> Result<()> {
        if self.cols.is_empty() {
            *self = other.clone();
            self.provenance = None;
            return Ok(());
        }
        if self.width() != other.width() {
            return Err(EngineError::Exec(format!(
                "union arity mismatch: {} vs {}",
                self.width(),
                other.width()
            )));
        }
        let extra = other.rows();
        for ((an, ac), (bn, bc)) in self.cols.iter_mut().zip(other.cols.iter()) {
            if an != bn {
                return Err(EngineError::Exec(format!(
                    "union column mismatch: {an} vs {bn}"
                )));
            }
            let appended = Arc::get_mut(ac).map(|col| {
                col.reserve(extra);
                col.append(bc)
            });
            match appended {
                Some(done) => done?,
                // Shared numeric column: rebuild once with the combined
                // capacity instead of copy-on-write (exact-size clone)
                // followed by a growing append.
                None if !matches!(&**ac, ColumnData::Text(_)) => {
                    let mut col = ColumnData::with_capacity(ac.data_type(), ac.len() + extra);
                    col.append(ac)?;
                    col.append(bc)?;
                    *ac = Arc::new(col);
                }
                // Shared text column: copy-on-write keeps the shared
                // dictionary (a capacity rebuild would re-intern every
                // code); reserve before extending.
                None => {
                    let col = Arc::make_mut(ac);
                    col.reserve(extra);
                    col.append(bc)?;
                }
            }
        }
        self.provenance = None;
        Ok(())
    }

    /// Keep only the named columns, renaming to (output name, source
    /// name). Zero-copy: the output shares the source's column payloads.
    pub fn project_named(&self, wanted: &[(String, String)]) -> Result<Relation> {
        let mut cols = Vec::with_capacity(wanted.len());
        for (out, src) in wanted {
            let i = self.resolve(src)?;
            cols.push((out.clone(), Arc::clone(&self.cols[i].1)));
        }
        Relation::from_shared(cols)
    }

    /// Approximate heap bytes (for the recycler's budget accounting).
    pub fn approx_bytes(&self) -> usize {
        self.cols.iter().map(|(n, c)| n.len() + c.approx_bytes()).sum::<usize>()
            + self.provenance.as_ref().map_or(0, |p| p.rows.len() * 4)
    }

    /// Render as an aligned text table (examples, debugging).
    pub fn pretty(&self, limit: usize) -> String {
        let mut out = String::new();
        let names = self.names();
        out.push_str(&names.join(" | "));
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        out.push('\n');
        for r in 0..self.rows().min(limit) {
            let row: Vec<String> =
                self.cols.iter().map(|(_, c)| c.get(r).to_string()).collect();
            out.push_str(&row.join(" | "));
            out.push('\n');
        }
        if self.rows() > limit {
            out.push_str(&format!("... ({} rows total)\n", self.rows()));
        }
        out
    }

    /// Data types of the columns, in order.
    pub fn types(&self) -> Vec<DataType> {
        self.cols.iter().map(|(_, c)| c.data_type()).collect()
    }
}

/// Typed, pre-sized column builders for assembling a [`Relation`] in a
/// single pass — the decode hot path's alternative to building one
/// relation per sub-unit (segment, CSV line, ...) and unioning them,
/// which re-copies every column once per unit.
///
/// Columns are declared up front with their expected row count; hot
/// loops then write straight into the destination buffers through the
/// typed `*_mut` accessors (index handles from the `add_*` calls, so no
/// name lookups per row). [`RelationBuilder::finish`] validates equal
/// lengths and produces the relation without any further copy.
#[derive(Debug, Default)]
pub struct RelationBuilder {
    cols: Vec<(String, ColumnData)>,
}

impl RelationBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        RelationBuilder::default()
    }

    /// Declare a column of `dtype` pre-sized for `capacity` rows;
    /// returns its handle for the typed accessors.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        dtype: DataType,
        capacity: usize,
    ) -> usize {
        self.cols.push((name.into(), ColumnData::with_capacity(dtype, capacity)));
        self.cols.len() - 1
    }

    /// Number of declared columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// The destination buffer of an `Int64` or `Timestamp` column.
    ///
    /// # Panics
    /// If `idx` is not a handle for an integer-family column.
    pub fn i64_mut(&mut self, idx: usize) -> &mut Vec<i64> {
        match &mut self.cols[idx].1 {
            ColumnData::Int64(v) | ColumnData::Timestamp(v) => v,
            other => panic!("column {idx} is {}, not an i64 family", other.data_type()),
        }
    }

    /// The destination buffer of a `Float64` column.
    ///
    /// # Panics
    /// If `idx` is not a handle for a float column.
    pub fn f64_mut(&mut self, idx: usize) -> &mut Vec<f64> {
        match &mut self.cols[idx].1 {
            ColumnData::Float64(v) => v,
            other => panic!("column {idx} is {}, not float64", other.data_type()),
        }
    }

    /// The destination column of a `Text` column.
    ///
    /// # Panics
    /// If `idx` is not a handle for a text column.
    pub fn text_mut(&mut self, idx: usize) -> &mut sommelier_storage::column::TextColumn {
        match &mut self.cols[idx].1 {
            ColumnData::Text(t) => t,
            other => panic!("column {idx} is {}, not text", other.data_type()),
        }
    }

    /// Assemble the relation (validates equal column lengths).
    pub fn finish(self) -> Result<Relation> {
        Relation::new(self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_storage::column::TextColumn;

    fn sample() -> Relation {
        Relation::new(vec![
            ("F.file_id".into(), ColumnData::Int64(vec![1, 2, 3])),
            (
                "F.station".into(),
                ColumnData::Text(TextColumn::from_strs(["ISK", "FIAM", "ISK"])),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn ragged_rejected() {
        let r = Relation::new(vec![
            ("a".into(), ColumnData::Int64(vec![1])),
            ("b".into(), ColumnData::Int64(vec![1, 2])),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn resolve_exact_and_suffix() {
        let r = sample();
        assert_eq!(r.resolve("F.station").unwrap(), 1);
        assert_eq!(r.resolve("station").unwrap(), 1);
        assert!(r.resolve("nope").is_err());
        // Ambiguity.
        let r2 = Relation::new(vec![
            ("F.x".into(), ColumnData::Int64(vec![])),
            ("S.x".into(), ColumnData::Int64(vec![])),
        ])
        .unwrap();
        assert!(r2.resolve("x").is_err());
        assert!(r2.resolve("F.x").is_ok());
    }

    #[test]
    fn take_filter_and_provenance() {
        let r = sample().with_provenance("F", vec![10, 11, 12]);
        let f = r.filter(&[true, false, true]);
        assert_eq!(f.rows(), 2);
        assert_eq!(f.value(1, "station").unwrap(), Value::Text("ISK".into()));
        let p = f.provenance().unwrap();
        assert_eq!(p.rows, vec![10, 12]);
        assert_eq!(p.table, "F");
    }

    #[test]
    fn all_true_filter_shares_columns() {
        let r = sample().with_provenance("F", vec![10, 11, 12]);
        let f = r.filter(&[true, true, true]);
        assert_eq!(f.rows(), 3);
        // No row copies: the filtered relation shares the payloads.
        for (a, b) in r.columns().iter().zip(f.columns()) {
            assert!(Arc::ptr_eq(&a.1, &b.1));
        }
        // Provenance survives the fast path.
        assert_eq!(f.provenance().unwrap().rows, vec![10, 11, 12]);
    }

    #[test]
    fn union_checks_schema() {
        let mut a = sample();
        let b = sample();
        a.union_in_place(&b).unwrap();
        assert_eq!(a.rows(), 6);
        let mismatched =
            Relation::new(vec![("x".into(), ColumnData::Int64(vec![1]))]).unwrap();
        assert!(a.union_in_place(&mismatched).is_err());
        // Union into empty adopts the other's schema.
        let mut e = Relation::empty();
        e.union_in_place(&b).unwrap();
        assert_eq!(e.rows(), 3);
    }

    #[test]
    fn union_copy_on_write_leaves_source_intact() {
        let src = sample();
        let mut u = Relation::empty();
        u.union_in_place(&src).unwrap();
        // Single-relation union shares payloads ...
        assert!(Arc::ptr_eq(&src.columns()[0].1, &u.columns()[0].1));
        u.union_in_place(&src).unwrap();
        // ... and the second append copies before mutating.
        assert!(!Arc::ptr_eq(&src.columns()[0].1, &u.columns()[0].1));
        assert_eq!(src.rows(), 3, "source untouched");
        assert_eq!(u.rows(), 6);
    }

    #[test]
    fn project_named_renames_and_shares() {
        let r = sample();
        let p = r
            .project_named(&[
                ("sid".into(), "file_id".into()),
                ("st".into(), "F.station".into()),
            ])
            .unwrap();
        assert_eq!(p.names(), vec!["sid", "st"]);
        assert_eq!(p.value(0, "sid").unwrap(), Value::Int(1));
        // Zero-copy: projections share the source payloads.
        assert!(Arc::ptr_eq(&p.columns()[1].1, &r.columns()[1].1));
    }

    #[test]
    fn builder_assembles_presized_columns() {
        let mut b = RelationBuilder::new();
        let ids = b.add("D.file_id", DataType::Int64, 3);
        let ts = b.add("D.sample_time", DataType::Timestamp, 3);
        let vals = b.add("D.sample_value", DataType::Float64, 3);
        let names = b.add("D.tag", DataType::Text, 3);
        assert_eq!(b.width(), 4);
        b.i64_mut(ids).extend([7, 7, 7]);
        b.i64_mut(ts).extend([100, 200, 300]);
        b.f64_mut(vals).extend([1.0, 2.0, 3.0]);
        for s in ["a", "b", "a"] {
            b.text_mut(names).push(s);
        }
        let r = b.finish().unwrap();
        assert_eq!(r.rows(), 3);
        assert_eq!(r.names(), vec!["D.file_id", "D.sample_time", "D.sample_value", "D.tag"]);
        assert_eq!(r.column("D.sample_time").unwrap().as_i64().unwrap(), &[100, 200, 300]);
        assert_eq!(r.value(2, "D.tag").unwrap(), Value::Text("a".into()));
        // Types survive: the timestamp column is a timestamp, not int.
        assert_eq!(
            r.types(),
            vec![DataType::Int64, DataType::Timestamp, DataType::Float64, DataType::Text]
        );
    }

    #[test]
    fn builder_ragged_columns_rejected() {
        let mut b = RelationBuilder::new();
        let a = b.add("a", DataType::Int64, 2);
        b.add("b", DataType::Int64, 2);
        b.i64_mut(a).push(1);
        assert!(b.finish().is_err());
    }

    #[test]
    fn union_reserves_combined_capacity() {
        // Unique columns: capacity after the union covers both sides.
        let mut a = sample();
        let b = sample();
        a.union_in_place(&b).unwrap();
        match a.column("F.file_id").unwrap() {
            ColumnData::Int64(v) => assert!(v.capacity() >= 6),
            other => panic!("unexpected {other:?}"),
        }
        // Shared numeric columns rebuild once at the combined size.
        let shared = sample();
        let mut u = shared.clone();
        u.union_in_place(&shared).unwrap();
        assert_eq!(u.rows(), 6);
        assert_eq!(shared.rows(), 3, "source untouched");
        match u.column("F.file_id").unwrap() {
            ColumnData::Int64(v) => assert!(v.capacity() >= 6),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pretty_prints_and_truncates() {
        let r = sample();
        let s = r.pretty(2);
        assert!(s.contains("F.station"));
        assert!(s.contains("3 rows total"));
    }
}
