//! Physical plans and lowering from logical plans.
//!
//! Physical access paths follow §III of the paper: besides the base
//! *scan* and *index-scan* (here: [`PhysicalPlan::IndexJoin`], which
//! consumes the materialized FK join index), the paper adds
//! *result-scan* (reads the materialized result of `Qf`), *cache-scan*
//! and *chunk-access*. The latter two appear here as the per-chunk
//! entries of [`PhysicalPlan::ChunkUnion`] — the materialization of
//! run-time rewrite rule (1):
//!
//! ```text
//! scan(a) → ⋃_{f ∈ result-scan(Qf)}  cache-scan(f)   if f ∈ C
//!                                  | chunk-access(f)  otherwise
//! ```

use crate::error::{EngineError, Result};
use crate::expr::{AggFunc, Expr};
use crate::logical::LogicalPlan;
use sommelier_storage::Database;
use std::fmt;

/// One chunk reference in a rewritten actual-data scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRef {
    /// Chunk URI (the file path in the repository).
    pub uri: String,
    /// True → cache-scan; false → chunk-access.
    pub cached: bool,
}

/// The per-chunk hash join of a [`PhysicalPlan::PartialAggUnion`]: the
/// build side is chunk-free (typically the stage-1 result-scan) and is
/// executed once; every chunk probes it independently.
#[derive(Debug, Clone)]
pub struct PartialJoin {
    pub right: Box<PhysicalPlan>,
    pub left_keys: Vec<Expr>,
    pub right_keys: Vec<Expr>,
}

/// One row-local operator folded into a per-chunk pipeline (the
/// `Filter`/`Project` nodes that sat between the chunk scan/join and
/// the fused aggregate), applied per chunk in order.
#[derive(Debug, Clone)]
pub enum ChunkOp {
    /// Residual selection.
    Filter(Expr),
    /// Projection / column computation.
    Project(Vec<(String, Expr)>),
}

/// A physical plan node.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// Sequential scan of a base table (scan-level projection +
    /// pushed-down selection).
    SeqScan { table: String, columns: Vec<String>, predicate: Option<Expr> },
    /// Scan of a materialized stage-1 result (`result-scan`).
    ResultScan { id: usize },
    /// The rewritten `scan(a)`: union of cache-scans and chunk-accesses.
    /// With `pushdown`, the selection applies inside each per-chunk
    /// access; otherwise once, above the union.
    ChunkUnion {
        table: String,
        chunks: Vec<ChunkRef>,
        columns: Vec<String>,
        predicate: Option<Expr>,
        pushdown: bool,
        /// Set by the `projection_pushdown` pass: the decode path may
        /// materialize only `columns` instead of the full table width
        /// (applied on non-retaining decode paths; see the pass docs).
        projected_decode: bool,
    },
    /// Morsel-parallel aggregation over a rewritten actual-data scan:
    /// per chunk, scan-level projection → pushed-down selection →
    /// (optional) hash join against a chunk-free build side → residual
    /// filter → **partial aggregation**; the per-chunk states merge in
    /// chunk order ([`crate::agg::merge_partials`]). The union of chunk
    /// rows is never materialized, and the chunks run on a worker pool.
    /// Produced by [`fuse_partial_agg`] from `Aggregate` roots over
    /// pushdown `ChunkUnion`s.
    PartialAggUnion {
        table: String,
        chunks: Vec<ChunkRef>,
        columns: Vec<String>,
        /// Set by the `projection_pushdown` pass (carried over from the
        /// fused [`PhysicalPlan::ChunkUnion`]).
        projected_decode: bool,
        /// The scan's pushed-down selection (applied per chunk).
        predicate: Option<Expr>,
        /// Per-chunk probe of a shared build side, if the aggregate sat
        /// over a join.
        join: Option<PartialJoin>,
        /// Residual filters/projections that sat between the scan/join
        /// and the aggregate, applied per chunk in order (after the
        /// join).
        ops: Vec<ChunkOp>,
        group_by: Vec<(String, Expr)>,
        aggs: Vec<(String, AggFunc, Expr)>,
    },
    /// Hash equi-join (build right, probe left).
    HashJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
    },
    /// Index join through a materialized FK join index (child side must
    /// carry base-table provenance).
    IndexJoin {
        child: Box<PhysicalPlan>,
        child_table: String,
        parent_table: String,
        parent_columns: Vec<String>,
        parent_predicate: Option<Expr>,
    },
    /// Cross product.
    Cross { left: Box<PhysicalPlan>, right: Box<PhysicalPlan> },
    /// Residual filter.
    Filter { input: Box<PhysicalPlan>, predicate: Expr },
    /// Projection.
    Project { input: Box<PhysicalPlan>, exprs: Vec<(String, Expr)> },
    /// Hash aggregation.
    Aggregate {
        input: Box<PhysicalPlan>,
        group_by: Vec<(String, Expr)>,
        aggs: Vec<(String, AggFunc, Expr)>,
    },
    /// Duplicate elimination.
    Distinct { input: Box<PhysicalPlan> },
    /// Ordering.
    Sort { input: Box<PhysicalPlan>, keys: Vec<(String, bool)> },
    /// Row cap.
    Limit { input: Box<PhysicalPlan>, n: usize },
}

/// Options controlling logical → physical lowering.
pub struct LowerOptions<'a> {
    /// The database (for index lookups).
    pub db: &'a Database,
    /// Use FK join indices where available (the *eager index* variant).
    pub use_index_joins: bool,
    /// Expansion of [`LogicalPlan::LazyScan`]: the chunk list computed
    /// by the run-time optimizer. `None` means lazy scans are an error
    /// (stage-1 lowering and eager plans).
    pub lazy_chunks: Option<&'a [ChunkRef]>,
    /// Push selections into per-chunk accesses (rewrite-rule refinement).
    pub chunk_pushdown: bool,
    /// What [`LogicalPlan::QfMark`] lowers to: a result-scan of the
    /// given materialized id, or (if `None`) inline pass-through.
    pub qf_result_id: Option<usize>,
}

/// Which base table a subtree's rows still correspond to 1:1 (provenance
/// chain): scans and filters preserve it, and joins preserve the left
/// (probe/child) side's.
fn provenance_table(plan: &LogicalPlan) -> Option<&str> {
    match plan {
        LogicalPlan::Scan { table, .. } => Some(table),
        LogicalPlan::Filter { input, .. } => provenance_table(input),
        LogicalPlan::Join { left, .. } => provenance_table(left),
        _ => None,
    }
}

/// Lower a logical plan to a physical plan.
pub fn lower(plan: &LogicalPlan, opts: &LowerOptions) -> Result<PhysicalPlan> {
    Ok(match plan {
        LogicalPlan::Scan { table, columns, predicate } => PhysicalPlan::SeqScan {
            table: table.clone(),
            columns: columns.clone(),
            predicate: predicate.clone(),
        },
        LogicalPlan::LazyScan { table, columns, predicate } => {
            let chunks = opts.lazy_chunks.ok_or_else(|| {
                EngineError::Plan(format!(
                    "lazy scan of {table} reached lowering without a chunk list \
                     (stage-2 rewrite missing)"
                ))
            })?;
            PhysicalPlan::ChunkUnion {
                table: table.clone(),
                chunks: chunks.to_vec(),
                columns: columns.clone(),
                predicate: predicate.clone(),
                pushdown: opts.chunk_pushdown,
                projected_decode: false,
            }
        }
        LogicalPlan::QfMark { input } => match opts.qf_result_id {
            Some(id) => PhysicalPlan::ResultScan { id },
            None => lower(input, opts)?,
        },
        LogicalPlan::Join { left, right, left_keys, right_keys } => {
            // Index-join detection: child chain ⋈ parent base scan on a
            // simple FK → PK column equality, with the join index built.
            if opts.use_index_joins {
                if let (
                    Some(child_table),
                    LogicalPlan::Scan { table: parent, columns, predicate },
                ) = (provenance_table(left), &**right)
                {
                    let simple = left_keys.iter().zip(right_keys).all(|(l, r)| {
                        matches!(
                            (l, r),
                            (Expr::Col(a), Expr::Col(b))
                                if a.starts_with(&format!("{child_table}."))
                                    && b.starts_with(&format!("{parent}."))
                        )
                    });
                    if simple && opts.db.join_index(child_table, parent).is_some() {
                        return Ok(PhysicalPlan::IndexJoin {
                            child: Box::new(lower(left, opts)?),
                            child_table: child_table.to_string(),
                            parent_table: parent.clone(),
                            parent_columns: columns.clone(),
                            parent_predicate: predicate.clone(),
                        });
                    }
                }
            }
            PhysicalPlan::HashJoin {
                left: Box::new(lower(left, opts)?),
                right: Box::new(lower(right, opts)?),
                left_keys: left_keys.clone(),
                right_keys: right_keys.clone(),
            }
        }
        LogicalPlan::Cross { left, right } => PhysicalPlan::Cross {
            left: Box::new(lower(left, opts)?),
            right: Box::new(lower(right, opts)?),
        },
        LogicalPlan::Filter { input, predicate } => PhysicalPlan::Filter {
            input: Box::new(lower(input, opts)?),
            predicate: predicate.clone(),
        },
        LogicalPlan::Project { input, exprs } => PhysicalPlan::Project {
            input: Box::new(lower(input, opts)?),
            exprs: exprs.clone(),
        },
        LogicalPlan::Aggregate { input, group_by, aggs } => PhysicalPlan::Aggregate {
            input: Box::new(lower(input, opts)?),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        LogicalPlan::Distinct { input } => {
            PhysicalPlan::Distinct { input: Box::new(lower(input, opts)?) }
        }
        LogicalPlan::Sort { input, keys } => {
            PhysicalPlan::Sort { input: Box::new(lower(input, opts)?), keys: keys.clone() }
        }
        LogicalPlan::Limit { input, n } => {
            PhysicalPlan::Limit { input: Box::new(lower(input, opts)?), n: *n }
        }
    })
}

/// Can this aggregate input chain be fused into a
/// [`PhysicalPlan::PartialAggUnion`]? The chain may pass through any
/// number of row-local `Filter`/`Project` nodes and at most one
/// `HashJoin` whose probe (left) side is a pushdown `ChunkUnion` and
/// whose build side reads no chunks. Selection pushdown must be on:
/// without it, the run-time rewrite deliberately materializes the
/// union before filtering (the ablation baseline).
fn fusable(input: &PhysicalPlan) -> bool {
    match input {
        PhysicalPlan::Filter { input, .. } | PhysicalPlan::Project { input, .. } => {
            fusable(input)
        }
        PhysicalPlan::ChunkUnion { pushdown, .. } => *pushdown,
        PhysicalPlan::HashJoin { left, right, .. } => {
            matches!(&**left, PhysicalPlan::ChunkUnion { pushdown: true, .. })
                && !contains_chunk_scan(right)
        }
        _ => false,
    }
}

/// Does the subtree read lazily loaded chunks?
fn contains_chunk_scan(plan: &PhysicalPlan) -> bool {
    matches!(plan, PhysicalPlan::ChunkUnion { .. } | PhysicalPlan::PartialAggUnion { .. })
        || plan.children().iter().any(|c| contains_chunk_scan(c))
}

/// Rewrite every `Aggregate` whose input chains down to a pushdown
/// `ChunkUnion` (optionally through residual filters and one hash join
/// against a chunk-free build side — the shape of every two-stage
/// T1–T5 aggregate plan) into a [`PhysicalPlan::PartialAggUnion`], so
/// stage 2 aggregates chunk-by-chunk and never materializes the union.
pub fn fuse_partial_agg(plan: PhysicalPlan) -> PhysicalPlan {
    let plan = match plan {
        PhysicalPlan::Aggregate { input, group_by, aggs } if fusable(&input) => {
            return fuse_chain(*input, Vec::new(), group_by, aggs);
        }
        other => other,
    };
    plan.map_children(&fuse_partial_agg)
}

/// Destructure a `fusable` chain into the fused node. `ops`
/// accumulates the row-local operators outermost-first.
fn fuse_chain(
    node: PhysicalPlan,
    mut ops: Vec<ChunkOp>,
    group_by: Vec<(String, Expr)>,
    aggs: Vec<(String, AggFunc, Expr)>,
) -> PhysicalPlan {
    match node {
        PhysicalPlan::Filter { input, predicate } => {
            ops.push(ChunkOp::Filter(predicate));
            fuse_chain(*input, ops, group_by, aggs)
        }
        PhysicalPlan::Project { input, exprs } => {
            ops.push(ChunkOp::Project(exprs));
            fuse_chain(*input, ops, group_by, aggs)
        }
        PhysicalPlan::ChunkUnion {
            table,
            chunks,
            columns,
            predicate,
            projected_decode,
            ..
        } => {
            ops.reverse(); // apply in inner→outer order
            PhysicalPlan::PartialAggUnion {
                table,
                chunks,
                columns,
                projected_decode,
                predicate,
                join: None,
                ops,
                group_by,
                aggs,
            }
        }
        PhysicalPlan::HashJoin { left, right, left_keys, right_keys } => match *left {
            PhysicalPlan::ChunkUnion {
                table,
                chunks,
                columns,
                predicate,
                projected_decode,
                ..
            } => {
                ops.reverse();
                PhysicalPlan::PartialAggUnion {
                    table,
                    chunks,
                    columns,
                    projected_decode,
                    predicate,
                    join: Some(PartialJoin { right, left_keys, right_keys }),
                    ops,
                    group_by,
                    aggs,
                }
            }
            _ => unreachable!("fusable() guarantees a chunk-union probe side"),
        },
        _ => unreachable!("fusable() guarantees the chain shape"),
    }
}

impl PhysicalPlan {
    /// Direct children, in probe-then-build order.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::SeqScan { .. }
            | PhysicalPlan::ResultScan { .. }
            | PhysicalPlan::ChunkUnion { .. } => Vec::new(),
            PhysicalPlan::PartialAggUnion { join, .. } => {
                join.iter().map(|j| j.right.as_ref()).collect()
            }
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::Cross { left, right } => vec![left, right],
            PhysicalPlan::IndexJoin { child, .. } => vec![child],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Aggregate { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. } => vec![input],
        }
    }

    /// Rebuild this node with `f` applied to every direct child.
    fn map_children(self, f: &dyn Fn(PhysicalPlan) -> PhysicalPlan) -> PhysicalPlan {
        match self {
            leaf @ (PhysicalPlan::SeqScan { .. }
            | PhysicalPlan::ResultScan { .. }
            | PhysicalPlan::ChunkUnion { .. }) => leaf,
            PhysicalPlan::PartialAggUnion {
                table,
                chunks,
                columns,
                projected_decode,
                predicate,
                join,
                ops,
                group_by,
                aggs,
            } => PhysicalPlan::PartialAggUnion {
                table,
                chunks,
                columns,
                projected_decode,
                predicate,
                join: join.map(|j| PartialJoin {
                    right: Box::new(f(*j.right)),
                    left_keys: j.left_keys,
                    right_keys: j.right_keys,
                }),
                ops,
                group_by,
                aggs,
            },
            PhysicalPlan::HashJoin { left, right, left_keys, right_keys } => {
                PhysicalPlan::HashJoin {
                    left: Box::new(f(*left)),
                    right: Box::new(f(*right)),
                    left_keys,
                    right_keys,
                }
            }
            PhysicalPlan::Cross { left, right } => {
                PhysicalPlan::Cross { left: Box::new(f(*left)), right: Box::new(f(*right)) }
            }
            PhysicalPlan::IndexJoin {
                child,
                child_table,
                parent_table,
                parent_columns,
                parent_predicate,
            } => PhysicalPlan::IndexJoin {
                child: Box::new(f(*child)),
                child_table,
                parent_table,
                parent_columns,
                parent_predicate,
            },
            PhysicalPlan::Filter { input, predicate } => {
                PhysicalPlan::Filter { input: Box::new(f(*input)), predicate }
            }
            PhysicalPlan::Project { input, exprs } => {
                PhysicalPlan::Project { input: Box::new(f(*input)), exprs }
            }
            PhysicalPlan::Aggregate { input, group_by, aggs } => {
                PhysicalPlan::Aggregate { input: Box::new(f(*input)), group_by, aggs }
            }
            PhysicalPlan::Distinct { input } => {
                PhysicalPlan::Distinct { input: Box::new(f(*input)) }
            }
            PhysicalPlan::Sort { input, keys } => {
                PhysicalPlan::Sort { input: Box::new(f(*input)), keys }
            }
            PhysicalPlan::Limit { input, n } => {
                PhysicalPlan::Limit { input: Box::new(f(*input)), n }
            }
        }
    }

    /// Pre-order mutable visit of every node (including the build side
    /// of a [`PhysicalPlan::PartialAggUnion`]).
    pub fn visit_mut(&mut self, f: &mut impl FnMut(&mut PhysicalPlan)) {
        f(self);
        match self {
            PhysicalPlan::SeqScan { .. }
            | PhysicalPlan::ResultScan { .. }
            | PhysicalPlan::ChunkUnion { .. } => {}
            PhysicalPlan::PartialAggUnion { join, .. } => {
                if let Some(j) = join {
                    j.right.visit_mut(f);
                }
            }
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::Cross { left, right } => {
                left.visit_mut(f);
                right.visit_mut(f);
            }
            PhysicalPlan::IndexJoin { child, .. } => child.visit_mut(f),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Aggregate { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. } => input.visit_mut(f),
        }
    }

    /// Pre-order immutable visit of every node.
    pub fn visit(&self, f: &mut impl FnMut(&PhysicalPlan)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// The decode projection the two-stage driver may pass to chunk
    /// acquisition: the union of the chunk scans' column sets, provided
    /// *every* chunk scan was marked by the `projection_pushdown` pass
    /// (the chunk list is shared, so one unprojected scan forces
    /// full-width decode). `None` = decode full width.
    pub fn decode_projection(&self) -> Option<Vec<String>> {
        let mut all_marked = true;
        let mut any = false;
        let mut cols: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        self.visit(&mut |p| {
            if let PhysicalPlan::ChunkUnion { columns, projected_decode, .. }
            | PhysicalPlan::PartialAggUnion { columns, projected_decode, .. } = p
            {
                any = true;
                all_marked &= *projected_decode;
                cols.extend(columns.iter().cloned());
            }
        });
        if any && all_marked {
            Some(cols.into_iter().collect())
        } else {
            None
        }
    }

    /// Number of (unfused) [`PhysicalPlan::ChunkUnion`] nodes in the
    /// plan.
    pub fn chunk_union_count(&self) -> usize {
        let own = usize::from(matches!(self, PhysicalPlan::ChunkUnion { .. }));
        own + self.children().iter().map(|c| c.chunk_union_count()).sum::<usize>()
    }

    /// Number of [`PhysicalPlan::PartialAggUnion`] nodes in the plan.
    pub fn partial_agg_count(&self) -> usize {
        let own = usize::from(matches!(self, PhysicalPlan::PartialAggUnion { .. }));
        own + self.children().iter().map(|c| c.partial_agg_count()).sum::<usize>()
    }

    /// The first [`PhysicalPlan::PartialAggUnion`] node, depth-first.
    pub fn find_partial_agg(&self) -> Option<&PhysicalPlan> {
        if matches!(self, PhysicalPlan::PartialAggUnion { .. }) {
            return Some(self);
        }
        self.children().iter().find_map(|c| c.find_partial_agg())
    }

    /// Replace the first [`PhysicalPlan::PartialAggUnion`] (depth-first)
    /// with a result-scan of materialized slot `id`. Returns whether a
    /// node was replaced — the hand-off the fused decode→execute driver
    /// uses after merging the partial states itself.
    pub fn replace_first_partial_agg(&mut self, id: usize) -> bool {
        if matches!(self, PhysicalPlan::PartialAggUnion { .. }) {
            *self = PhysicalPlan::ResultScan { id };
            return true;
        }
        match self {
            PhysicalPlan::SeqScan { .. }
            | PhysicalPlan::ResultScan { .. }
            | PhysicalPlan::ChunkUnion { .. } => false,
            PhysicalPlan::PartialAggUnion { join, .. } => {
                join.as_mut().map(|j| j.right.replace_first_partial_agg(id)).unwrap_or(false)
            }
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::Cross { left, right } => {
                left.replace_first_partial_agg(id) || right.replace_first_partial_agg(id)
            }
            PhysicalPlan::IndexJoin { child, .. } => child.replace_first_partial_agg(id),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Aggregate { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. } => input.replace_first_partial_agg(id),
        }
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            PhysicalPlan::SeqScan { table, columns, predicate } => {
                write!(f, "{pad}SeqScan {table} [{}]", columns.join(", "))?;
                if let Some(p) = predicate {
                    write!(f, " where {p}")?;
                }
                writeln!(f)
            }
            PhysicalPlan::ResultScan { id } => writeln!(f, "{pad}ResultScan #{id}"),
            PhysicalPlan::ChunkUnion {
                table,
                chunks,
                predicate,
                pushdown,
                projected_decode,
                ..
            } => {
                let cached = chunks.iter().filter(|c| c.cached).count();
                write!(
                    f,
                    "{pad}ChunkUnion {table}: {} chunk-access + {cached} cache-scan",
                    chunks.len() - cached
                )?;
                if *projected_decode {
                    write!(f, " (projected decode)")?;
                }
                if let Some(p) = predicate {
                    write!(
                        f,
                        " where {p} ({})",
                        if *pushdown { "pushed into chunks" } else { "post-union" }
                    )?;
                }
                writeln!(f)
            }
            PhysicalPlan::PartialAggUnion {
                table,
                chunks,
                predicate,
                projected_decode,
                join,
                ops,
                group_by,
                aggs,
                ..
            } => {
                let cached = chunks.iter().filter(|c| c.cached).count();
                let gs: Vec<String> = group_by.iter().map(|(n, _)| n.clone()).collect();
                let asr: Vec<String> = aggs
                    .iter()
                    .map(|(n, a, e)| format!("{}({e}) AS {n}", a.name()))
                    .collect();
                write!(
                    f,
                    "{pad}PartialAggUnion {table}: {} chunk-access + {cached} cache-scan, \
                     group=[{}] aggs=[{}]",
                    chunks.len() - cached,
                    gs.join(", "),
                    asr.join(", ")
                )?;
                if *projected_decode {
                    write!(f, " (projected decode)")?;
                }
                if let Some(p) = predicate {
                    write!(f, " where {p} (pushed into chunks)")?;
                }
                for op in ops {
                    match op {
                        ChunkOp::Filter(p) => write!(f, " residual {p}")?,
                        ChunkOp::Project(exprs) => {
                            let cols: Vec<String> =
                                exprs.iter().map(|(n, e)| format!("{e} AS {n}")).collect();
                            write!(f, " project [{}]", cols.join(", "))?;
                        }
                    }
                }
                writeln!(f)?;
                if let Some(j) = join {
                    let keys: Vec<String> = j
                        .left_keys
                        .iter()
                        .zip(&j.right_keys)
                        .map(|(l, r)| format!("{l} = {r}"))
                        .collect();
                    writeln!(f, "{pad}  per-chunk probe on {}", keys.join(" AND "))?;
                    j.right.fmt_indent(f, indent + 2)?;
                }
                Ok(())
            }
            PhysicalPlan::HashJoin { left, right, left_keys, right_keys } => {
                let keys: Vec<String> = left_keys
                    .iter()
                    .zip(right_keys)
                    .map(|(l, r)| format!("{l} = {r}"))
                    .collect();
                writeln!(f, "{pad}HashJoin on {}", keys.join(" AND "))?;
                left.fmt_indent(f, indent + 1)?;
                right.fmt_indent(f, indent + 1)
            }
            PhysicalPlan::IndexJoin {
                child,
                child_table,
                parent_table,
                parent_predicate,
                ..
            } => {
                write!(f, "{pad}IndexJoin {child_table} -> {parent_table}")?;
                if let Some(p) = parent_predicate {
                    write!(f, " where {p}")?;
                }
                writeln!(f)?;
                child.fmt_indent(f, indent + 1)
            }
            PhysicalPlan::Cross { left, right } => {
                writeln!(f, "{pad}Cross")?;
                left.fmt_indent(f, indent + 1)?;
                right.fmt_indent(f, indent + 1)
            }
            PhysicalPlan::Filter { input, predicate } => {
                writeln!(f, "{pad}Filter {predicate}")?;
                input.fmt_indent(f, indent + 1)
            }
            PhysicalPlan::Project { input, exprs } => {
                let cols: Vec<String> =
                    exprs.iter().map(|(n, e)| format!("{e} AS {n}")).collect();
                writeln!(f, "{pad}Project [{}]", cols.join(", "))?;
                input.fmt_indent(f, indent + 1)
            }
            PhysicalPlan::Aggregate { input, group_by, aggs } => {
                let gs: Vec<String> = group_by.iter().map(|(n, _)| n.clone()).collect();
                let asr: Vec<String> = aggs
                    .iter()
                    .map(|(n, a, e)| format!("{}({e}) AS {n}", a.name()))
                    .collect();
                writeln!(
                    f,
                    "{pad}Aggregate group=[{}] aggs=[{}]",
                    gs.join(", "),
                    asr.join(", ")
                )?;
                input.fmt_indent(f, indent + 1)
            }
            PhysicalPlan::Distinct { input } => {
                writeln!(f, "{pad}Distinct")?;
                input.fmt_indent(f, indent + 1)
            }
            PhysicalPlan::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(c, asc)| format!("{c} {}", if *asc { "ASC" } else { "DESC" }))
                    .collect();
                writeln!(f, "{pad}Sort [{}]", ks.join(", "))?;
                input.fmt_indent(f, indent + 1)
            }
            PhysicalPlan::Limit { input, n } => {
                writeln!(f, "{pad}Limit {n}")?;
                input.fmt_indent(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_storage::buffer::BufferPoolConfig;
    use sommelier_storage::catalog::Disposition;
    use sommelier_storage::{ColumnData, ConstraintPolicy, TableClass, TableSchema};

    fn db_with_index() -> Database {
        let db = Database::in_memory(BufferPoolConfig::default());
        db.create_table(
            TableSchema::new("F", TableClass::MetadataGiven)
                .column("file_id", sommelier_storage::DataType::Int64)
                .primary_key(["file_id"]),
            Disposition::Resident,
        )
        .unwrap();
        db.create_table(
            TableSchema::new("D", TableClass::ActualData)
                .column("file_id", sommelier_storage::DataType::Int64)
                .foreign_key(["file_id"], "F", ["file_id"]),
            Disposition::Resident,
        )
        .unwrap();
        db.append("F", &[ColumnData::Int64(vec![1, 2])], ConstraintPolicy::all()).unwrap();
        db.append("D", &[ColumnData::Int64(vec![1, 2, 1])], ConstraintPolicy::all()).unwrap();
        db.build_join_indices("D").unwrap();
        db
    }

    fn join_plan() -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(LogicalPlan::Scan {
                table: "D".into(),
                columns: vec!["D.file_id".into()],
                predicate: None,
            }),
            right: Box::new(LogicalPlan::Scan {
                table: "F".into(),
                columns: vec!["F.file_id".into()],
                predicate: None,
            }),
            left_keys: vec![Expr::col("D.file_id")],
            right_keys: vec![Expr::col("F.file_id")],
        }
    }

    #[test]
    fn index_join_selected_when_available() {
        let db = db_with_index();
        let opts = LowerOptions {
            db: &db,
            use_index_joins: true,
            lazy_chunks: None,
            chunk_pushdown: true,
            qf_result_id: None,
        };
        let phys = lower(&join_plan(), &opts).unwrap();
        assert!(matches!(phys, PhysicalPlan::IndexJoin { .. }), "got {phys}");
        // Disabled: falls back to hash join.
        let opts = LowerOptions { use_index_joins: false, ..opts };
        let phys = lower(&join_plan(), &opts).unwrap();
        assert!(matches!(phys, PhysicalPlan::HashJoin { .. }));
    }

    #[test]
    fn lazy_scan_without_chunks_is_error() {
        let db = db_with_index();
        let opts = LowerOptions {
            db: &db,
            use_index_joins: false,
            lazy_chunks: None,
            chunk_pushdown: true,
            qf_result_id: None,
        };
        let plan = LogicalPlan::LazyScan {
            table: "D".into(),
            columns: vec!["D.file_id".into()],
            predicate: None,
        };
        assert!(lower(&plan, &opts).is_err());
    }

    #[test]
    fn lazy_scan_expands_to_chunk_union() {
        let db = db_with_index();
        let chunks = vec![
            ChunkRef { uri: "a.msd".into(), cached: false },
            ChunkRef { uri: "b.msd".into(), cached: true },
        ];
        let opts = LowerOptions {
            db: &db,
            use_index_joins: false,
            lazy_chunks: Some(&chunks),
            chunk_pushdown: true,
            qf_result_id: Some(0),
        };
        let plan = LogicalPlan::QfMark {
            input: Box::new(LogicalPlan::Scan {
                table: "F".into(),
                columns: vec!["F.file_id".into()],
                predicate: None,
            }),
        };
        let phys = lower(&plan, &opts).unwrap();
        assert!(matches!(phys, PhysicalPlan::ResultScan { id: 0 }));
        let plan = LogicalPlan::LazyScan {
            table: "D".into(),
            columns: vec!["D.file_id".into()],
            predicate: None,
        };
        match lower(&plan, &opts).unwrap() {
            PhysicalPlan::ChunkUnion { chunks, .. } => {
                assert_eq!(chunks.len(), 2);
                assert!(chunks[1].cached);
            }
            other => panic!("expected ChunkUnion, got {other}"),
        }
    }
}
