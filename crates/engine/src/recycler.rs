//! The Recycler: a byte-budgeted LRU cache of lazily loaded chunks.
//!
//! Stands in for MonetDB's Recycler component [Ivanova et al.,
//! SIGMOD'09], which the paper reuses to cache the per-file temporary
//! tables produced by `chunk-access` (§V). A later query touching the
//! same chunk takes the *cache-scan* access path instead of re-ingesting
//! the file. The paper's future-work section notes the Recycler is
//! plain-LRU; so is this one (a cost-aware policy would slot in behind
//! the same interface).

use crate::relation::Relation;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache statistics.
#[derive(Debug, Default)]
pub struct RecyclerStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub insertions: AtomicU64,
    pub evictions: AtomicU64,
}

/// Snapshot of [`RecyclerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecyclerSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
}

struct Entry {
    relation: Arc<Relation>,
    bytes: usize,
    tick: u64,
}

#[derive(Default)]
struct State {
    map: HashMap<String, Entry>,
    order: BTreeMap<u64, String>,
    tick: u64,
    bytes: usize,
}

/// The chunk cache.
pub struct Recycler {
    state: Mutex<State>,
    budget_bytes: usize,
    stats: RecyclerStats,
}

impl Recycler {
    /// Create a cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        Recycler {
            state: Mutex::new(State::default()),
            budget_bytes,
            stats: RecyclerStats::default(),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Look up a chunk by URI, refreshing its recency.
    pub fn get(&self, uri: &str) -> Option<Arc<Relation>> {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        match st.map.get_mut(uri) {
            Some(entry) => {
                let old = entry.tick;
                entry.tick = tick;
                let rel = Arc::clone(&entry.relation);
                st.order.remove(&old);
                st.order.insert(tick, uri.to_string());
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(rel)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Membership check without touching recency or stats (used by the
    /// run-time optimizer to choose between cache-scan and chunk-access
    /// without perturbing measurements).
    pub fn contains(&self, uri: &str) -> bool {
        self.state.lock().map.contains_key(uri)
    }

    /// Insert a loaded chunk; evicts LRU entries over budget. A chunk
    /// larger than the whole budget is not cached at all.
    pub fn put(&self, uri: &str, relation: Arc<Relation>) {
        let bytes = relation.approx_bytes();
        if bytes > self.budget_bytes {
            return;
        }
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        if let Some(old) = st.map.remove(uri) {
            st.order.remove(&old.tick);
            st.bytes -= old.bytes;
        }
        st.map.insert(uri.to_string(), Entry { relation, bytes, tick });
        st.order.insert(tick, uri.to_string());
        st.bytes += bytes;
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
        while st.bytes > self.budget_bytes {
            let Some((&oldest, _)) = st.order.iter().next() else { break };
            let victim = st.order.remove(&oldest).expect("key just observed");
            if let Some(e) = st.map.remove(&victim) {
                st.bytes -= e.bytes;
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Bytes currently cached.
    pub fn resident_bytes(&self) -> usize {
        self.state.lock().bytes
    }

    /// Number of cached chunks.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop one entry. For users of the direct (source + recycler)
    /// two-stage path whose chunk contents change or get reclaimed —
    /// the cellar-managed path keeps no recycler copies, so it never
    /// needs this. Returns true if an entry was removed.
    pub fn remove(&self, uri: &str) -> bool {
        let mut st = self.state.lock();
        match st.map.remove(uri) {
            Some(e) => {
                st.order.remove(&e.tick);
                st.bytes -= e.bytes;
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Drop everything (cold-run simulation).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.map.clear();
        st.order.clear();
        st.bytes = 0;
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> RecyclerSnapshot {
        RecyclerSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            insertions: self.stats.insertions.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Recycler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recycler")
            .field("budget_bytes", &self.budget_bytes)
            .field("resident_bytes", &self.resident_bytes())
            .field("entries", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_storage::ColumnData;

    fn chunk(n: usize) -> Arc<Relation> {
        Arc::new(Relation::new(vec![("D.v".into(), ColumnData::Int64(vec![0; n]))]).unwrap())
    }

    #[test]
    fn hit_miss_accounting() {
        let r = Recycler::new(1 << 20);
        assert!(r.get("a").is_none());
        r.put("a", chunk(10));
        assert!(r.get("a").is_some());
        let s = r.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!(r.contains("a"));
        assert!(!r.contains("b"));
    }

    #[test]
    fn eviction_respects_budget_and_lru() {
        // Each chunk ~800 bytes (100 i64); budget fits two.
        let budget = chunk(100).approx_bytes() * 2 + 16;
        let r = Recycler::new(budget);
        r.put("a", chunk(100));
        r.put("b", chunk(100));
        let _ = r.get("a"); // refresh a
        r.put("c", chunk(100)); // evicts b
        assert!(r.contains("a"));
        assert!(!r.contains("b"));
        assert!(r.contains("c"));
        assert_eq!(r.stats().evictions, 1);
        assert!(r.resident_bytes() <= budget);
    }

    #[test]
    fn oversized_chunk_not_cached() {
        let r = Recycler::new(64);
        r.put("big", chunk(1000));
        assert!(!r.contains("big"));
        assert_eq!(r.stats().insertions, 0);
    }

    #[test]
    fn remove_frees_budget_and_counts_as_eviction() {
        let r = Recycler::new(1 << 20);
        r.put("a", chunk(10));
        r.put("b", chunk(10));
        let before = r.resident_bytes();
        assert!(r.remove("a"));
        assert!(!r.remove("a"), "idempotent");
        assert!(!r.contains("a"));
        assert!(r.contains("b"));
        assert!(r.resident_bytes() < before);
        assert_eq!(r.stats().evictions, 1);
    }

    #[test]
    fn reinsert_replaces() {
        let r = Recycler::new(1 << 20);
        r.put("a", chunk(10));
        let before = r.resident_bytes();
        r.put("a", chunk(20));
        assert!(r.resident_bytes() > before);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let r = Recycler::new(1 << 20);
        r.put("a", chunk(10));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.resident_bytes(), 0);
        assert!(r.get("a").is_none());
    }
}
