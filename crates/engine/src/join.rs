//! Join implementations: multi-key hash join, cross join, and the
//! index join over a materialized FK join index.

use crate::error::{EngineError, Result};
use crate::eval::{eval_mask, eval_scalar};
use crate::expr::Expr;
use crate::relation::Relation;
use sommelier_storage::index::HashIndex;
use sommelier_storage::ColumnData;

/// Evaluate join-key expressions into columns.
fn key_columns(keys: &[Expr], rel: &Relation) -> Result<Vec<ColumnData>> {
    keys.iter().map(|k| eval_scalar(k, rel)).collect()
}

/// Concatenate the columns of two row-aligned gathers into one relation,
/// carrying the left side's provenance through `left_idx`.
fn zip_sides(
    left: &Relation,
    right: &Relation,
    left_idx: &[u32],
    right_idx: &[u32],
) -> Relation {
    let mut l = left.take(left_idx);
    let r = right.take(right_idx);
    let cols = l.columns_mut();
    cols.extend(r.columns().iter().cloned());
    let mut out = Relation::from_shared(std::mem::take(cols)).expect("aligned gathers");
    if let Some(p) = left.provenance() {
        let rows = left_idx.iter().map(|&i| p.rows[i as usize]).collect();
        out = out.with_provenance(p.table.clone(), rows);
    }
    out
}

/// A hash-join build side constructed once and probed by many probe
/// relations — the per-chunk pipelines of a morsel-parallel aggregate
/// all share one [`JoinBuild`] instead of re-hashing the build relation
/// per chunk. Probing is read-only, so one build serves concurrent
/// workers.
pub struct JoinBuild {
    right: Relation,
    keys: Vec<ColumnData>,
    index: HashIndex,
}

impl JoinBuild {
    /// Evaluate the build keys and hash the build side.
    pub fn new(right: Relation, right_keys: &[Expr]) -> Result<JoinBuild> {
        if right_keys.is_empty() {
            return Err(EngineError::Exec("hash join needs at least one key".into()));
        }
        let keys = key_columns(right_keys, &right)?;
        let refs: Vec<&ColumnData> = keys.iter().collect();
        let index = HashIndex::build(&refs);
        Ok(JoinBuild { right, keys, index })
    }

    /// Inner equi-join of `left` against the built side (probe order =
    /// `left` row order, so results are deterministic).
    pub fn probe(&self, left: &Relation, left_keys: &[Expr]) -> Result<Relation> {
        if left_keys.len() != self.keys.len() {
            return Err(EngineError::Exec("hash join key arity mismatch".into()));
        }
        let lk = key_columns(left_keys, left)?;
        let lk_refs: Vec<&ColumnData> = lk.iter().collect();
        let rk_refs: Vec<&ColumnData> = self.keys.iter().collect();
        // FK-shaped probes match ~one build row per probe row: pre-size
        // for that and reuse one scratch vector across rows (the
        // allocation-free probe is what keeps the per-chunk ingest
        // pipelines decode-bound).
        let mut left_idx: Vec<u32> = Vec::with_capacity(left.rows());
        let mut right_idx: Vec<u32> = Vec::with_capacity(left.rows());
        let mut hits: Vec<u32> = Vec::new();
        for l in 0..left.rows() {
            hits.clear();
            self.index.probe_into(&rk_refs, &lk_refs, l, &mut hits);
            for &r in &hits {
                left_idx.push(l as u32);
                right_idx.push(r);
            }
        }
        Ok(zip_sides(left, &self.right, &left_idx, &right_idx))
    }
}

/// Inner equi-join: hash-build on `right`, probe with `left`.
pub fn hash_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[Expr],
    right_keys: &[Expr],
) -> Result<Relation> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(EngineError::Exec("hash join key arity mismatch".into()));
    }
    // `Relation` clones are shallow (shared columns), so building from
    // a reference costs nothing.
    JoinBuild::new(right.clone(), right_keys)?.probe(left, left_keys)
}

/// Cross product (used by rule R2; inputs are metadata-sized).
pub fn cross_join(left: &Relation, right: &Relation) -> Result<Relation> {
    let ln = left.rows();
    let rn = right.rows();
    let mut left_idx = Vec::with_capacity(ln * rn);
    let mut right_idx = Vec::with_capacity(ln * rn);
    for l in 0..ln {
        for r in 0..rn {
            left_idx.push(l as u32);
            right_idx.push(r as u32);
        }
    }
    Ok(zip_sides(left, right, &left_idx, &right_idx))
}

/// Index join: `child` rows (which carry base-table provenance) are
/// mapped to their parents through the FK join index's position array —
/// "constructing the join index is actually computing the join itself"
/// (§VI-C). The parent's residual predicate is applied afterwards.
pub fn index_join(
    child: &Relation,
    parent: &Relation,
    positions: &[u32],
    parent_predicate: Option<&Expr>,
) -> Result<Relation> {
    let prov = child
        .provenance()
        .ok_or_else(|| EngineError::Exec("index join requires child provenance".into()))?;
    let child_idx: Vec<u32> = (0..child.rows() as u32).collect();
    let parent_idx: Vec<u32> = prov
        .rows
        .iter()
        .map(|&base_row| {
            positions.get(base_row as usize).copied().ok_or_else(|| {
                EngineError::Exec(format!("join index has no entry for base row {base_row}"))
            })
        })
        .collect::<Result<_>>()?;
    let joined = zip_sides(child, parent, &child_idx, &parent_idx);
    match parent_predicate {
        Some(pred) => {
            let mask = eval_mask(pred, &joined)?;
            Ok(joined.filter(&mask))
        }
        None => Ok(joined),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Func;
    use sommelier_storage::column::TextColumn;
    use sommelier_storage::Value;

    fn d() -> Relation {
        Relation::new(vec![
            ("D.file_id".into(), ColumnData::Int64(vec![1, 1, 2, 3])),
            ("D.sample_value".into(), ColumnData::Float64(vec![10.0, 11.0, 20.0, 30.0])),
            ("D.sample_time".into(), ColumnData::Timestamp(vec![0, 3_600_000, 7_200_000, 0])),
        ])
        .unwrap()
    }

    fn f() -> Relation {
        Relation::new(vec![
            ("F.file_id".into(), ColumnData::Int64(vec![1, 2])),
            ("F.station".into(), ColumnData::Text(TextColumn::from_strs(["ISK", "FIAM"]))),
        ])
        .unwrap()
    }

    #[test]
    fn hash_join_basic() {
        let out = hash_join(&d(), &f(), &[Expr::col("D.file_id")], &[Expr::col("F.file_id")])
            .unwrap();
        // file 3 has no parent; files 1,1,2 match.
        assert_eq!(out.rows(), 3);
        assert_eq!(out.value(0, "F.station").unwrap(), Value::Text("ISK".into()));
        assert_eq!(out.value(2, "F.station").unwrap(), Value::Text("FIAM".into()));
        assert_eq!(out.width(), 5);
    }

    #[test]
    fn hash_join_multi_key_with_computed_expr() {
        let h = Relation::new(vec![
            ("H.window_start_ts".into(), ColumnData::Timestamp(vec![0, 7_200_000])),
            ("H.window_max_val".into(), ColumnData::Float64(vec![100.0, 200.0])),
        ])
        .unwrap();
        let out = hash_join(
            &d(),
            &h,
            &[Expr::Call(Func::HourBucket, vec![Expr::col("D.sample_time")])],
            &[Expr::col("H.window_start_ts")],
        )
        .unwrap();
        // Rows at hours 0, 1, 2, 0 → hours 0 and 2 match (3 rows).
        assert_eq!(out.rows(), 3);
    }

    #[test]
    fn hash_join_empty_sides() {
        let empty_f = f().filter(&[false, false]);
        let out =
            hash_join(&d(), &empty_f, &[Expr::col("D.file_id")], &[Expr::col("F.file_id")])
                .unwrap();
        assert_eq!(out.rows(), 0);
        assert_eq!(out.width(), 5, "schema survives empty joins");
    }

    #[test]
    fn hash_join_preserves_left_provenance() {
        let child = d().with_provenance("D", vec![100, 101, 102, 103]);
        let out =
            hash_join(&child, &f(), &[Expr::col("D.file_id")], &[Expr::col("F.file_id")])
                .unwrap();
        let p = out.provenance().unwrap();
        assert_eq!(p.rows, vec![100, 101, 102]);
    }

    #[test]
    fn cross_join_cardinality() {
        let out = cross_join(&f(), &f()).unwrap();
        assert_eq!(out.rows(), 4);
        assert_eq!(out.width(), 4);
    }

    #[test]
    fn index_join_maps_rows() {
        // positions: base D row -> F row (from a JoinIndex).
        let positions = vec![0u32, 0, 1, 1];
        // Child: filtered D (rows 1 and 2 of base).
        let child =
            d().with_provenance("D", vec![0, 1, 2, 3]).filter(&[false, true, true, false]);
        let out = index_join(&child, &f(), &positions, None).unwrap();
        assert_eq!(out.rows(), 2);
        assert_eq!(out.value(0, "F.station").unwrap(), Value::Text("ISK".into()));
        assert_eq!(out.value(1, "F.station").unwrap(), Value::Text("FIAM".into()));
    }

    #[test]
    fn index_join_applies_parent_predicate() {
        let positions = vec![0u32, 0, 1, 1];
        let child = d().with_provenance("D", vec![0, 1, 2, 3]);
        let pred = Expr::col("F.station").eq(Expr::lit("FIAM"));
        let out = index_join(&child, &f(), &positions, Some(&pred)).unwrap();
        assert_eq!(out.rows(), 2); // base rows 2,3 -> F row 1 (FIAM)
                                   // Provenance survives filtered index joins, enabling chaining.
        assert_eq!(out.provenance().unwrap().rows, vec![2, 3]);
    }

    #[test]
    fn index_join_without_provenance_fails() {
        let positions = vec![0u32; 4];
        assert!(index_join(&d(), &f(), &positions, None).is_err());
    }
}
