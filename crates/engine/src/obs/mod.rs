//! Engine-wide observability: span traces, a metrics registry, and the
//! level knob that keeps both strictly pay-for-what-you-use.
//!
//! The environment is offline, so — like the shim crates — this is a
//! homegrown, zero-dependency stand-in for the `tracing`/`metrics`
//! ecosystem, sized to what the engine actually needs:
//!
//! * [`MetricsRegistry`] ([`metrics`]): named atomic counters, gauges,
//!   and fixed-bucket histograms, snapshotted into a serializable
//!   [`MetricsSnapshot`] (hand-rolled JSON, no serde).
//! * [`TraceCollector`] ([`span`]): a per-query tree of timed regions
//!   (stage 1, optimizer passes, chunk decode/pipeline nodes) rendered
//!   by `EXPLAIN ANALYZE` and exposed as `QueryResult::span_trace`.
//! * [`Obs`]: the cheap cloneable handle threaded through the existing
//!   seams (`TwoStageConfig`, `ExecContext`, the cellar, the adapter
//!   chunk source). [`ObsLevel::Off`] costs a branch; `Counters` adds
//!   relaxed atomic increments; `Spans` additionally records the tree.
//!
//! Worker threads spawned by [`crate::exec::run_indexed`] tag
//! themselves with a thread-local worker id ([`current_worker`]) so
//! per-chunk spans can say *which* worker ran them.

pub mod metrics;
pub mod span;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use span::{SpanRecord, SpanTrace, TraceCollector};

use std::cell::Cell;
use std::fmt;
use std::sync::Arc;

/// How much the engine records. The default (`Counters`) is proven to
/// be within measurement noise of `Off` by the `obs_overhead` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsLevel {
    /// No metrics, no spans.
    Off,
    /// Atomic counters/gauges/histograms only.
    #[default]
    Counters,
    /// Counters plus a per-query span tree.
    Spans,
}

impl ObsLevel {
    /// Counters (and everything cheaper) are recorded.
    pub fn counters(self) -> bool {
        !matches!(self, ObsLevel::Off)
    }

    /// Span trees are recorded.
    pub fn spans(self) -> bool {
        matches!(self, ObsLevel::Spans)
    }
}

/// The observability handle threaded through the engine: a level, a
/// shared registry, and (per query, at `Spans` level) a trace
/// collector. Cloning is two refcount bumps.
#[derive(Clone, Default)]
pub struct Obs {
    level: ObsLevel,
    metrics: Option<Arc<MetricsRegistry>>,
    tracer: Option<Arc<TraceCollector>>,
}

impl Obs {
    /// A disabled handle: every probe is a single branch.
    pub fn off() -> Self {
        Obs { level: ObsLevel::Off, metrics: None, tracer: None }
    }

    /// A handle at `level` over `metrics`. `Off` drops the registry so
    /// the hot paths cannot accidentally pay for it.
    pub fn new(level: ObsLevel, metrics: Arc<MetricsRegistry>) -> Self {
        match level {
            ObsLevel::Off => Obs::off(),
            _ => Obs { level, metrics: Some(metrics), tracer: None },
        }
    }

    /// The same handle with a per-query trace collector attached (only
    /// meaningful at `Spans` level; ignored below it).
    pub fn with_tracer(mut self, tracer: Arc<TraceCollector>) -> Self {
        if self.level.spans() {
            self.tracer = Some(tracer);
        }
        self
    }

    pub fn level(&self) -> ObsLevel {
        self.level
    }

    /// The registry, when counters are on.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        if self.level.counters() {
            self.metrics.as_ref()
        } else {
            None
        }
    }

    /// The per-query trace collector, when spans are on.
    pub fn tracer(&self) -> Option<&Arc<TraceCollector>> {
        if self.level.spans() {
            self.tracer.as_ref()
        } else {
            None
        }
    }

    /// Bump `name` by `n` (no-op below `Counters`).
    pub fn count(&self, name: &'static str, n: u64) {
        if let Some(m) = self.metrics() {
            m.counter(name).add(n);
        }
    }

    /// Set gauge `name` to `v` (no-op below `Counters`).
    pub fn gauge_set(&self, name: &'static str, v: u64) {
        if let Some(m) = self.metrics() {
            m.gauge(name).set(v);
        }
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("level", &self.level)
            .field("tracer", &self.tracer.is_some())
            .finish()
    }
}

thread_local! {
    static WORKER_ID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The pool worker id of the current thread, when it is running a
/// [`crate::exec::run_indexed`] task. Set by the pool, read by span
/// probes.
pub fn current_worker() -> Option<usize> {
    WORKER_ID.with(Cell::get)
}

/// Tag the current thread as pool worker `id` for the duration of the
/// returned guard (restores the previous tag on drop, so nested pools
/// — e.g. the cellar's decode pool under the executor — unwind
/// correctly).
pub fn worker_scope(id: usize) -> WorkerScope {
    let prev = WORKER_ID.with(|w| w.replace(Some(id)));
    WorkerScope { prev }
}

/// RAII guard of [`worker_scope`].
pub struct WorkerScope {
    prev: Option<usize>,
}

impl Drop for WorkerScope {
    fn drop(&mut self) {
        WORKER_ID.with(|w| w.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_drops_registry() {
        let obs = Obs::new(ObsLevel::Off, Arc::new(MetricsRegistry::new()));
        assert!(obs.metrics().is_none());
        assert!(obs.tracer().is_none());
        obs.count("x", 1); // must be a no-op, not a panic
    }

    #[test]
    fn counters_level_has_metrics_but_no_tracer() {
        let reg = Arc::new(MetricsRegistry::new());
        let obs = Obs::new(ObsLevel::Counters, reg.clone())
            .with_tracer(Arc::new(TraceCollector::new()));
        assert!(obs.metrics().is_some());
        assert!(obs.tracer().is_none(), "tracer only attaches at Spans level");
        obs.count("x", 3);
        assert_eq!(reg.counter("x").get(), 3);
    }

    #[test]
    fn worker_scope_nests_and_restores() {
        assert_eq!(current_worker(), None);
        {
            let _outer = worker_scope(2);
            assert_eq!(current_worker(), Some(2));
            {
                let _inner = worker_scope(7);
                assert_eq!(current_worker(), Some(7));
            }
            assert_eq!(current_worker(), Some(2));
        }
        assert_eq!(current_worker(), None);
    }
}
