//! The metrics registry: named atomic counters, gauges, and
//! fixed-bucket histograms, plus the serializable snapshot.
//!
//! Registration is a mutex-guarded map lookup; hot paths resolve their
//! handles once (an `Arc<Counter>`) and then pay one relaxed atomic
//! add per event. Names are dot-separated and stable — they are the
//! scrape contract documented in the README's metric catalogue.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite the value — for counters mirrored from an external
    /// atomic (e.g. the cellar's own stats block) at snapshot time.
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge (resident bytes, queue depth, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper bound
/// of bucket `i`; one implicit overflow bucket catches the rest.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be sorted");
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

/// Nanosecond bucket bounds shared by the latency histograms
/// (1µs … 10s, one decade per bucket).
pub const NS_BUCKETS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Small-count bucket bounds (queue depths, chunk counts per batch).
pub const COUNT_BUCKETS: [u64; 8] = [1, 2, 4, 8, 16, 64, 256, 1024];

/// The registry: name → metric, register-or-get semantics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, creating it at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), c.clone());
        c
    }

    /// The gauge named `name`, creating it at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        if let Some(g) = map.get(name) {
            return g.clone();
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_string(), g.clone());
        g
    }

    /// The histogram named `name` (bounds fixed by the first caller).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        if let Some(h) = map.get(name) {
            return h.clone();
        }
        let h = Arc::new(Histogram::new(bounds));
        map.insert(name.to_string(), h.clone());
        h
    }

    /// A point-in-time copy of every registered metric, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters =
            self.counters.lock().iter().map(|(n, c)| (n.clone(), c.get())).collect();
        let gauges = self.gauges.lock().iter().map(|(n, g)| (n.clone(), g.get())).collect();
        let histograms = self
            .histograms
            .lock()
            .iter()
            .map(|(n, h)| HistogramSnapshot {
                name: n.clone(),
                bounds: h.bounds.clone(),
                counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                sum: h.sum(),
                count: h.count(),
            })
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// One histogram in a snapshot: `counts` has one entry per bound plus
/// the trailing overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

/// A stable, serializable point-in-time view of the registry —
/// `(name, value)` pairs sorted by name, so two snapshots diff cleanly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter named `name`, or `None` if never registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// The gauge named `name`, or `None` if never registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// Per-counter increase since `earlier` (counters absent earlier
    /// count from zero). Gauges and histograms are not diffed.
    pub fn counter_deltas(&self, earlier: &MetricsSnapshot) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .map(|(n, v)| (n.clone(), v.saturating_sub(earlier.counter(n).unwrap_or(0))))
            .collect()
    }

    /// Serialize as JSON (hand-rolled — mirrors `Table::to_json` in the
    /// bench reporter; the workspace has no serde).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", esc(n), v));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", esc(n), v));
        }
        out.push_str("\n  },\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let bounds: Vec<String> = h.bounds.iter().map(u64::to_string).collect();
            let counts: Vec<String> = h.counts.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"bounds\": [{}], \"counts\": [{}], \"sum\": {}, \"count\": {}}}",
                esc(&h.name),
                bounds.join(", "),
                counts.join(", "),
                h.sum,
                h.count
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// A human-readable listing (what the `somm-top` example prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|h| h.name.len()))
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (n, v) in &self.counters {
                out.push_str(&format!("  {n:<width$}  {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (n, v) in &self.gauges {
                out.push_str(&format!("  {n:<width$}  {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                let mean = h.sum.checked_div(h.count).unwrap_or(0);
                out.push_str(&format!(
                    "  {:<width$}  count={} sum={} mean={}\n",
                    h.name, h.count, h.sum, mean
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_or_get_shares_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("cellar.hits");
        let b = reg.counter("cellar.hits");
        a.add(2);
        b.inc();
        assert_eq!(reg.counter("cellar.hits").get(), 3);
    }

    #[test]
    fn snapshot_is_sorted_and_diffable() {
        let reg = MetricsRegistry::new();
        reg.counter("b.two").add(5);
        reg.counter("a.one").add(1);
        reg.gauge("g").set(42);
        let s0 = reg.snapshot();
        assert_eq!(
            s0.counters.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec!["a.one", "b.two"]
        );
        reg.counter("b.two").add(7);
        let s1 = reg.snapshot();
        assert_eq!(
            s1.counter_deltas(&s0),
            vec![("a.one".to_string(), 0), ("b.two".to_string(), 7)]
        );
        assert_eq!(s1.gauge("g"), Some(42));
        assert_eq!(s1.counter("missing"), None);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(&[10, 100]);
        h.observe(5);
        h.observe(10); // inclusive upper bound
        h.observe(50);
        h.observe(1000); // overflow bucket
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1065);
        let counts: Vec<u64> = h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        assert_eq!(counts, vec![2, 1, 1]);
    }

    #[test]
    fn json_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("decode.rows").add(9);
        reg.gauge("cellar.resident_bytes").set(128);
        reg.histogram("pool.queue_depth", &COUNT_BUCKETS).observe(3);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"decode.rows\": 9"));
        assert!(json.contains("\"cellar.resident_bytes\": 128"));
        assert!(json.contains("\"name\": \"pool.queue_depth\""));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }
}
