//! Per-query span traces: a tree of timed regions collected while the
//! two-stage driver runs, rendered by `EXPLAIN ANALYZE`.
//!
//! A span is recorded either *complete* (start and duration already
//! known — e.g. an optimizer pass replayed from its `PassTrace`
//! timing) or *opened* with [`TraceCollector::start`] and closed with
//! [`TraceCollector::end`]. Parent links make the tree; the *ambient*
//! parent lets deeply nested probes (a chunk pipeline inside the
//! cellar's decode pool) attach to the right stage span without
//! threading an id through every call signature.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

const NO_SPAN: usize = usize::MAX;

/// One timed region of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Index into the trace (also the parent link target).
    pub id: usize,
    pub parent: Option<usize>,
    /// Stable region name (`"stage1"`, `"pass:zone_map_pruning"`,
    /// `"chunk"`, …).
    pub name: &'static str,
    /// Free-form annotation (chunk URI, pass detail, …).
    pub detail: String,
    /// Nanoseconds since the collector's epoch (the query start).
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Pool worker that ran the region, when inside a worker.
    pub worker: Option<usize>,
    pub rows: Option<u64>,
    pub bytes: Option<u64>,
}

/// Collects one query's spans. Shared (`Arc`) between the driver and
/// the worker pools; recording is a short mutex-guarded push.
#[derive(Debug)]
pub struct TraceCollector {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    ambient: AtomicUsize,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    pub fn new() -> Self {
        TraceCollector {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            ambient: AtomicUsize::new(NO_SPAN),
        }
    }

    /// Nanoseconds since the query epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record a region whose timing is already known. Returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        parent: Option<usize>,
        name: &'static str,
        detail: impl Into<String>,
        start_ns: u64,
        dur_ns: u64,
        worker: Option<usize>,
        rows: Option<u64>,
        bytes: Option<u64>,
    ) -> usize {
        let mut spans = self.spans.lock();
        let id = spans.len();
        spans.push(SpanRecord {
            id,
            parent,
            name,
            detail: detail.into(),
            start_ns,
            dur_ns,
            worker,
            rows,
            bytes,
        });
        id
    }

    /// Open a region now; close it with [`end`](Self::end).
    pub fn start(&self, parent: Option<usize>, name: &'static str) -> usize {
        let now = self.now_ns();
        self.record(parent, name, String::new(), now, 0, None, None, None)
    }

    /// Close a region opened by [`start`](Self::start).
    pub fn end(&self, id: usize) {
        self.end_with(id, None, None, None);
    }

    /// Close a region, attaching a detail and row/byte counts.
    pub fn end_with(
        &self,
        id: usize,
        detail: Option<String>,
        rows: Option<u64>,
        bytes: Option<u64>,
    ) {
        let now = self.now_ns();
        let mut spans = self.spans.lock();
        if let Some(span) = spans.get_mut(id) {
            span.dur_ns = now.saturating_sub(span.start_ns);
            if let Some(d) = detail {
                span.detail = d;
            }
            span.rows = rows.or(span.rows);
            span.bytes = bytes.or(span.bytes);
        }
    }

    /// Set the ambient parent: spans recorded by nested probes that do
    /// not know their parent id attach here. `None` clears it.
    pub fn set_ambient(&self, id: Option<usize>) {
        self.ambient.store(id.unwrap_or(NO_SPAN), Ordering::Release);
    }

    /// The current ambient parent.
    pub fn ambient(&self) -> Option<usize> {
        match self.ambient.load(Ordering::Acquire) {
            NO_SPAN => None,
            id => Some(id),
        }
    }

    /// Freeze the collected spans into a [`SpanTrace`].
    pub fn finish(&self) -> SpanTrace {
        SpanTrace { spans: self.spans.lock().clone() }
    }
}

/// A query's finished span tree (spans in recording order; parents
/// always precede children).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanTrace {
    pub spans: Vec<SpanRecord>,
}

/// When one parent has more same-named children than this, the tree
/// rendering shows the first few and folds the rest into a summary
/// line (a T4 over 100k chunks must not print 100k lines).
const RENDER_FOLD_AT: usize = 8;
const RENDER_SHOWN: usize = 4;

impl SpanTrace {
    /// The first span named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// How many spans are named `name`.
    pub fn count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Summed duration of every span named `name`.
    pub fn total_ns(&self, name: &str) -> u64 {
        self.spans.iter().filter(|s| s.name == name).map(|s| s.dur_ns).sum()
    }

    /// Render the tree as indented lines, folding long runs of
    /// same-named siblings (per-chunk spans) into summary lines.
    pub fn render_tree(&self) -> String {
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        let mut roots = Vec::new();
        for span in &self.spans {
            match span.parent {
                Some(p) if p < self.spans.len() => children[p].push(span.id),
                _ => roots.push(span.id),
            }
        }
        let mut out = String::new();
        for root in roots {
            self.render_node(root, 0, &children, &mut out);
        }
        out
    }

    fn render_node(
        &self,
        id: usize,
        depth: usize,
        children: &[Vec<usize>],
        out: &mut String,
    ) {
        let span = &self.spans[id];
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!("{} {}", span.name, fmt_ns(span.dur_ns)));
        if !span.detail.is_empty() {
            out.push_str(&format!(" ({})", span.detail));
        }
        if let Some(w) = span.worker {
            out.push_str(&format!(" [w{w}]"));
        }
        if let Some(r) = span.rows {
            out.push_str(&format!(" rows={r}"));
        }
        if let Some(b) = span.bytes {
            out.push_str(&format!(" bytes={b}"));
        }
        out.push('\n');

        // Fold long same-named sibling runs (per-chunk spans).
        let kids = &children[id];
        let mut i = 0;
        while i < kids.len() {
            let name = self.spans[kids[i]].name;
            let mut j = i;
            while j < kids.len() && self.spans[kids[j]].name == name {
                j += 1;
            }
            if j - i > RENDER_FOLD_AT {
                for &kid in &kids[i..i + RENDER_SHOWN] {
                    self.render_node(kid, depth + 1, children, out);
                }
                let rest = &kids[i + RENDER_SHOWN..j];
                let total: u64 = rest.iter().map(|&k| self.spans[k].dur_ns).sum();
                let rows: u64 = rest.iter().filter_map(|&k| self.spans[k].rows).sum();
                for _ in 0..=depth {
                    out.push_str("  ");
                }
                out.push_str(&format!(
                    "… {} more \"{}\" spans, {} total, rows={}\n",
                    rest.len(),
                    name,
                    fmt_ns(total),
                    rows
                ));
            } else {
                for &kid in &kids[i..j] {
                    self.render_node(kid, depth + 1, children, out);
                }
            }
            i = j;
        }
    }
}

/// `1234567` → `"1.235ms"` — fixed, locale-free formatting.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_end_builds_tree() {
        let tc = TraceCollector::new();
        let root = tc.start(None, "query");
        let child = tc.start(Some(root), "stage1");
        tc.end(child);
        tc.end_with(root, Some("t4".into()), Some(10), None);
        let trace = tc.finish();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[1].parent, Some(root));
        assert_eq!(trace.find("query").unwrap().rows, Some(10));
        assert!(trace.find("query").unwrap().dur_ns >= trace.spans[1].dur_ns);
        let tree = trace.render_tree();
        assert!(tree.contains("query"));
        assert!(tree.contains("\n  stage1"), "child must be indented: {tree}");
    }

    #[test]
    fn ambient_parent_round_trips() {
        let tc = TraceCollector::new();
        assert_eq!(tc.ambient(), None);
        let id = tc.start(None, "load");
        tc.set_ambient(Some(id));
        assert_eq!(tc.ambient(), Some(id));
        tc.set_ambient(None);
        assert_eq!(tc.ambient(), None);
    }

    #[test]
    fn render_folds_long_sibling_runs() {
        let tc = TraceCollector::new();
        let root = tc.start(None, "load");
        for i in 0..20 {
            tc.record(Some(root), "chunk", format!("uri{i}"), 0, 100, Some(0), Some(5), None);
        }
        tc.end(root);
        let tree = tc.finish().render_tree();
        assert_eq!(tree.matches("\n  chunk").count(), RENDER_SHOWN);
        assert!(tree.contains("16 more \"chunk\" spans"), "{tree}");
        assert!(tree.contains("rows=80"), "{tree}");
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(750), "750ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.500ms");
        assert_eq!(fmt_ns(3_200_000_000), "3.200s");
    }
}
