//! The two-stage execution driver (§III "Run-time Query Optimization"
//! and §V "Run-time Optimizer").
//!
//! Given a decomposed plan `Q = Qf ▷ Qs`:
//!
//! 1. **Stage 1** executes the metadata branch `Qf` and materializes its
//!    result (the *result-scan* source).
//! 2. **Run-time rewrite**: the distinct chunk URIs in `Qf`'s result
//!    determine the chunk list; every [`crate::logical::LogicalPlan::LazyScan`]
//!    is rewritten into a union of *cache-scan* (chunk already resident)
//!    and *chunk-access* (ingest now) entries — rewrite rule (1), with
//!    optional selection pushdown into the accesses. Aggregates over the
//!    rewritten scan additionally fuse into a
//!    [`crate::physical::PhysicalPlan::PartialAggUnion`]
//!    ([`crate::physical::fuse_partial_agg`]).
//! 3. Required chunks are ingested — in parallel. [`ParallelMode::Static`]
//!    reproduces the paper's static strategy (work is pre-partitioned
//!    per chunk, so few/skewed chunks underutilize cores; §V discusses
//!    this drawback); [`ParallelMode::Exchange`] implements the
//!    exchange-operator fix the paper leaves as future work (decode
//!    units are dynamically pulled from a shared queue).
//! 4. **Stage 2** executes the remainder `Qs` against the result-scan
//!    and the loaded chunks.
//!
//! When the chunks come from a residency manager and the stage-2 plan
//! fused into a single partial-aggregate pipeline, steps 3 and 4
//! overlap: each chunk is handed to its pipeline the moment its decode
//! finishes ([`ChunkResidency::acquire_each`]), its partial state is
//! merged, and its pin is released — so a query's working set never
//! needs to be resident all at once, and decode and execution share the
//! same worker pool.

use crate::agg::{merge_partials, partial_aggregate, PartialAgg};
use crate::error::ErrorKind;
use crate::error::{EngineError, Result};
use crate::exec::{execute, run_indexed_policy, ChunkPipeline, ExecContext};
use crate::logical::LogicalPlan;
use crate::obs::{self, span::fmt_ns, Obs, TraceCollector};
use crate::optimizer::{
    self, ColumnZone, PassTrace, Stage2Options, ZoneCandidates, ZoneConstraint,
};
use crate::physical::{lower, ChunkRef, LowerOptions, PhysicalPlan};
use crate::recycler::Recycler;
use crate::relation::Relation;
use crate::sched::{CancelToken, DegradationPolicy, MorselScheduler, Priority, SchedPolicy};
use parking_lot::Mutex;
use sommelier_storage::{ColumnData, Database};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A deferred decode unit (e.g. one segment of a chunk file). The
/// lifetime ties the unit to the source that produced it, so default
/// implementations can defer through `self` instead of decoding
/// eagerly; callers run units on scoped worker pools.
pub type ChunkUnit<'a> = Box<dyn FnOnce() -> Result<Relation> + Send + 'a>;

/// Where lazily loaded chunk data comes from. Implemented by the core
/// crate over the registered source adapters; the engine only sees
/// relations.
pub trait ChunkSource: Send + Sync {
    /// Ingest one chunk as a relation in the actual-data table's schema
    /// (qualified column names, e.g. `D.sample_time`). With a
    /// `projection`, only the named columns need to be materialized
    /// (the `projection_pushdown` pass guarantees the query references
    /// nothing else).
    fn load_chunk(&self, uri: &str, projection: Option<&[String]>) -> Result<Relation>;

    /// Split one chunk into independent decode units for exchange-style
    /// parallelism. The default is a single unit covering the whole
    /// chunk, deferred until a worker runs it (units borrow `self`, so
    /// nothing decodes in the caller's thread).
    fn chunk_units<'s>(
        &'s self,
        uri: &str,
        projection: Option<&[String]>,
    ) -> Result<Vec<ChunkUnit<'s>>> {
        let uri = uri.to_string();
        let projection = projection.map(<[String]>::to_vec);
        Ok(vec![Box::new(move || self.load_chunk(&uri, projection.as_deref()))])
    }

    /// Every chunk in the repository (pure actual-data queries must load
    /// everything — the paper's "no alternative" case).
    fn all_chunks(&self) -> Result<Vec<String>>;

    /// The recorded zone maps of one chunk, if any (drives the
    /// `zone_map_pruning` pass). `None` = no zone maps; the chunk is
    /// never pruned.
    fn zone_maps(&self, uri: &str) -> Option<Vec<ColumnZone>> {
        let _ = uri;
        None
    }

    /// Indexed stage-1 candidate selection: which registered chunks may
    /// satisfy the given constraints, answered by a sorted interval
    /// index over the registry's zone maps in O(log n + hits). `None` =
    /// no index (the pruning pass falls back to per-chunk zone checks).
    fn zone_candidates(&self, constraints: &[ZoneConstraint]) -> Option<ZoneCandidates> {
        let _ = constraints;
        None
    }
}

/// One chunk handed out by a [`ChunkResidency`] manager: the loaded
/// relation plus how the acquisition was satisfied.
#[derive(Debug)]
pub struct AcquiredChunk {
    /// The chunk's rows (pinned in the manager until released).
    pub relation: Arc<Relation>,
    /// True if this acquisition decoded the chunk (a residency miss);
    /// false if the chunk was already resident or an in-flight load by
    /// another thread was joined.
    pub loaded: bool,
    /// True if the acquisition waited on another thread's in-flight
    /// load of the same chunk (single-flight dedup).
    pub joined: bool,
    /// Time this acquisition spent decoding the chunk (zero for hits
    /// and joins — the decode happened elsewhere).
    pub decode: Duration,
    /// Time this acquisition spent blocked on another thread's
    /// in-flight load (zero unless `joined`).
    pub pin_wait: Duration,
    /// `Some(reason)` when the chunk could not be read and the query
    /// runs under [`DegradationPolicy::SkipUnreadable`]: `relation` is
    /// then an empty placeholder in the table's schema, so downstream
    /// unions and pipelines stay aligned with the chunk list.
    pub skipped: Option<String>,
}

impl AcquiredChunk {
    /// A hit/miss/join without timing detail (managers that do not
    /// measure decode cost).
    pub fn untimed(relation: Arc<Relation>, loaded: bool, joined: bool) -> Self {
        AcquiredChunk {
            relation,
            loaded,
            joined,
            decode: Duration::ZERO,
            pin_wait: Duration::ZERO,
            skipped: None,
        }
    }

    /// An unreadable chunk replaced by an empty placeholder relation
    /// (skip-mode degradation).
    pub fn skipped(placeholder: Arc<Relation>, reason: impl Into<String>) -> Self {
        AcquiredChunk {
            relation: placeholder,
            loaded: false,
            joined: false,
            decode: Duration::ZERO,
            pin_wait: Duration::ZERO,
            skipped: Some(reason.into()),
        }
    }
}

/// One chunk a degraded ([`DegradationPolicy::SkipUnreadable`]) query
/// completed *without*: the URI and why it was unreadable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedChunk {
    /// URI of the unreadable chunk.
    pub uri: String,
    /// Why it could not be read (quarantine reason or load error).
    pub reason: String,
}

/// Per-chunk delivery callback for [`ChunkResidency::acquire_each`]:
/// `(index into the uris slice, acquired chunk)`. May be called
/// concurrently from several threads.
pub type ChunkSink<'a> = dyn Fn(usize, AcquiredChunk) -> Result<()> + Sync + 'a;

/// A handle over one query's in-flight raw-byte prefetch (see
/// [`ChunkResidency::prefetch`]). The driver must call
/// [`Self::finish`] when the chunk wave ends — on every path, success
/// or failure — so the manager can release staged-but-unconsumed
/// bytes; dropping a driver-side guard is the idiomatic way.
pub trait PrefetchHandle: Send {
    /// How many raw-byte fetches were issued so far (observability).
    fn submitted(&self) -> usize;

    /// Stop issuing and release every staged-but-unconsumed buffer.
    /// Idempotent.
    fn finish(&self);
}

/// A chunk-granularity residency manager (the core crate's *cellar*).
///
/// Unlike the raw [`ChunkSource`] + [`Recycler`] pair, a residency
/// manager owns the loaded/not-loaded state: acquisitions *pin* chunks
/// so they cannot be evicted mid-query, concurrent acquisitions of the
/// same chunk are deduplicated to a single decode (single-flight), and
/// releasing the pins lets the manager enforce its byte budget.
pub trait ChunkResidency: Send + Sync {
    /// Is the chunk resident right now? (Advisory — used to label
    /// cache-scan vs chunk-access in plans; [`Self::acquire_many`] is
    /// authoritative.)
    fn is_resident(&self, uri: &str) -> bool;

    /// Pin and return every chunk in `uris`, loading the missing ones
    /// under the given scheduling policy (mode, thread cap, shared
    /// scheduler, priority, cancellation). On error the manager must
    /// have released any pins it took. The result aligns with `uris`.
    ///
    /// `projection` is the decode projection the `projection_pushdown`
    /// pass derived; a manager that retains chunks across queries must
    /// ignore it (resident chunks keep full width so later queries with
    /// other column sets still hit).
    fn acquire_many(
        &self,
        uris: &[String],
        projection: Option<&[String]>,
        policy: &SchedPolicy,
    ) -> Result<Vec<AcquiredChunk>>;

    /// Release the pins taken by a matching [`Self::acquire_many`].
    fn release_many(&self, uris: &[String]);

    /// Acquire every chunk in `uris`, handing each to `sink` as soon as
    /// it is available — resident chunks immediately, decoded chunks
    /// the moment their decode finishes, on the worker that decoded
    /// them (pipelined decode→execute). Each chunk's pin is dropped as
    /// soon as its own `sink` call returns (not held until the wave
    /// ends, though a resident chunk may be pinned from the start of
    /// the wave until its sink runs); by the time `acquire_each`
    /// returns, no pins from this call survive. The first error (decode
    /// or sink) aborts the wave and is returned.
    ///
    /// The default delegates to [`Self::acquire_many`] (load all, then
    /// sink sequentially); managers that can stream should override it.
    fn acquire_each(
        &self,
        uris: &[String],
        projection: Option<&[String]>,
        policy: &SchedPolicy,
        sink: &ChunkSink<'_>,
    ) -> Result<()> {
        let acquired = self.acquire_many(uris, projection, policy)?;
        // Skipped chunks hold no pin (the manager substituted an empty
        // placeholder without admitting anything) — release only the
        // chunks that were actually pinned.
        let pinned: Vec<String> = uris
            .iter()
            .zip(&acquired)
            .filter(|(_, c)| c.skipped.is_none())
            .map(|(u, _)| u.clone())
            .collect();
        let mut result = Ok(());
        for (i, chunk) in acquired.into_iter().enumerate() {
            result = sink(i, chunk);
            if result.is_err() {
                break;
            }
        }
        self.release_many(&pinned);
        result
    }

    /// Every chunk in the repository (pure actual-data queries must
    /// load everything — the paper's "no alternative" case).
    fn all_chunks(&self) -> Result<Vec<String>>;

    /// The recorded zone maps of one chunk, if any (drives the
    /// `zone_map_pruning` pass).
    fn zone_maps(&self, uri: &str) -> Option<Vec<ColumnZone>> {
        let _ = uri;
        None
    }

    /// Indexed stage-1 candidate selection (see
    /// [`ChunkSource::zone_candidates`]).
    fn zone_candidates(&self, constraints: &[ZoneConstraint]) -> Option<ZoneCandidates> {
        let _ = constraints;
        None
    }

    /// Is the chunk quarantined (known permanently unreadable)? Returns
    /// the recorded reason. Stage 1 consults this before scheduling any
    /// decode, so a quarantined chunk is skipped (or fails the query,
    /// under [`DegradationPolicy::Strict`]) without its file being
    /// touched again.
    fn quarantined(&self, uri: &str) -> Option<String> {
        let _ = uri;
        None
    }

    /// Begin asynchronous raw-byte prefetch of `uris` (the surviving,
    /// post-pruning chunk list, in acquisition order): dedicated IO
    /// threads read chunk `k+1..k+d` while workers decode chunk `k`,
    /// and the subsequent [`Self::acquire_many`] / [`Self::acquire_each`]
    /// consumes the staged bytes without a second read. `None` (the
    /// default) = the manager does not prefetch; acquisition is
    /// unchanged.
    fn prefetch(
        &self,
        uris: &[String],
        policy: &SchedPolicy,
    ) -> Option<Box<dyn PrefetchHandle>> {
        let _ = (uris, policy);
        None
    }
}

/// Where stage 2's chunk rows come from.
pub enum ChunkAccess<'a> {
    /// No lazy chunks available (eager plans, pure-metadata queries).
    None,
    /// The legacy direct path: decode through `source`, optionally
    /// caching whole chunks in the recycler. No pinning: a concurrent
    /// eviction mid-query is an error, and concurrent queries may
    /// decode the same chunk twice.
    Direct { source: &'a dyn ChunkSource, recycler: Option<&'a Recycler> },
    /// A residency manager owns loading, caching, pinning and eviction.
    Managed(&'a dyn ChunkResidency),
}

impl ChunkAccess<'_> {
    /// Zone-map lookup through whichever access path is configured.
    fn zone_maps(&self, uri: &str) -> Option<Vec<ColumnZone>> {
        match self {
            ChunkAccess::None => None,
            ChunkAccess::Direct { source, .. } => source.zone_maps(uri),
            ChunkAccess::Managed(residency) => residency.zone_maps(uri),
        }
    }

    /// Indexed candidate selection through whichever access path is
    /// configured.
    fn zone_candidates(&self, constraints: &[ZoneConstraint]) -> Option<ZoneCandidates> {
        match self {
            ChunkAccess::None => None,
            ChunkAccess::Direct { source, .. } => source.zone_candidates(constraints),
            ChunkAccess::Managed(residency) => residency.zone_candidates(constraints),
        }
    }
}

/// RAII guard: releases managed-chunk pins when stage 2 finishes (or
/// fails).
struct PinGuard<'a> {
    residency: &'a dyn ChunkResidency,
    uris: Vec<String>,
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        self.residency.release_many(&self.uris);
    }
}

/// RAII guard: finishes a query's prefetch plan when the chunk wave
/// ends (on every path — success, decode error, cancel), so staged-
/// but-unconsumed bytes are always released.
struct PrefetchGuard(Box<dyn PrefetchHandle>);

impl Drop for PrefetchGuard {
    fn drop(&mut self) {
        self.0.finish();
    }
}

/// Chunk-loading parallelism strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelMode {
    /// The paper's strategy: one pre-assigned task per chunk,
    /// round-robin over up to `max_threads` workers. Few or skewed
    /// chunks underutilize the machine.
    #[default]
    Static,
    /// Exchange-style dynamic repartitioning: decode units from all
    /// chunks are pulled from a shared queue by `workers` workers.
    Exchange { workers: usize },
}

impl ParallelMode {
    /// Worker-pool size this mode implies for stage-2 execution.
    pub fn stage2_workers(&self, max_threads: usize) -> usize {
        match self {
            ParallelMode::Static => max_threads.max(1),
            ParallelMode::Exchange { workers } => (*workers).max(1),
        }
    }
}

/// Two-stage execution configuration.
#[derive(Debug, Clone)]
pub struct TwoStageConfig {
    pub parallel: ParallelMode,
    /// Push selections into per-chunk accesses (rewrite-rule
    /// refinement). Also gates partial-aggregation fusion: without
    /// pushdown, stage 2 deliberately materializes the full union (the
    /// ablation baseline).
    pub pushdown: bool,
    /// Decode only the columns the query references (the
    /// `projection_pushdown` pass). Applied on decode paths that do not
    /// retain chunks across queries; retained chunks keep full width.
    pub projection_pushdown: bool,
    /// Drop chunks whose zone maps contradict the pushed-down predicate
    /// before any decode is scheduled (the `zone_map_pruning` pass).
    pub zone_map_pruning: bool,
    /// Use the Recycler chunk cache.
    pub use_cache: bool,
    /// Use FK join indices where available (eager-index plans).
    pub use_index_joins: bool,
    /// Which `Qf` output column carries the chunk URI. There is no
    /// meaningful default — the caller takes it from its source
    /// descriptor (e.g. `F.uri` for the mSEED adapter); plans with lazy
    /// scans fail if it is left empty.
    pub uri_column: String,
    /// Worker cap for [`ParallelMode::Static`] and stage-2 execution.
    pub max_threads: usize,
    /// Approximate query answering (the paper's §VIII future work):
    /// ingest only this fraction of the selected chunks, chosen
    /// deterministically. Aggregates like AVG remain (approximately)
    /// unbiased; COUNT/SUM scale down with the fraction. `None` = exact.
    pub sampling: Option<f64>,
    /// Observability handle for this query: pool/query counters, and —
    /// when a per-query tracer is attached — the span tree.
    pub obs: Obs,
    /// Shared morsel scheduler; when set, every morsel-parallel wave
    /// (decode, load, per-chunk pipelines) submits batches to this pool
    /// instead of spawning scoped threads.
    pub scheduler: Option<Arc<MorselScheduler>>,
    /// Scheduling priority for this query's batches.
    pub priority: Priority,
    /// Cooperative cancellation, checked between stages and at
    /// chunk-pipeline boundaries.
    pub cancel: Option<CancelToken>,
    /// What to do with unreadable chunks: fail the query (default) or
    /// complete over the readable subset and report the skipped ones.
    pub degradation: DegradationPolicy,
}

impl Default for TwoStageConfig {
    fn default() -> Self {
        TwoStageConfig {
            parallel: ParallelMode::Static,
            pushdown: true,
            projection_pushdown: true,
            zone_map_pruning: true,
            use_cache: true,
            use_index_joins: false,
            uri_column: String::new(),
            max_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8),
            sampling: None,
            obs: Obs::off(),
            scheduler: None,
            priority: Priority::Normal,
            cancel: None,
            degradation: DegradationPolicy::default(),
        }
    }
}

impl TwoStageConfig {
    /// The scheduling policy this config implies for morsel batches.
    pub fn policy(&self) -> SchedPolicy {
        SchedPolicy {
            parallel: self.parallel,
            max_threads: self.max_threads.max(1),
            scheduler: self.scheduler.clone(),
            priority: self.priority,
            cancel: self.cancel.clone(),
            degradation: self.degradation,
            tracer: self.obs.tracer().cloned(),
        }
    }

    /// Cancellation checkpoint; `Ok(())` when no token is attached.
    fn check_cancel(&self) -> Result<()> {
        match &self.cancel {
            Some(c) => c.check(),
            None => Ok(()),
        }
    }
}

/// Per-query execution statistics.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Stage-1 (metadata branch) wall time.
    pub stage1: Duration,
    /// Chunk ingestion wall time. In the fused decode→execute path this
    /// covers the whole per-chunk wave (decode *and* per-chunk
    /// execution overlap and are not separable).
    pub load: Duration,
    /// Stage-2 (remainder) wall time.
    pub stage2: Duration,
    /// Chunks selected by `Qf`.
    pub files_selected: usize,
    /// Chunks skipped by approximate-answering sampling.
    pub files_sampled_out: usize,
    /// Chunks dropped by the `zone_map_pruning` pass (never decoded).
    pub files_pruned: usize,
    /// Chunks actually ingested (cache misses).
    pub files_loaded: usize,
    /// Chunks served by the Recycler.
    pub cache_hits: usize,
    /// Unreadable chunks skipped under
    /// [`DegradationPolicy::SkipUnreadable`] (quarantined before the
    /// wave, or failed during it); the query's answer excludes them.
    pub files_skipped: usize,
    /// Rows ingested from chunks.
    pub rows_loaded: u64,
    /// Approximate bytes ingested from chunks.
    pub bytes_loaded: u64,
    /// Rows concatenated into materialized chunk unions during stage 2
    /// (0 when partial aggregation avoided the union entirely).
    pub rows_union_materialized: u64,
    /// Chunks executed through per-chunk partial-aggregation pipelines.
    pub partial_agg_chunks: u64,
    /// Acquisitions that joined another thread's in-flight load of the
    /// same chunk (single-flight dedup) instead of decoding.
    pub load_joins: u64,
    /// Total time acquisitions spent blocked on in-flight loads.
    pub pin_wait: Duration,
    /// Chunks the residency manager evicted while this query ran
    /// (filled by the driver's caller from the manager's stats; always
    /// 0 on the direct/recycler path).
    pub cellar_evictions: u64,
}

impl ExecStats {
    /// Total wall time across stages.
    pub fn total(&self) -> Duration {
        self.stage1 + self.load + self.stage2
    }

    /// The chunk-accounting invariant every run must satisfy: each
    /// selected chunk is pruned, sampled out, loaded, a cache hit, or
    /// skipped as unreadable — exactly one of the five.
    pub fn accounting_balanced(&self) -> bool {
        self.files_selected
            == self.files_pruned
                + self.files_sampled_out
                + self.files_loaded
                + self.cache_hits
                + self.files_skipped
    }
}

/// A query result with its execution statistics.
#[derive(Debug)]
pub struct QueryOutcome {
    pub relation: Relation,
    pub stats: ExecStats,
    /// The stage-2 optimizer pass trace (which rewrite rules fired).
    pub trace: Vec<PassTrace>,
    /// Unreadable chunks the query completed without (non-empty only
    /// under [`DegradationPolicy::SkipUnreadable`]): the answer is a
    /// correct subset over the remaining chunks.
    pub skipped: Vec<SkippedChunk>,
}

/// Execute a (possibly decomposed) logical plan.
///
/// Plans without lazy scans (eager loading, or queries that never touch
/// actual data) run in a single pass; plans with lazy scans go through
/// the full two-stage protocol.
pub fn execute_plan(
    db: &Database,
    plan: &LogicalPlan,
    access: ChunkAccess<'_>,
    config: &TwoStageConfig,
) -> Result<QueryOutcome> {
    let mut stats = ExecStats::default();
    let mut skipped: Vec<SkippedChunk> = Vec::new();
    config.check_cancel()?;
    let mut ctx = ExecContext::new(db);
    ctx.parallel = config.parallel;
    ctx.workers = config.parallel.stage2_workers(config.max_threads);
    ctx.scheduler = config.scheduler.clone();
    ctx.priority = config.priority;
    ctx.cancel = config.cancel.clone();
    ctx.obs = config.obs.clone();
    let tracer: Option<&TraceCollector> = config.obs.tracer().map(Arc::as_ref);

    // ---- Stage 1: evaluate the metadata branch Qf, if marked. ------
    let qf_id = match plan.qf() {
        Some(qf) => {
            let t = Instant::now();
            let opts = LowerOptions {
                db,
                use_index_joins: config.use_index_joins,
                lazy_chunks: None,
                chunk_pushdown: config.pushdown,
                qf_result_id: None,
            };
            let phys = lower(qf, &opts)?;
            let rf = execute(&phys, &ctx)?;
            stats.stage1 = t.elapsed();
            if let Some(tc) = tracer {
                let dur = stats.stage1.as_nanos() as u64;
                let end = tc.now_ns();
                tc.record(
                    tc.ambient(),
                    "stage1",
                    "Qf (metadata branch)",
                    end.saturating_sub(dur),
                    dur,
                    None,
                    Some(rf.rows() as u64),
                    None,
                );
            }
            ctx.materialized.push(Arc::new(rf));
            Some(0usize)
        }
        None => None,
    };

    // ---- Run-time chunk list: what stage 1 selected. ---------------
    config.check_cancel()?;
    let chunk_refs: Option<Vec<ChunkRef>> = if plan.has_lazy_scan() {
        let uris: Vec<String> = match qf_id {
            Some(id) => {
                // Fail fast if no access path exists at all.
                if matches!(access, ChunkAccess::None) {
                    return Err(EngineError::Chunk(
                        "plan has lazy scans but no chunk source given".into(),
                    ));
                }
                distinct_uris(&ctx.materialized[id], &config.uri_column)?
            }
            // Pure-AD query: load the whole repository.
            None => match &access {
                ChunkAccess::None => {
                    return Err(EngineError::Chunk(
                        "plan has lazy scans but no chunk source given".into(),
                    ))
                }
                ChunkAccess::Direct { source, .. } => source.all_chunks()?,
                ChunkAccess::Managed(residency) => residency.all_chunks()?,
            },
        };
        stats.files_selected = uris.len();
        let uris = sample_uris(uris, config.sampling, &mut stats);
        // Quarantine check: chunks recorded as permanently unreadable
        // never reach the decode wave, and their files are never
        // touched again. Under `Strict` the query fails here, fast and
        // typed; under `SkipUnreadable` it proceeds without them.
        let uris = if let ChunkAccess::Managed(residency) = &access {
            let mut kept = Vec::with_capacity(uris.len());
            for u in uris {
                match residency.quarantined(&u) {
                    None => kept.push(u),
                    Some(reason) => match config.degradation {
                        DegradationPolicy::SkipUnreadable => {
                            stats.files_skipped += 1;
                            skipped.push(SkippedChunk { uri: u, reason });
                        }
                        DegradationPolicy::Strict => {
                            return Err(EngineError::ChunkLoad {
                                uri: u,
                                kind: ErrorKind::Permanent,
                                message: format!("chunk is quarantined: {reason}"),
                            })
                        }
                    },
                }
            }
            kept
        } else {
            uris
        };
        Some(match &access {
            ChunkAccess::None => unreachable!("checked above"),
            ChunkAccess::Direct { recycler, .. } => uris
                .iter()
                .map(|u| ChunkRef {
                    uri: u.clone(),
                    cached: config.use_cache
                        && recycler.map(|r| r.contains(u)).unwrap_or(false),
                })
                .collect(),
            ChunkAccess::Managed(residency) => uris
                .iter()
                .map(|u| ChunkRef { uri: u.clone(), cached: residency.is_resident(u) })
                .collect(),
        })
    } else {
        None
    };

    // ---- Stage-2 rewrite pipeline: zone-map pruning, the lazy-scan →
    // union chunk rewrite (lowering), selection pushdown, partial-
    // aggregate fusion, projection pushdown.
    let zones = |uri: &str| access.zone_maps(uri);
    let zone_candidates = |constraints: &[ZoneConstraint]| {
        // The zone-index probe: indexed stage-1 candidate selection.
        let t0 = Instant::now();
        let r = access.zone_candidates(constraints);
        if let Some(tc) = tracer {
            let dur = t0.elapsed().as_nanos() as u64;
            let end = tc.now_ns();
            let detail = match &r {
                Some(ZoneCandidates::Uris(uris)) => format!("{} candidates", uris.len()),
                Some(ZoneCandidates::All) => "all chunks candidate".to_string(),
                None => "no index".to_string(),
            };
            tc.record(
                tc.ambient(),
                "zone_index_probe",
                detail,
                end.saturating_sub(dur),
                dur,
                None,
                None,
                None,
            );
        }
        config.obs.count("zone.probes", 1);
        r
    };
    let opts = Stage2Options {
        use_index_joins: config.use_index_joins,
        pushdown: config.pushdown,
        projection_pushdown: config.projection_pushdown,
        zone_map_pruning: config.zone_map_pruning,
    };
    let considered = chunk_refs.as_ref().map(Vec::len).unwrap_or(0);
    let rw_start = tracer.map(|tc| tc.now_ns());
    let s2 = optimizer::rewrite_stage2(
        plan,
        db,
        chunk_refs,
        Some(&zones),
        Some(&zone_candidates),
        qf_id,
        &opts,
    )?;
    if let (Some(tc), Some(t0)) = (tracer, rw_start) {
        let parent = tc.record(
            tc.ambient(),
            "rewrite_stage2",
            format!("{} passes", s2.trace.len()),
            t0,
            tc.now_ns().saturating_sub(t0),
            None,
            None,
            None,
        );
        // Replay per-pass timings from the pipeline's trace; starts
        // are reconstructed by accumulation (passes run in order).
        let mut cursor = t0;
        for p in &s2.trace {
            tc.record(
                Some(parent),
                p.name,
                p.detail.clone(),
                cursor,
                p.nanos,
                None,
                None,
                None,
            );
            cursor += p.nanos;
        }
    }
    let mut phys = s2.physical;
    let trace = s2.trace;
    stats.files_pruned = s2.pruned;
    if considered > 0 {
        config.obs.count("zone.chunks_considered", considered as u64);
        config.obs.count("zone.chunks_pruned", s2.pruned as u64);
    }
    let decode_projection = phys.decode_projection();

    // ---- Async raw-byte prefetch over the surviving chunk list. ----
    // Submitted the moment pruning settles — before any decode is
    // scheduled — so dedicated IO threads read chunk k+1..k+d while
    // workers decode chunk k. The guard finishes the plan on every
    // exit path (success, decode error, cancel), releasing staged-but-
    // unconsumed bytes.
    let prefetch_guard: Option<PrefetchGuard> = match (&s2.chunks, &access) {
        (Some(refs), ChunkAccess::Managed(residency)) if !refs.is_empty() => {
            let to_fetch: Vec<String> =
                refs.iter().filter(|r| !r.cached).map(|r| r.uri.clone()).collect();
            let handle = if to_fetch.is_empty() {
                None
            } else {
                residency.prefetch(&to_fetch, &config.policy())
            };
            if let (Some(tc), Some(h)) = (tracer, handle.as_deref()) {
                let now = tc.now_ns();
                tc.record(
                    tc.ambient(),
                    "prefetch",
                    format!("{} issued over {} candidates", h.submitted(), to_fetch.len()),
                    now,
                    0,
                    None,
                    None,
                    None,
                );
            }
            handle.map(PrefetchGuard)
        }
        _ => None,
    };

    // ---- Chunk acquisition over the (pruned) list. -----------------
    // The load span is ambient while the wave runs, so per-chunk spans
    // recorded on pool workers attach under it.
    let outer_span = tracer.map(|tc| tc.ambient());
    let load_span = match (&s2.chunks, &access) {
        (Some(_), access) if !matches!(access, ChunkAccess::None) => tracer.map(|tc| {
            let id = tc.start(tc.ambient(), "load");
            tc.set_ambient(Some(id));
            id
        }),
        _ => None,
    };
    let mut pin_guard: Option<PinGuard<'_>> = None;
    // Cancellation checkpoint before any decode work is scheduled: a
    // cancel here means no pins were ever taken.
    config.check_cancel()?;
    match (&s2.chunks, &access) {
        (None, _) | (_, ChunkAccess::None) => {}
        (Some(refs), ChunkAccess::Direct { source, recycler }) => {
            let t = Instant::now();
            for r in refs.iter().filter(|r| r.cached) {
                let rel =
                    recycler.expect("cached flag implies recycler").get(&r.uri).ok_or_else(
                        || EngineError::Chunk(format!("chunk {:?} evicted mid-query", r.uri)),
                    )?;
                stats.cache_hits += 1;
                ctx.chunks.insert(r.uri.clone(), rel);
            }
            // The recycler retains whole chunks across queries, so a
            // caching run must decode full width; projection applies
            // only when nothing outlives this query.
            let caching = config.use_cache && recycler.is_some();
            let projection = if caching { None } else { decode_projection.as_deref() };
            let to_load: Vec<&str> =
                refs.iter().filter(|r| !r.cached).map(|r| r.uri.as_str()).collect();
            let policy = config.policy();
            let loaded = match config.parallel {
                ParallelMode::Static => {
                    load_static(*source, &to_load, projection, &policy, &config.obs)?
                }
                ParallelMode::Exchange { .. } => {
                    load_exchange(*source, &to_load, projection, &policy, &config.obs)?
                }
            };
            for (uri, rel) in loaded {
                stats.files_loaded += 1;
                stats.rows_loaded += rel.rows() as u64;
                stats.bytes_loaded += rel.approx_bytes() as u64;
                let rel = Arc::new(rel);
                if caching {
                    if let Some(r) = recycler {
                        r.put(&uri, Arc::clone(&rel));
                    }
                }
                ctx.chunks.insert(uri, rel);
            }
            stats.load = t.elapsed();
        }
        (Some(refs), ChunkAccess::Managed(residency)) => {
            let uris: Vec<String> = refs.iter().map(|r| r.uri.clone()).collect();
            let projection = decode_projection.as_deref();
            let t = Instant::now();
            // Fuse decode into execution when the whole chunk
            // consumption is one partial-agg pipeline; otherwise
            // load-all (the union materializes anyway, and pins must
            // span all of stage 2).
            if !uris.is_empty()
                && phys.partial_agg_count() == 1
                && phys.chunk_union_count() == 0
            {
                let node = phys.find_partial_agg().expect("counted above").clone();
                let merged = fused_wave(
                    *residency,
                    &uris,
                    projection,
                    &node,
                    &ctx,
                    config,
                    &mut stats,
                    &mut skipped,
                )?;
                stats.load = t.elapsed();
                let id = ctx.materialized.len();
                ctx.materialized.push(Arc::new(merged));
                phys.replace_first_partial_agg(id);
            } else {
                let acquired = residency.acquire_many(&uris, projection, &config.policy())?;
                // Pins are held until stage 2 is done (drop of the
                // guard), so the manager cannot evict these chunks
                // mid-query. Skipped chunks hold no pin, so the guard
                // covers only the chunks that were actually acquired.
                let pinned: Vec<String> = uris
                    .iter()
                    .zip(&acquired)
                    .filter(|(_, c)| c.skipped.is_none())
                    .map(|(u, _)| u.clone())
                    .collect();
                pin_guard = Some(PinGuard { residency: *residency, uris: pinned });
                for (uri, chunk) in uris.iter().zip(acquired) {
                    if let Some(reason) = &chunk.skipped {
                        stats.files_skipped += 1;
                        skipped
                            .push(SkippedChunk { uri: uri.clone(), reason: reason.clone() });
                    } else if chunk.loaded {
                        stats.files_loaded += 1;
                        stats.rows_loaded += chunk.relation.rows() as u64;
                        stats.bytes_loaded += chunk.relation.approx_bytes() as u64;
                    } else {
                        stats.cache_hits += 1;
                    }
                    if chunk.joined {
                        stats.load_joins += 1;
                    }
                    stats.pin_wait += chunk.pin_wait;
                    if let Some(tc) = tracer {
                        record_chunk_acquisition(tc, uri, &chunk);
                    }
                    ctx.chunks.insert(uri.clone(), chunk.relation);
                }
                stats.load = t.elapsed();
            }
        }
    }

    // The chunk wave is over: everything prefetched was either claimed
    // by a decode or is now wasted — release it before stage 2 runs.
    drop(prefetch_guard);

    if let (Some(tc), Some(id)) = (tracer, load_span) {
        tc.end_with(
            id,
            Some(format!(
                "{} loaded, {} hits, {} joined",
                stats.files_loaded, stats.cache_hits, stats.load_joins
            )),
            Some(stats.rows_loaded),
            Some(stats.bytes_loaded),
        );
        tc.set_ambient(outer_span.flatten());
    }

    // ---- Stage 2: the remainder Qs. ---------------------------------
    // Cancellation checkpoint: dropping out here unwinds the pin guard,
    // so a cancelled query never leaves pinned chunks behind.
    config.check_cancel()?;
    let t = Instant::now();
    let stage2_span = tracer.map(|tc| {
        let id = tc.start(tc.ambient(), "stage2");
        tc.set_ambient(Some(id));
        id
    });
    let relation = execute(&phys, &ctx)?;
    if let (Some(tc), Some(id)) = (tracer, stage2_span) {
        tc.end_with(id, Some("Qs (remainder)".into()), Some(relation.rows() as u64), None);
        tc.set_ambient(outer_span.flatten());
    }
    stats.stage2 = t.elapsed();
    stats.rows_union_materialized += ctx.counters.union_rows.load(Ordering::Relaxed);
    stats.partial_agg_chunks += ctx.counters.partial_agg_chunks.load(Ordering::Relaxed);
    drop(pin_guard);

    // Chunk accounting must balance on every path: each selected chunk
    // is pruned, sampled out, loaded, or a cache hit.
    debug_assert!(
        stats.accounting_balanced(),
        "chunk accounting out of balance: selected {} != pruned {} + sampled_out {} + loaded {} + hits {} + skipped {}",
        stats.files_selected,
        stats.files_pruned,
        stats.files_sampled_out,
        stats.files_loaded,
        stats.cache_hits,
        stats.files_skipped
    );

    let o = &config.obs;
    o.count("query.count", 1);
    o.count("query.stage1_ns", stats.stage1.as_nanos() as u64);
    o.count("query.load_ns", stats.load.as_nanos() as u64);
    o.count("query.stage2_ns", stats.stage2.as_nanos() as u64);
    o.count("chunks.selected", stats.files_selected as u64);
    o.count("chunks.pruned", stats.files_pruned as u64);
    o.count("chunks.sampled_out", stats.files_sampled_out as u64);
    o.count("chunks.loaded", stats.files_loaded as u64);
    o.count("chunks.cache_hits", stats.cache_hits as u64);
    o.count("chunks.load_joins", stats.load_joins);
    o.count("chunks.skipped", stats.files_skipped as u64);
    o.count("rows.loaded", stats.rows_loaded);
    o.count("bytes.loaded", stats.bytes_loaded);
    Ok(QueryOutcome { relation, stats, trace, skipped })
}

/// Record the acquisition span of one managed chunk (non-fused path):
/// the span covers decode + pin wait, annotated with how it was
/// satisfied.
fn record_chunk_acquisition(tc: &TraceCollector, uri: &str, chunk: &AcquiredChunk) {
    let dur = (chunk.decode + chunk.pin_wait).as_nanos() as u64;
    let status = if chunk.joined {
        format!("{uri} joined, waited {}", fmt_ns(chunk.pin_wait.as_nanos() as u64))
    } else if chunk.loaded {
        format!("{uri} decoded in {}", fmt_ns(chunk.decode.as_nanos() as u64))
    } else {
        format!("{uri} hit")
    };
    let end = tc.now_ns();
    tc.record(
        tc.ambient(),
        "chunk.load",
        status,
        end.saturating_sub(dur),
        dur,
        None,
        Some(chunk.relation.rows() as u64),
        Some(chunk.relation.approx_bytes() as u64),
    );
}

/// The fused decode→execute wave over one [`PhysicalPlan::PartialAggUnion`]:
/// each chunk runs its pipeline (projection, pushed-down selection,
/// probe of the shared build side, residual filter, partial
/// aggregation) on the worker that produced it, then drops its pin; the
/// partial states merge in chunk order afterwards.
#[allow(clippy::too_many_arguments)]
fn fused_wave(
    residency: &dyn ChunkResidency,
    uris: &[String],
    projection: Option<&[String]>,
    node: &PhysicalPlan,
    ctx: &ExecContext,
    config: &TwoStageConfig,
    stats: &mut ExecStats,
    skipped: &mut Vec<SkippedChunk>,
) -> Result<Relation> {
    let PhysicalPlan::PartialAggUnion {
        columns, predicate, join, ops, group_by, aggs, ..
    } = node
    else {
        unreachable!("caller located a partial-agg node")
    };
    // The build side is chunk-free (fusion guarantees it): execute and
    // hash it once; every chunk probes the shared build.
    let build = join
        .as_ref()
        .map(|j| crate::join::JoinBuild::new(execute(&j.right, ctx)?, &j.right_keys))
        .transpose()?;
    let pipeline = ChunkPipeline {
        columns,
        predicate: predicate.as_ref(),
        build: join.as_ref().zip(build.as_ref()).map(|(j, b)| (b, j.left_keys.as_slice())),
        ops,
    };
    let slots: Vec<Mutex<Option<PartialAgg>>> =
        (0..uris.len()).map(|_| Mutex::new(None)).collect();
    let (loaded, hits) = (AtomicU64::new(0), AtomicU64::new(0));
    let (rows, bytes) = (AtomicU64::new(0), AtomicU64::new(0));
    let (joins, wait_ns) = (AtomicU64::new(0), AtomicU64::new(0));
    let skips: Mutex<Vec<SkippedChunk>> = Mutex::new(Vec::new());
    let tracer = config.obs.tracer().map(Arc::as_ref);
    let sink = |i: usize, chunk: AcquiredChunk| -> Result<()> {
        let chunk_bytes = chunk.relation.approx_bytes() as u64;
        if let Some(reason) = &chunk.skipped {
            skips.lock().push(SkippedChunk { uri: uris[i].clone(), reason: reason.clone() });
        } else if chunk.loaded {
            loaded.fetch_add(1, Ordering::Relaxed);
            rows.fetch_add(chunk.relation.rows() as u64, Ordering::Relaxed);
            bytes.fetch_add(chunk_bytes, Ordering::Relaxed);
        } else {
            hits.fetch_add(1, Ordering::Relaxed);
        }
        if chunk.joined {
            joins.fetch_add(1, Ordering::Relaxed);
        }
        wait_ns.fetch_add(chunk.pin_wait.as_nanos() as u64, Ordering::Relaxed);
        let t0 = Instant::now();
        let part = partial_aggregate(&pipeline.run(&chunk.relation)?, group_by, aggs)?;
        if let Some(tc) = tracer {
            // One span per chunk, covering decode + pin wait + the
            // fused pipeline (all on the worker that decoded it).
            let pipe_ns = t0.elapsed().as_nanos() as u64;
            let acq_ns = (chunk.decode + chunk.pin_wait).as_nanos() as u64;
            let end = tc.now_ns();
            let how = if chunk.joined {
                format!("wait {}", fmt_ns(chunk.pin_wait.as_nanos() as u64))
            } else if chunk.loaded {
                format!("decode {}", fmt_ns(chunk.decode.as_nanos() as u64))
            } else {
                "hit".to_string()
            };
            tc.record(
                tc.ambient(),
                "chunk",
                format!("{} ({how}, pipeline {})", uris[i], fmt_ns(pipe_ns)),
                end.saturating_sub(acq_ns + pipe_ns),
                acq_ns + pipe_ns,
                obs::current_worker(),
                Some(chunk.relation.rows() as u64),
                Some(chunk_bytes),
            );
        }
        *slots[i].lock() = Some(part);
        Ok(())
    };
    residency.acquire_each(uris, projection, &config.policy(), &sink)?;
    let skips = skips.into_inner();
    stats.files_skipped += skips.len();
    skipped.extend(skips);
    stats.files_loaded += loaded.load(Ordering::Relaxed) as usize;
    stats.cache_hits += hits.load(Ordering::Relaxed) as usize;
    stats.rows_loaded += rows.load(Ordering::Relaxed);
    stats.bytes_loaded += bytes.load(Ordering::Relaxed);
    stats.load_joins += joins.load(Ordering::Relaxed);
    stats.pin_wait += Duration::from_nanos(wait_ns.load(Ordering::Relaxed));
    stats.partial_agg_chunks += uris.len() as u64;
    let parts: Vec<PartialAgg> = slots
        .into_iter()
        .map(|s| s.into_inner().expect("sink ran for every chunk"))
        .collect();
    merge_partials(parts, group_by, aggs)
}

/// Approximate answering: keep a deterministic sample of the selected
/// chunks (stable across repeated runs of the query).
fn sample_uris(
    uris: Vec<String>,
    sampling: Option<f64>,
    stats: &mut ExecStats,
) -> Vec<String> {
    match sampling {
        Some(fraction) if fraction < 1.0 && uris.len() > 1 => {
            let keep = ((uris.len() as f64 * fraction.clamp(0.0, 1.0)).ceil() as usize)
                .clamp(1, uris.len());
            let mut ranked: Vec<(u64, String)> = uris
                .into_iter()
                .map(|u| {
                    use std::hash::{Hash, Hasher};
                    let mut h = std::collections::hash_map::DefaultHasher::new();
                    u.hash(&mut h);
                    (h.finish(), u)
                })
                .collect();
            ranked.sort();
            stats.files_sampled_out = ranked.len() - keep;
            ranked.truncate(keep);
            // Restore a deterministic (name) order for loading.
            let mut kept: Vec<String> = ranked.into_iter().map(|(_, u)| u).collect();
            kept.sort();
            kept
        }
        _ => uris,
    }
}

/// Distinct URIs from the stage-1 result, in first-appearance order.
fn distinct_uris(rf: &Relation, uri_column: &str) -> Result<Vec<String>> {
    let col = rf.column(uri_column)?;
    let text = match col {
        ColumnData::Text(t) => t,
        other => {
            return Err(EngineError::Exec(format!(
                "uri column {uri_column} has type {}, expected text",
                other.data_type()
            )))
        }
    };
    let mut seen = vec![false; text.dict.len()];
    let mut out = Vec::new();
    for &code in &text.codes {
        if !seen[code as usize] {
            seen[code as usize] = true;
            out.push(text.dict.get(code).to_string());
        }
    }
    Ok(out)
}

/// Static parallelism: chunks pre-partitioned round-robin over up to
/// `max_threads` workers; each worker ingests its fixed share.
fn load_static(
    source: &dyn ChunkSource,
    uris: &[&str],
    projection: Option<&[String]>,
    policy: &SchedPolicy,
    obs: &Obs,
) -> Result<Vec<(String, Relation)>> {
    let policy = SchedPolicy { parallel: ParallelMode::Static, ..policy.clone() };
    let loaded = run_indexed_policy(uris.len(), &policy, obs, |i| {
        let tracer = obs.tracer();
        let t0 = tracer.map(|tc| tc.now_ns());
        let rel = source.load_chunk(uris[i], projection);
        if let (Some(tc), Some(t0)) = (tracer, t0) {
            tc.record(
                tc.ambient(),
                "chunk.load",
                uris[i].to_string(),
                t0,
                tc.now_ns().saturating_sub(t0),
                obs::current_worker(),
                rel.as_ref().ok().map(|r| r.rows() as u64),
                rel.as_ref().ok().map(|r| r.approx_bytes() as u64),
            );
        }
        rel
    });
    let mut out = Vec::with_capacity(uris.len());
    for (uri, rel) in uris.iter().zip(loaded) {
        out.push((uri.to_string(), rel?));
    }
    Ok(out)
}

/// Exchange-style parallelism: decode units from all chunks feed a
/// shared queue drained by a fixed worker pool, so skew between chunks
/// balances out.
fn load_exchange(
    source: &dyn ChunkSource,
    uris: &[&str],
    projection: Option<&[String]>,
    policy: &SchedPolicy,
    obs: &Obs,
) -> Result<Vec<(String, Relation)>> {
    if uris.is_empty() {
        return Ok(Vec::new());
    }
    // Build the unit list (cheap: header reads, no decoding) ...
    let mut slots: Vec<(usize, Mutex<Option<ChunkUnit<'_>>>)> = Vec::new();
    for (fi, uri) in uris.iter().enumerate() {
        for unit in source.chunk_units(uri, projection)? {
            slots.push((fi, Mutex::new(Some(unit))));
        }
    }
    // ... then decode dynamically: each worker pulls the next unit.
    let results = run_indexed_policy(slots.len(), policy, obs, |i| {
        let unit = slots[i].1.lock().take().expect("each unit taken once");
        let tracer = obs.tracer();
        let t0 = tracer.map(|tc| tc.now_ns());
        let rel = unit();
        if let (Some(tc), Some(t0)) = (tracer, t0) {
            tc.record(
                tc.ambient(),
                "chunk.load",
                format!("{} (unit)", uris[slots[i].0]),
                t0,
                tc.now_ns().saturating_sub(t0),
                obs::current_worker(),
                rel.as_ref().ok().map(|r| r.rows() as u64),
                rel.as_ref().ok().map(|r| r.approx_bytes() as u64),
            );
        }
        rel
    });
    // Reassemble per-file relations; unit order within a file is the
    // construction order, so the union is deterministic.
    let mut per_file: Vec<Relation> = (0..uris.len()).map(|_| Relation::empty()).collect();
    for (&(fi, _), rel) in slots.iter().zip(results) {
        per_file[fi].union_in_place(&rel?)?;
    }
    Ok(uris.iter().map(|u| u.to_string()).zip(per_file).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, CmpOp, Expr};
    use sommelier_storage::buffer::BufferPoolConfig;
    use sommelier_storage::catalog::Disposition;
    use sommelier_storage::column::TextColumn;
    use sommelier_storage::{ConstraintPolicy, DataType, TableClass, TableSchema, Value};
    use std::sync::atomic::AtomicUsize;

    /// A chunk source serving synthetic per-file D relations:
    /// file `u<i>` has rows with file_id = i and values i*10 .. i*10+2.
    struct FakeSource {
        uris: Vec<String>,
        loads: AtomicUsize,
    }

    impl FakeSource {
        fn new(n: usize) -> Self {
            FakeSource {
                uris: (0..n).map(|i| format!("u{i}")).collect(),
                loads: AtomicUsize::new(0),
            }
        }

        fn rel_for(i: i64) -> Relation {
            Relation::new(vec![
                ("D.file_id".into(), ColumnData::Int64(vec![i, i, i])),
                (
                    "D.sample_value".into(),
                    ColumnData::Float64(vec![
                        i as f64 * 10.0,
                        i as f64 * 10.0 + 1.0,
                        i as f64 * 10.0 + 2.0,
                    ]),
                ),
            ])
            .unwrap()
        }
    }

    fn apply_projection(rel: Relation, projection: Option<&[String]>) -> Result<Relation> {
        match projection {
            Some(cols) => {
                let wanted: Vec<(String, String)> =
                    cols.iter().map(|c| (c.clone(), c.clone())).collect();
                rel.project_named(&wanted)
            }
            None => Ok(rel),
        }
    }

    impl ChunkSource for FakeSource {
        fn load_chunk(&self, uri: &str, projection: Option<&[String]>) -> Result<Relation> {
            self.loads.fetch_add(1, Ordering::Relaxed);
            let i: i64 = uri[1..]
                .parse()
                .map_err(|_| EngineError::Chunk(format!("unknown uri {uri:?}")))?;
            apply_projection(Self::rel_for(i), projection)
        }

        fn chunk_units<'s>(
            &'s self,
            uri: &str,
            projection: Option<&[String]>,
        ) -> Result<Vec<ChunkUnit<'s>>> {
            // Two units per chunk: split the 3 rows as 2 + 1.
            self.loads.fetch_add(1, Ordering::Relaxed);
            let i: i64 = uri[1..].parse().unwrap();
            let full = apply_projection(Self::rel_for(i), projection)?;
            let a = full.take(&[0, 1]);
            let b = full.take(&[2]);
            Ok(vec![Box::new(move || Ok(a)), Box::new(move || Ok(b))])
        }

        fn all_chunks(&self) -> Result<Vec<String>> {
            Ok(self.uris.clone())
        }
    }

    /// A minimal residency manager over a [`FakeSource`], to exercise
    /// the fused decode→execute path without the core crate's cellar:
    /// everything stays resident, pins are counted.
    struct FakeResidency {
        source: FakeSource,
        resident: Mutex<std::collections::HashMap<String, Arc<Relation>>>,
        pins: AtomicUsize,
        peak_pins: AtomicUsize,
        /// uri → reason: loads of these chunks fail (skip or error
        /// depending on the policy's degradation mode).
        unreadable: Mutex<std::collections::HashMap<String, String>>,
        /// uri → reason: stage 1 skips these without touching them.
        quarantined: Mutex<std::collections::HashMap<String, String>>,
    }

    impl FakeResidency {
        fn new(n: usize) -> Self {
            FakeResidency {
                source: FakeSource::new(n),
                resident: Mutex::new(std::collections::HashMap::new()),
                pins: AtomicUsize::new(0),
                peak_pins: AtomicUsize::new(0),
                unreadable: Mutex::new(std::collections::HashMap::new()),
                quarantined: Mutex::new(std::collections::HashMap::new()),
            }
        }

        fn pin(&self) {
            let now = self.pins.fetch_add(1, Ordering::SeqCst) + 1;
            self.peak_pins.fetch_max(now, Ordering::SeqCst);
        }

        fn empty_placeholder() -> Arc<Relation> {
            Arc::new(
                Relation::new(vec![
                    ("D.file_id".into(), ColumnData::Int64(Vec::new())),
                    ("D.sample_value".into(), ColumnData::Float64(Vec::new())),
                ])
                .unwrap(),
            )
        }
    }

    impl ChunkResidency for FakeResidency {
        fn is_resident(&self, uri: &str) -> bool {
            self.resident.lock().contains_key(uri)
        }

        fn acquire_many(
            &self,
            uris: &[String],
            _projection: Option<&[String]>,
            policy: &SchedPolicy,
        ) -> Result<Vec<AcquiredChunk>> {
            uris.iter()
                .map(|u| {
                    if let Some(reason) = self.unreadable.lock().get(u) {
                        return match policy.degradation {
                            DegradationPolicy::SkipUnreadable => Ok(AcquiredChunk::skipped(
                                Self::empty_placeholder(),
                                reason.clone(),
                            )),
                            DegradationPolicy::Strict => Err(EngineError::ChunkLoad {
                                uri: u.clone(),
                                kind: ErrorKind::Permanent,
                                message: reason.clone(),
                            }),
                        };
                    }
                    self.pin();
                    let mut resident = self.resident.lock();
                    if let Some(rel) = resident.get(u) {
                        return Ok(AcquiredChunk::untimed(Arc::clone(rel), false, false));
                    }
                    // Retaining manager: always decodes full width.
                    let rel = Arc::new(self.source.load_chunk(u, None)?);
                    resident.insert(u.clone(), Arc::clone(&rel));
                    Ok(AcquiredChunk::untimed(rel, true, false))
                })
                .collect()
        }

        fn release_many(&self, uris: &[String]) {
            let unreadable = self.unreadable.lock();
            let n = uris.iter().filter(|u| !unreadable.contains_key(*u)).count();
            self.pins.fetch_sub(n, Ordering::SeqCst);
        }

        fn all_chunks(&self) -> Result<Vec<String>> {
            self.source.all_chunks()
        }

        fn quarantined(&self, uri: &str) -> Option<String> {
            self.quarantined.lock().get(uri).cloned()
        }
    }

    fn test_config() -> TwoStageConfig {
        TwoStageConfig { uri_column: "F.uri".to_string(), ..TwoStageConfig::default() }
    }

    fn metadata_db() -> Database {
        let db = Database::in_memory(BufferPoolConfig::default());
        db.create_table(
            TableSchema::new("F", TableClass::MetadataGiven)
                .column("file_id", DataType::Int64)
                .column("uri", DataType::Text)
                .column("station", DataType::Text)
                .primary_key(["file_id"]),
            Disposition::Resident,
        )
        .unwrap();
        db.append(
            "F",
            &[
                ColumnData::Int64(vec![0, 1, 2]),
                ColumnData::Text(TextColumn::from_strs(["u0", "u1", "u2"])),
                ColumnData::Text(TextColumn::from_strs(["ISK", "FIAM", "ISK"])),
            ],
            ConstraintPolicy::all(),
        )
        .unwrap();
        db
    }

    /// AVG(D.sample_value) for station ISK — a T4-shaped two-stage plan.
    fn lazy_plan() -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(LogicalPlan::LazyScan {
                    table: "D".into(),
                    columns: vec!["D.file_id".into(), "D.sample_value".into()],
                    predicate: Some(
                        Expr::col("D.sample_value").cmp(CmpOp::Ge, Expr::lit(0.0)),
                    ),
                }),
                right: Box::new(LogicalPlan::QfMark {
                    input: Box::new(LogicalPlan::Scan {
                        table: "F".into(),
                        columns: vec!["F.file_id".into(), "F.uri".into(), "F.station".into()],
                        predicate: Some(Expr::col("F.station").eq(Expr::lit("ISK"))),
                    }),
                }),
                left_keys: vec![Expr::col("D.file_id")],
                right_keys: vec![Expr::col("F.file_id")],
            }),
            group_by: vec![],
            aggs: vec![("avg_v".into(), AggFunc::Avg, Expr::col("D.sample_value"))],
        }
    }

    #[test]
    fn two_stage_loads_only_selected_chunks() {
        let db = metadata_db();
        let source = FakeSource::new(3);
        let recycler = Recycler::new(1 << 20);
        let config = test_config();
        let out = execute_plan(
            &db,
            &lazy_plan(),
            ChunkAccess::Direct { source: &source, recycler: Some(&recycler) },
            &config,
        )
        .unwrap();
        // Stage 1 selects files 0 and 2 (ISK); their 6 values: 0,1,2,20,21,22.
        assert_eq!(out.relation.value(0, "avg_v").unwrap(), Value::Float(11.0));
        assert_eq!(out.stats.files_selected, 2);
        assert_eq!(out.stats.files_loaded, 2);
        assert_eq!(out.stats.cache_hits, 0);
        assert_eq!(out.stats.rows_loaded, 6);
        assert_eq!(source.loads.load(Ordering::Relaxed), 2, "u1 never touched");
        // The aggregate fused: no union was materialized.
        assert_eq!(out.stats.partial_agg_chunks, 2);
        assert_eq!(out.stats.rows_union_materialized, 0);
    }

    #[test]
    fn second_run_hits_recycler() {
        let db = metadata_db();
        let source = FakeSource::new(3);
        let recycler = Recycler::new(1 << 20);
        let config = test_config();
        let access = || ChunkAccess::Direct { source: &source, recycler: Some(&recycler) };
        execute_plan(&db, &lazy_plan(), access(), &config).unwrap();
        let out = execute_plan(&db, &lazy_plan(), access(), &config).unwrap();
        assert_eq!(out.stats.cache_hits, 2);
        assert_eq!(out.stats.files_loaded, 0);
        assert_eq!(source.loads.load(Ordering::Relaxed), 2, "no re-ingestion");
        assert_eq!(out.relation.value(0, "avg_v").unwrap(), Value::Float(11.0));
    }

    #[test]
    fn cache_disabled_always_reloads() {
        let db = metadata_db();
        let source = FakeSource::new(3);
        let recycler = Recycler::new(1 << 20);
        let config = TwoStageConfig { use_cache: false, ..test_config() };
        let access = || ChunkAccess::Direct { source: &source, recycler: Some(&recycler) };
        execute_plan(&db, &lazy_plan(), access(), &config).unwrap();
        let out = execute_plan(&db, &lazy_plan(), access(), &config).unwrap();
        assert_eq!(out.stats.cache_hits, 0);
        assert_eq!(out.stats.files_loaded, 2);
        assert_eq!(source.loads.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn exchange_mode_matches_static() {
        let db = metadata_db();
        let source = FakeSource::new(3);
        let config = TwoStageConfig {
            parallel: ParallelMode::Exchange { workers: 4 },
            use_cache: false,
            ..test_config()
        };
        let out = execute_plan(
            &db,
            &lazy_plan(),
            ChunkAccess::Direct { source: &source, recycler: None },
            &config,
        )
        .unwrap();
        assert_eq!(out.relation.value(0, "avg_v").unwrap(), Value::Float(11.0));
        assert_eq!(out.stats.rows_loaded, 6);
    }

    #[test]
    fn managed_residency_runs_fused_wave() {
        let db = metadata_db();
        let residency = FakeResidency::new(3);
        let config = test_config();
        let out = execute_plan(&db, &lazy_plan(), ChunkAccess::Managed(&residency), &config)
            .unwrap();
        assert_eq!(out.relation.value(0, "avg_v").unwrap(), Value::Float(11.0));
        assert_eq!(out.stats.files_loaded, 2);
        assert_eq!(out.stats.partial_agg_chunks, 2);
        assert_eq!(out.stats.rows_union_materialized, 0, "no union materialized");
        assert_eq!(residency.pins.load(Ordering::SeqCst), 0, "all pins released");
        // Second run: served from residency, still fused.
        let out2 = execute_plan(&db, &lazy_plan(), ChunkAccess::Managed(&residency), &config)
            .unwrap();
        assert_eq!(out2.stats.cache_hits, 2);
        assert_eq!(out2.stats.files_loaded, 0);
        assert_eq!(out2.relation.value(0, "avg_v").unwrap(), Value::Float(11.0));
    }

    #[test]
    fn fused_and_load_all_results_agree() {
        let db = metadata_db();
        let residency = FakeResidency::new(3);
        let fused =
            execute_plan(&db, &lazy_plan(), ChunkAccess::Managed(&residency), &test_config())
                .unwrap();
        // Pushdown off → no fusion → load-all + materialized union.
        let config = TwoStageConfig { pushdown: false, ..test_config() };
        let unioned =
            execute_plan(&db, &lazy_plan(), ChunkAccess::Managed(&residency), &config)
                .unwrap();
        assert_eq!(unioned.stats.partial_agg_chunks, 0);
        assert!(unioned.stats.rows_union_materialized > 0);
        match (
            fused.relation.value(0, "avg_v").unwrap(),
            unioned.relation.value(0, "avg_v").unwrap(),
        ) {
            (Value::Float(a), Value::Float(b)) => assert!((a - b).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(residency.pins.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn pure_metadata_plan_runs_single_stage() {
        let db = metadata_db();
        let plan = LogicalPlan::Project {
            input: Box::new(LogicalPlan::QfMark {
                input: Box::new(LogicalPlan::Scan {
                    table: "F".into(),
                    columns: vec!["F.station".into()],
                    predicate: None,
                }),
            }),
            exprs: vec![("s".into(), Expr::col("F.station"))],
        };
        let out = execute_plan(&db, &plan, ChunkAccess::None, &test_config()).unwrap();
        assert_eq!(out.relation.rows(), 3);
        assert_eq!(out.stats.files_selected, 0);
        assert!(out.stats.stage1 > Duration::ZERO);
    }

    #[test]
    fn pure_ad_plan_loads_everything() {
        let db = metadata_db();
        let source = FakeSource::new(3);
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::LazyScan {
                table: "D".into(),
                columns: vec!["D.sample_value".into()],
                predicate: None,
            }),
            group_by: vec![],
            aggs: vec![("n".into(), AggFunc::Count, Expr::col("D.sample_value"))],
        };
        let out = execute_plan(
            &db,
            &plan,
            ChunkAccess::Direct { source: &source, recycler: None },
            &test_config(),
        )
        .unwrap();
        assert_eq!(out.stats.files_selected, 3, "no metadata: all chunks");
        assert_eq!(out.relation.value(0, "n").unwrap(), Value::Int(9));
    }

    #[test]
    fn missing_source_is_an_error() {
        let db = metadata_db();
        assert!(matches!(
            execute_plan(&db, &lazy_plan(), ChunkAccess::None, &test_config()),
            Err(EngineError::Chunk(_))
        ));
    }

    #[test]
    fn skip_mode_completes_over_readable_chunks() {
        let db = metadata_db();
        let residency = FakeResidency::new(3);
        residency.unreadable.lock().insert("u2".into(), "bad magic".into());
        let config = TwoStageConfig {
            degradation: DegradationPolicy::SkipUnreadable,
            ..test_config()
        };
        let out = execute_plan(&db, &lazy_plan(), ChunkAccess::Managed(&residency), &config)
            .unwrap();
        // Only u0's values (0, 1, 2) survive; u2 is skipped.
        assert_eq!(out.relation.value(0, "avg_v").unwrap(), Value::Float(1.0));
        assert_eq!(out.stats.files_skipped, 1);
        assert_eq!(out.stats.files_loaded, 1);
        assert!(out.stats.accounting_balanced());
        assert_eq!(out.skipped.len(), 1);
        assert_eq!(out.skipped[0].uri, "u2");
        assert_eq!(out.skipped[0].reason, "bad magic");
        assert_eq!(residency.pins.load(Ordering::SeqCst), 0, "no pins leaked");
    }

    #[test]
    fn strict_mode_fails_with_typed_error_naming_the_chunk() {
        let db = metadata_db();
        let residency = FakeResidency::new(3);
        residency.unreadable.lock().insert("u2".into(), "bad magic".into());
        let err =
            execute_plan(&db, &lazy_plan(), ChunkAccess::Managed(&residency), &test_config())
                .unwrap_err();
        match err {
            EngineError::ChunkLoad { uri, kind, .. } => {
                assert_eq!(uri, "u2");
                assert_eq!(kind, ErrorKind::Permanent);
            }
            other => panic!("expected ChunkLoad, got {other:?}"),
        }
    }

    #[test]
    fn quarantined_chunk_skipped_without_being_touched() {
        let db = metadata_db();
        let residency = FakeResidency::new(3);
        residency.quarantined.lock().insert("u2".into(), "quarantined earlier".into());
        let config = TwoStageConfig {
            degradation: DegradationPolicy::SkipUnreadable,
            ..test_config()
        };
        let out = execute_plan(&db, &lazy_plan(), ChunkAccess::Managed(&residency), &config)
            .unwrap();
        assert_eq!(out.stats.files_skipped, 1);
        assert_eq!(out.skipped[0].uri, "u2");
        assert_eq!(
            residency.source.loads.load(Ordering::Relaxed),
            1,
            "only u0 decoded; the quarantined chunk's file was never touched"
        );
        // Strict mode fails fast on the quarantined chunk, still
        // without touching its file.
        let err =
            execute_plan(&db, &lazy_plan(), ChunkAccess::Managed(&residency), &test_config())
                .unwrap_err();
        assert!(matches!(err, EngineError::ChunkLoad { uri, .. } if uri == "u2"));
        assert_eq!(residency.source.loads.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn distinct_uris_keeps_first_appearance_order() {
        let rel = Relation::new(vec![(
            "F.uri".into(),
            ColumnData::Text(TextColumn::from_strs(["b", "a", "b", "c", "a"])),
        )])
        .unwrap();
        assert_eq!(distinct_uris(&rel, "F.uri").unwrap(), vec!["b", "a", "c"]);
        assert!(distinct_uris(&rel, "F.nope").is_err());
    }
}
