//! Engine error type.

use sommelier_storage::StorageError;
use std::fmt;

/// Result alias for the engine crate.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors raised while planning or executing queries.
#[derive(Debug)]
pub enum EngineError {
    /// Propagated storage-layer error.
    Storage(StorageError),
    /// Name resolution / typing problems while binding.
    Bind(String),
    /// Planning failures (impossible join orders, missing edges, ...).
    Plan(String),
    /// Execution-time failures.
    Exec(String),
    /// Chunk ingestion failed (lazy loading).
    Chunk(String),
    /// The query was cancelled (explicitly, or by a blown deadline when
    /// `timed_out` is true) at a chunk-pipeline boundary.
    Cancelled {
        /// True when a deadline fired rather than an explicit cancel.
        timed_out: bool,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::Bind(m) => write!(f, "bind error: {m}"),
            EngineError::Plan(m) => write!(f, "plan error: {m}"),
            EngineError::Exec(m) => write!(f, "execution error: {m}"),
            EngineError::Chunk(m) => write!(f, "chunk access error: {m}"),
            EngineError::Cancelled { timed_out: true } => write!(f, "query timed out"),
            EngineError::Cancelled { timed_out: false } => write!(f, "query cancelled"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = EngineError::Bind("unknown column".into());
        assert!(e.to_string().contains("unknown column"));
        assert!(e.source().is_none());
        let e: EngineError = StorageError::Schema("x".into()).into();
        assert!(e.source().is_some());
    }
}
