//! Engine error type.

use sommelier_storage::StorageError;
use std::fmt;

pub use sommelier_storage::ErrorKind;

/// Result alias for the engine crate.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors raised while planning or executing queries.
#[derive(Debug)]
pub enum EngineError {
    /// Propagated storage-layer error.
    Storage(StorageError),
    /// Name resolution / typing problems while binding.
    Bind(String),
    /// Planning failures (impossible join orders, missing edges, ...).
    Plan(String),
    /// Execution-time failures.
    Exec(String),
    /// Chunk ingestion failed (lazy loading).
    Chunk(String),
    /// A specific chunk failed to load, with its retry classification.
    /// The payload is plain data (no `io::Error` source) so the
    /// cellar's single-flight latches can clone it to every waiter.
    ChunkLoad {
        /// URI of the chunk that failed.
        uri: String,
        /// Whether a retry could succeed.
        kind: ErrorKind,
        /// Human-readable cause.
        message: String,
    },
    /// The query was cancelled (explicitly, or by a blown deadline when
    /// `timed_out` is true) at a chunk-pipeline boundary.
    Cancelled {
        /// True when a deadline fired rather than an explicit cancel.
        timed_out: bool,
    },
    /// A morsel task (decode, fetch, or operator code) panicked. The
    /// panic was caught at the worker seam and converted into this
    /// typed error so it fails only the owning query — pins are
    /// released and latch waiters woken retryable, never poisoned.
    Panicked {
        /// The panic payload, stringified.
        payload: String,
    },
}

impl EngineError {
    /// Retry classification. Cancellation is never retried (it is not
    /// a failure of the work, but a withdrawal of the request); errors
    /// without an explicit classification are permanent.
    pub fn kind(&self) -> ErrorKind {
        match self {
            EngineError::Storage(e) => e.kind(),
            EngineError::ChunkLoad { kind, .. } => *kind,
            _ => ErrorKind::Permanent,
        }
    }

    /// Build a [`EngineError::ChunkLoad`] that preserves the retry
    /// classification of an underlying engine error.
    pub fn chunk_load(uri: impl Into<String>, cause: &EngineError) -> EngineError {
        EngineError::ChunkLoad {
            uri: uri.into(),
            kind: cause.kind(),
            message: cause.to_string(),
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::Bind(m) => write!(f, "bind error: {m}"),
            EngineError::Plan(m) => write!(f, "plan error: {m}"),
            EngineError::Exec(m) => write!(f, "execution error: {m}"),
            EngineError::Chunk(m) => write!(f, "chunk access error: {m}"),
            EngineError::ChunkLoad { uri, kind, message } => {
                let k = match kind {
                    ErrorKind::Transient => "transient",
                    ErrorKind::Permanent => "permanent",
                };
                write!(f, "chunk {uri:?} failed to load ({k}): {message}")
            }
            EngineError::Cancelled { timed_out: true } => write!(f, "query timed out"),
            EngineError::Cancelled { timed_out: false } => write!(f, "query cancelled"),
            EngineError::Panicked { payload } => {
                write!(f, "morsel task panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = EngineError::Bind("unknown column".into());
        assert!(e.to_string().contains("unknown column"));
        assert!(e.source().is_none());
        let e: EngineError = StorageError::Schema("x".into()).into();
        assert!(e.source().is_some());
    }

    #[test]
    fn chunk_load_names_the_chunk_and_classifies() {
        let e = EngineError::ChunkLoad {
            uri: "day-3.log".into(),
            kind: ErrorKind::Permanent,
            message: "bad magic".into(),
        };
        assert_eq!(e.kind(), ErrorKind::Permanent);
        let s = e.to_string();
        assert!(s.contains("day-3.log"), "{s}");
        assert!(s.contains("permanent"), "{s}");
        assert_eq!(EngineError::Cancelled { timed_out: false }.kind(), ErrorKind::Permanent);
        let p = EngineError::Panicked { payload: "boom".into() };
        assert_eq!(p.kind(), ErrorKind::Permanent);
        assert!(p.to_string().contains("boom"), "{p}");
        let io = StorageError::io(
            "read",
            std::io::Error::new(std::io::ErrorKind::Interrupted, "eintr"),
        );
        let wrapped = EngineError::chunk_load("c.log", &EngineError::Storage(io));
        assert_eq!(wrapped.kind(), ErrorKind::Transient);
    }
}
