//! # sommelier-engine
//!
//! The relational query engine of the `sommelier` reproduction of
//! *"The DBMS – your Big Data Sommelier"* (ICDE 2015), implementing the
//! paper's query-processing contributions:
//!
//! * **Colored query graphs** ([`graph`]): metadata tables are red
//!   vertices, actual-data tables black; edges between them are red,
//!   blue, or black (§III).
//! * **Join-order rules R1–R4** ([`joinorder`]): red edges first, cross
//!   products to unify red components if necessary, no bushy plans over
//!   black vertices, black edges last. The result is a plan decomposed
//!   as `Q = Qf ▷ Qs` with the metadata branch `Qf` marked.
//! * **Access paths** ([`physical`]): besides scan/index-scan, the
//!   paper's three additions — *result-scan* (stage-1 result),
//!   *cache-scan* (recycler-cached chunk), *chunk-access* (lazy chunk
//!   ingestion).
//! * **Rule-based optimizer** ([`optimizer`]): every rewrite — join
//!   ordering, the run-time chunk rewrite, selection/projection
//!   pushdown, zone-map chunk pruning, partial-aggregate fusion — is a
//!   named pass in one ordered pipeline with a fired/skipped trace.
//! * **Two-stage execution** ([`twostage`]): evaluate `Qf`, then apply
//!   the run-time rewrite `scan(a) → ⋃_f cache-scan(f) | chunk-access(f)`
//!   (rewrite rule 1, optionally with selection pushdown into the
//!   per-chunk accesses), then evaluate `Qs` — with the paper's *static*
//!   per-chunk parallelism or the exchange-style dynamic repartitioning
//!   it sketches as future work.
//! * **Recycler** ([`recycler`]): the byte-budgeted LRU chunk cache
//!   standing in for MonetDB's Recycler.
//!
//! The executor is bulk (column-at-a-time), like MonetDB: operators
//! materialize whole [`relation::Relation`]s.

pub mod agg;
pub mod error;
pub mod eval;
pub mod exec;
pub mod expr;
pub mod graph;
pub mod join;
pub mod joinorder;
pub mod logical;
pub mod obs;
pub mod optimizer;
pub mod physical;
pub mod recycler;
pub mod relation;
pub mod sched;
pub mod sort;
pub mod spec;
pub mod twostage;

pub use error::{EngineError, ErrorKind, Result};
pub use expr::{AggFunc, CmpOp, Expr, Func};
pub use logical::LogicalPlan;
pub use obs::{MetricsRegistry, MetricsSnapshot, Obs, ObsLevel, SpanTrace, TraceCollector};
pub use optimizer::{ColumnZone, PassTrace, ZoneCandidates, ZoneConstraint};
pub use physical::{fuse_partial_agg, PhysicalPlan};
pub use recycler::Recycler;
pub use relation::{Relation, RelationBuilder};
pub use sched::{
    CancelToken, DegradationPolicy, MorselScheduler, Priority, SchedPolicy, SchedStats,
};
pub use spec::{JoinEdge, QuerySpec, TableRef};
pub use twostage::{
    AcquiredChunk, ChunkAccess, ChunkResidency, ChunkSink, ChunkSource, ExecStats,
    ParallelMode, SkippedChunk, TwoStageConfig,
};
