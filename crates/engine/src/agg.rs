//! Hash aggregation with group-by.
//!
//! Supports the paper's aggregate set: COUNT, SUM, AVG, MIN, MAX and
//! STDDEV (population — what the `H.window_std_dev` summary metadata
//! stores). A global aggregate (no GROUP BY) over an empty input yields
//! an empty relation (this engine's columns carry no NULLs; the paper's
//! workload never aggregates empty inputs).

use crate::error::{EngineError, Result};
use crate::eval::eval_scalar;
use crate::expr::{AggFunc, Expr};
use crate::relation::Relation;
use sommelier_storage::index::{hash_row, rows_equal};
use sommelier_storage::{ColumnData, DataType};
use std::collections::HashMap;

/// Running state for one aggregate over one group.
#[derive(Debug, Clone)]
struct AggState {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
    min_i: i64,
    max_i: i64,
}

impl AggState {
    fn new() -> Self {
        AggState {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            min_i: i64::MAX,
            max_i: i64::MIN,
        }
    }

    fn update_f(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn update_i(&mut self, v: i64) {
        self.update_f(v as f64);
        self.min_i = self.min_i.min(v);
        self.max_i = self.max_i.max(v);
    }

    fn finish(&self, func: AggFunc, input_type: DataType) -> Result<FinishedAgg> {
        Ok(match func {
            AggFunc::Count => FinishedAgg::Int(self.count as i64),
            AggFunc::Sum => FinishedAgg::Float(self.sum),
            AggFunc::Avg => FinishedAgg::Float(self.sum / self.count as f64),
            AggFunc::StdDev => {
                let n = self.count as f64;
                let var = (self.sum_sq / n) - (self.sum / n) * (self.sum / n);
                FinishedAgg::Float(var.max(0.0).sqrt())
            }
            AggFunc::Min => match input_type {
                DataType::Float64 => FinishedAgg::Float(self.min),
                DataType::Int64 => FinishedAgg::Int(self.min_i),
                DataType::Timestamp => FinishedAgg::Time(self.min_i),
                DataType::Text => {
                    return Err(EngineError::Exec("MIN over text not supported".into()))
                }
            },
            AggFunc::Max => match input_type {
                DataType::Float64 => FinishedAgg::Float(self.max),
                DataType::Int64 => FinishedAgg::Int(self.max_i),
                DataType::Timestamp => FinishedAgg::Time(self.max_i),
                DataType::Text => {
                    return Err(EngineError::Exec("MAX over text not supported".into()))
                }
            },
        })
    }
}

enum FinishedAgg {
    Int(i64),
    Float(f64),
    Time(i64),
}

/// Result column type of `func` over an input of `input_type`.
pub fn output_type(func: AggFunc, input_type: DataType) -> DataType {
    match func {
        AggFunc::Count => DataType::Int64,
        AggFunc::Sum | AggFunc::Avg | AggFunc::StdDev => DataType::Float64,
        AggFunc::Min | AggFunc::Max => input_type,
    }
}

/// Execute a hash aggregation.
pub fn aggregate(
    input: &Relation,
    group_by: &[(String, Expr)],
    aggs: &[(String, AggFunc, Expr)],
) -> Result<Relation> {
    // Evaluate grouping keys and aggregate arguments once, vectorized.
    let key_cols: Vec<ColumnData> =
        group_by.iter().map(|(_, e)| eval_scalar(e, input)).collect::<Result<_>>()?;
    let arg_cols: Vec<ColumnData> =
        aggs.iter().map(|(_, _, e)| eval_scalar(e, input)).collect::<Result<_>>()?;
    let key_refs: Vec<&ColumnData> = key_cols.iter().collect();

    // Group discovery: representative row per group.
    let rows = input.rows();
    let mut groups: HashMap<u64, Vec<u32>> = HashMap::new(); // hash -> group reps
    let mut group_of = Vec::with_capacity(rows);
    let mut reps: Vec<u32> = Vec::new();
    if group_by.is_empty() {
        // One global group, if any rows exist.
        group_of = vec![0usize; rows];
        if rows > 0 {
            reps.push(0);
        }
    } else {
        for r in 0..rows {
            let h = hash_row(&key_refs, r);
            let bucket = groups.entry(h).or_default();
            let gid = bucket
                .iter()
                .find(|&&rep| {
                    rows_equal(&key_refs, reps[rep as usize] as usize, &key_refs, r)
                })
                .copied();
            let gid = match gid {
                Some(g) => g as usize,
                None => {
                    let g = reps.len() as u32;
                    reps.push(r as u32);
                    bucket.push(g);
                    g as usize
                }
            };
            group_of.push(gid);
        }
    }

    // Accumulate.
    let mut states: Vec<Vec<AggState>> = vec![vec![AggState::new(); aggs.len()]; reps.len()];
    for r in 0..rows {
        let g = group_of[r];
        for (ai, col) in arg_cols.iter().enumerate() {
            let st = &mut states[g][ai];
            match col {
                ColumnData::Int64(v) | ColumnData::Timestamp(v) => st.update_i(v[r]),
                ColumnData::Float64(v) => st.update_f(v[r]),
                ColumnData::Text(_) => {
                    if aggs[ai].1 == AggFunc::Count {
                        st.count += 1;
                    } else {
                        return Err(EngineError::Exec(format!(
                            "{} over text column",
                            aggs[ai].1.name()
                        )));
                    }
                }
            }
        }
    }

    // Assemble output: group-key columns (representative rows) then aggs.
    let mut out_cols: Vec<(String, ColumnData)> = Vec::new();
    for ((name, _), col) in group_by.iter().zip(&key_cols) {
        out_cols.push((name.clone(), col.take(&reps)));
    }
    for (ai, (name, func, _)) in aggs.iter().enumerate() {
        let in_type = arg_cols[ai].data_type();
        let mut ints = Vec::new();
        let mut floats = Vec::new();
        let out_type = output_type(*func, in_type);
        for row in &states {
            match row[ai].finish(*func, in_type)? {
                FinishedAgg::Int(v) | FinishedAgg::Time(v) => ints.push(v),
                FinishedAgg::Float(v) => floats.push(v),
            }
        }
        let col = match out_type {
            DataType::Int64 => ColumnData::Int64(ints),
            DataType::Timestamp => ColumnData::Timestamp(ints),
            DataType::Float64 => ColumnData::Float64(floats),
            DataType::Text => unreachable!("rejected above"),
        };
        out_cols.push((name.clone(), col));
    }
    Relation::new(out_cols)
}

/// Duplicate elimination = group by all columns, no aggregates.
pub fn distinct(input: &Relation) -> Result<Relation> {
    let group_by: Vec<(String, Expr)> =
        input.names().iter().map(|n| (n.to_string(), Expr::col(*n))).collect();
    aggregate(input, &group_by, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_storage::column::TextColumn;
    use sommelier_storage::Value;

    fn rel() -> Relation {
        Relation::new(vec![
            (
                "station".into(),
                ColumnData::Text(TextColumn::from_strs(["ISK", "FIAM", "ISK", "ISK"])),
            ),
            ("v".into(), ColumnData::Float64(vec![1.0, 10.0, 3.0, 2.0])),
            ("t".into(), ColumnData::Timestamp(vec![100, 200, 50, 75])),
        ])
        .unwrap()
    }

    fn agg(name: &str, f: AggFunc, col: &str) -> (String, AggFunc, Expr) {
        (name.into(), f, Expr::col(col))
    }

    #[test]
    fn global_aggregates() {
        let out = aggregate(
            &rel(),
            &[],
            &[
                agg("n", AggFunc::Count, "v"),
                agg("s", AggFunc::Sum, "v"),
                agg("a", AggFunc::Avg, "v"),
                agg("mn", AggFunc::Min, "v"),
                agg("mx", AggFunc::Max, "v"),
            ],
        )
        .unwrap();
        assert_eq!(out.rows(), 1);
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(4));
        assert_eq!(out.value(0, "s").unwrap(), Value::Float(16.0));
        assert_eq!(out.value(0, "a").unwrap(), Value::Float(4.0));
        assert_eq!(out.value(0, "mn").unwrap(), Value::Float(1.0));
        assert_eq!(out.value(0, "mx").unwrap(), Value::Float(10.0));
    }

    #[test]
    fn stddev_population() {
        let r = Relation::new(vec![(
            "v".into(),
            ColumnData::Float64(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]),
        )])
        .unwrap();
        let out = aggregate(&r, &[], &[agg("sd", AggFunc::StdDev, "v")]).unwrap();
        // Classic example: population stddev = 2.
        assert_eq!(out.value(0, "sd").unwrap(), Value::Float(2.0));
    }

    #[test]
    fn grouped_aggregates() {
        let out = aggregate(
            &rel(),
            &[("station".into(), Expr::col("station"))],
            &[agg("n", AggFunc::Count, "v"), agg("mx", AggFunc::Max, "v")],
        )
        .unwrap();
        assert_eq!(out.rows(), 2);
        // Groups appear in first-seen order: ISK then FIAM.
        assert_eq!(out.value(0, "station").unwrap(), Value::Text("ISK".into()));
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(3));
        assert_eq!(out.value(0, "mx").unwrap(), Value::Float(3.0));
        assert_eq!(out.value(1, "station").unwrap(), Value::Text("FIAM".into()));
        assert_eq!(out.value(1, "n").unwrap(), Value::Int(1));
    }

    #[test]
    fn min_max_on_timestamps() {
        let out = aggregate(
            &rel(),
            &[],
            &[agg("first", AggFunc::Min, "t"), agg("last", AggFunc::Max, "t")],
        )
        .unwrap();
        assert_eq!(out.value(0, "first").unwrap(), Value::Time(50));
        assert_eq!(out.value(0, "last").unwrap(), Value::Time(200));
    }

    #[test]
    fn empty_input_global_yields_no_rows() {
        let empty = rel().filter(&[false, false, false, false]);
        let out = aggregate(&empty, &[], &[agg("n", AggFunc::Count, "v")]).unwrap();
        assert_eq!(out.rows(), 0);
        assert_eq!(out.width(), 1, "schema preserved");
    }

    #[test]
    fn count_works_on_text() {
        let out = aggregate(&rel(), &[], &[agg("n", AggFunc::Count, "station")]).unwrap();
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(4));
        assert!(aggregate(&rel(), &[], &[agg("s", AggFunc::Sum, "station")]).is_err());
    }

    #[test]
    fn distinct_removes_duplicates() {
        let r = Relation::new(vec![
            ("a".into(), ColumnData::Int64(vec![1, 1, 2, 1])),
            ("b".into(), ColumnData::Text(TextColumn::from_strs(["x", "x", "y", "z"]))),
        ])
        .unwrap();
        let out = distinct(&r).unwrap();
        assert_eq!(out.rows(), 3);
    }

    #[test]
    fn grouped_by_computed_expr() {
        use crate::expr::Func;
        let r = Relation::new(vec![(
            "t".into(),
            ColumnData::Timestamp(vec![0, 1_800_000, 3_600_000, 3_700_000]),
        )])
        .unwrap();
        let out = aggregate(
            &r,
            &[("hour".into(), Expr::Call(Func::HourBucket, vec![Expr::col("t")]))],
            &[agg("n", AggFunc::Count, "t")],
        )
        .unwrap();
        assert_eq!(out.rows(), 2);
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(2));
        assert_eq!(out.value(1, "n").unwrap(), Value::Int(2));
    }
}
