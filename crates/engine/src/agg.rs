//! Hash aggregation with group-by, decomposed into **partial
//! aggregation** and **merge**.
//!
//! Supports the paper's aggregate set: COUNT, SUM, AVG, MIN, MAX and
//! STDDEV (population — what the `H.window_std_dev` summary metadata
//! stores). Every one of them is *mergeable*: a partition's rows
//! collapse into a running state (count + sum + sum-of-squares +
//! min/max), and states from different partitions combine without
//! revisiting rows. That is what lets the chunk-parallel executor
//! ([`crate::physical::PhysicalPlan::PartialAggUnion`]) aggregate each
//! chunk independently and never materialize the union.
//!
//! Determinism: [`merge_partials`] combines partitions in the order
//! given, and groups keep first-appearance order across that sequence —
//! so a merge over per-chunk partials in chunk order produces the same
//! relation no matter how many workers computed them. [`aggregate`]
//! (the serial path) is partial-aggregation over a single partition
//! followed by the same merge, so serial and parallel plans share one
//! code path and one rounding behavior.
//!
//! A global aggregate (no GROUP BY) over an empty input yields an
//! empty relation (this engine's columns carry no NULLs; the paper's
//! workload never aggregates empty inputs).

use crate::error::{EngineError, Result};
use crate::eval::eval_scalar;
use crate::expr::{AggFunc, Expr};
use crate::relation::Relation;
use sommelier_storage::index::{hash_row, rows_equal};
use sommelier_storage::{ColumnData, DataType};
use std::collections::HashMap;

/// Running state for one aggregate over one group.
#[derive(Debug, Clone)]
struct AggState {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
    min_i: i64,
    max_i: i64,
}

impl AggState {
    fn new() -> Self {
        AggState {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            min_i: i64::MAX,
            max_i: i64::MIN,
        }
    }

    fn update_f(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn update_i(&mut self, v: i64) {
        self.update_f(v as f64);
        self.min_i = self.min_i.min(v);
        self.max_i = self.max_i.max(v);
    }

    /// Fold another partition's state into this one.
    fn merge(&mut self, other: &AggState) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.min_i = self.min_i.min(other.min_i);
        self.max_i = self.max_i.max(other.max_i);
    }

    fn finish(&self, func: AggFunc, input_type: DataType) -> Result<FinishedAgg> {
        Ok(match func {
            AggFunc::Count => FinishedAgg::Int(self.count as i64),
            AggFunc::Sum => FinishedAgg::Float(self.sum),
            AggFunc::Avg => FinishedAgg::Float(self.sum / self.count as f64),
            AggFunc::StdDev => {
                let n = self.count as f64;
                let var = (self.sum_sq / n) - (self.sum / n) * (self.sum / n);
                FinishedAgg::Float(var.max(0.0).sqrt())
            }
            AggFunc::Min => match input_type {
                DataType::Float64 => FinishedAgg::Float(self.min),
                DataType::Int64 => FinishedAgg::Int(self.min_i),
                DataType::Timestamp => FinishedAgg::Time(self.min_i),
                DataType::Text => {
                    return Err(EngineError::Exec("MIN over text not supported".into()))
                }
            },
            AggFunc::Max => match input_type {
                DataType::Float64 => FinishedAgg::Float(self.max),
                DataType::Int64 => FinishedAgg::Int(self.max_i),
                DataType::Timestamp => FinishedAgg::Time(self.max_i),
                DataType::Text => {
                    return Err(EngineError::Exec("MAX over text not supported".into()))
                }
            },
        })
    }
}

enum FinishedAgg {
    Int(i64),
    Float(f64),
    Time(i64),
}

/// Result column type of `func` over an input of `input_type`.
pub fn output_type(func: AggFunc, input_type: DataType) -> DataType {
    match func {
        AggFunc::Count => DataType::Int64,
        AggFunc::Sum | AggFunc::Avg | AggFunc::StdDev => DataType::Float64,
        AggFunc::Min | AggFunc::Max => input_type,
    }
}

/// The collapsed aggregation state of one input partition (e.g. one
/// chunk of a chunk union): per-group running states plus one
/// representative key row per group, in first-seen order.
#[derive(Debug)]
pub struct PartialAgg {
    /// Group-key columns, one row per group.
    keys: Vec<ColumnData>,
    /// `states[group][agg]`.
    states: Vec<Vec<AggState>>,
    /// Input types of the aggregate arguments (recorded even for empty
    /// partitions, so the merge can type its output).
    arg_types: Vec<DataType>,
}

impl PartialAgg {
    /// Number of groups discovered in this partition.
    pub fn groups(&self) -> usize {
        self.states.len()
    }
}

/// Collapse one partition into per-group aggregate states.
pub fn partial_aggregate(
    input: &Relation,
    group_by: &[(String, Expr)],
    aggs: &[(String, AggFunc, Expr)],
) -> Result<PartialAgg> {
    // Evaluate grouping keys and aggregate arguments once, vectorized.
    let key_cols: Vec<ColumnData> =
        group_by.iter().map(|(_, e)| eval_scalar(e, input)).collect::<Result<_>>()?;
    let arg_cols: Vec<ColumnData> =
        aggs.iter().map(|(_, _, e)| eval_scalar(e, input)).collect::<Result<_>>()?;
    let key_refs: Vec<&ColumnData> = key_cols.iter().collect();

    // Group discovery: representative row per group.
    let rows = input.rows();
    let mut groups: HashMap<u64, Vec<u32>> = HashMap::new(); // hash -> group ids
    let mut group_of = Vec::with_capacity(rows);
    let mut reps: Vec<u32> = Vec::new();
    if group_by.is_empty() {
        // One global group, if any rows exist.
        group_of = vec![0usize; rows];
        if rows > 0 {
            reps.push(0);
        }
    } else {
        for r in 0..rows {
            let h = hash_row(&key_refs, r);
            let bucket = groups.entry(h).or_default();
            let gid = bucket
                .iter()
                .find(|&&rep| {
                    rows_equal(&key_refs, reps[rep as usize] as usize, &key_refs, r)
                })
                .copied();
            let gid = match gid {
                Some(g) => g as usize,
                None => {
                    let g = reps.len() as u32;
                    reps.push(r as u32);
                    bucket.push(g);
                    g as usize
                }
            };
            group_of.push(gid);
        }
    }

    // Accumulate.
    let mut states: Vec<Vec<AggState>> = vec![vec![AggState::new(); aggs.len()]; reps.len()];
    for r in 0..rows {
        let g = group_of[r];
        for (ai, col) in arg_cols.iter().enumerate() {
            let st = &mut states[g][ai];
            match col {
                ColumnData::Int64(v) | ColumnData::Timestamp(v) => st.update_i(v[r]),
                ColumnData::Float64(v) => st.update_f(v[r]),
                ColumnData::Text(_) => {
                    if aggs[ai].1 == AggFunc::Count {
                        st.count += 1;
                    } else {
                        return Err(EngineError::Exec(format!(
                            "{} over text column",
                            aggs[ai].1.name()
                        )));
                    }
                }
            }
        }
    }

    Ok(PartialAgg {
        keys: key_cols.iter().map(|c| c.take(&reps)).collect(),
        states,
        arg_types: arg_cols.iter().map(|c| c.data_type()).collect(),
    })
}

/// Merge partition states into the final aggregate relation.
///
/// Partitions combine in the order given; groups keep first-appearance
/// order across that sequence, which makes the result identical to a
/// serial aggregation over the partitions' concatenated rows (up to
/// floating-point summation order, which is likewise fixed by the
/// partition order — *not* by the number of workers that produced the
/// partials).
pub fn merge_partials(
    mut parts: Vec<PartialAgg>,
    group_by: &[(String, Expr)],
    aggs: &[(String, AggFunc, Expr)],
) -> Result<Relation> {
    if parts.is_empty() {
        return Err(EngineError::Exec("merge_partials needs at least one partition".into()));
    }
    // Single partition (the serial `aggregate` path): its groups are
    // already distinct and in first-seen order — no re-discovery.
    let (merged_keys, merged_states, arg_types) = if parts.len() == 1 {
        let p = parts.pop().expect("checked non-empty");
        (p.keys, p.states, p.arg_types)
    } else {
        merge_many(&parts, group_by)?
    };

    // Assemble output: group-key columns then finished aggregates.
    let mut out_cols: Vec<(String, ColumnData)> = Vec::new();
    for ((name, _), col) in group_by.iter().zip(merged_keys) {
        out_cols.push((name.clone(), col));
    }
    for (ai, (name, func, _)) in aggs.iter().enumerate() {
        let in_type = arg_types[ai];
        let mut ints = Vec::new();
        let mut floats = Vec::new();
        let out_type = output_type(*func, in_type);
        for row in &merged_states {
            match row[ai].finish(*func, in_type)? {
                FinishedAgg::Int(v) | FinishedAgg::Time(v) => ints.push(v),
                FinishedAgg::Float(v) => floats.push(v),
            }
        }
        let col = match out_type {
            DataType::Int64 => ColumnData::Int64(ints),
            DataType::Timestamp => ColumnData::Timestamp(ints),
            DataType::Float64 => ColumnData::Float64(floats),
            DataType::Text => unreachable!("rejected above"),
        };
        out_cols.push((name.clone(), col));
    }
    Relation::new(out_cols)
}

/// Cross-partition group merge (two or more partitions): discover the
/// global group set over the partitions' representative key rows and
/// fold states, both in partition order.
#[allow(clippy::type_complexity)]
fn merge_many(
    parts: &[PartialAgg],
    group_by: &[(String, Expr)],
) -> Result<(Vec<ColumnData>, Vec<Vec<AggState>>, Vec<DataType>)> {
    let first = &parts[0];
    let arg_types = first.arg_types.clone();
    let mut merged_keys: Vec<ColumnData> =
        first.keys.iter().map(|c| ColumnData::empty(c.data_type())).collect();
    let mut merged_states: Vec<Vec<AggState>> = Vec::new();
    let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();

    for part in parts {
        let part_refs: Vec<&ColumnData> = part.keys.iter().collect();
        for g in 0..part.states.len() {
            let gid = if group_by.is_empty() {
                if merged_states.is_empty() {
                    None
                } else {
                    Some(0)
                }
            } else {
                let h = hash_row(&part_refs, g);
                let merged_refs: Vec<&ColumnData> = merged_keys.iter().collect();
                buckets
                    .entry(h)
                    .or_default()
                    .iter()
                    .copied()
                    .find(|&cand| rows_equal(&merged_refs, cand as usize, &part_refs, g))
            };
            match gid {
                Some(gid) => {
                    for (acc, st) in
                        merged_states[gid as usize].iter_mut().zip(&part.states[g])
                    {
                        acc.merge(st);
                    }
                }
                None => {
                    let gid = merged_states.len() as u32;
                    if !group_by.is_empty() {
                        let h = hash_row(&part_refs, g);
                        buckets.entry(h).or_default().push(gid);
                        for (mk, pk) in merged_keys.iter_mut().zip(&part.keys) {
                            mk.push(&pk.get(g)).map_err(EngineError::Storage)?;
                        }
                    }
                    // Adopt the first partition's state verbatim so the
                    // merge is bit-identical to continuing it.
                    merged_states.push(part.states[g].clone());
                }
            }
        }
    }
    Ok((merged_keys, merged_states, arg_types))
}

/// Execute a hash aggregation (single partition: partial + merge).
pub fn aggregate(
    input: &Relation,
    group_by: &[(String, Expr)],
    aggs: &[(String, AggFunc, Expr)],
) -> Result<Relation> {
    let part = partial_aggregate(input, group_by, aggs)?;
    merge_partials(vec![part], group_by, aggs)
}

/// Duplicate elimination = group by all columns, no aggregates.
pub fn distinct(input: &Relation) -> Result<Relation> {
    let group_by: Vec<(String, Expr)> =
        input.names().iter().map(|n| (n.to_string(), Expr::col(*n))).collect();
    aggregate(input, &group_by, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_storage::column::TextColumn;
    use sommelier_storage::Value;

    fn rel() -> Relation {
        Relation::new(vec![
            (
                "station".into(),
                ColumnData::Text(TextColumn::from_strs(["ISK", "FIAM", "ISK", "ISK"])),
            ),
            ("v".into(), ColumnData::Float64(vec![1.0, 10.0, 3.0, 2.0])),
            ("t".into(), ColumnData::Timestamp(vec![100, 200, 50, 75])),
        ])
        .unwrap()
    }

    fn agg(name: &str, f: AggFunc, col: &str) -> (String, AggFunc, Expr) {
        (name.into(), f, Expr::col(col))
    }

    #[test]
    fn global_aggregates() {
        let out = aggregate(
            &rel(),
            &[],
            &[
                agg("n", AggFunc::Count, "v"),
                agg("s", AggFunc::Sum, "v"),
                agg("a", AggFunc::Avg, "v"),
                agg("mn", AggFunc::Min, "v"),
                agg("mx", AggFunc::Max, "v"),
            ],
        )
        .unwrap();
        assert_eq!(out.rows(), 1);
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(4));
        assert_eq!(out.value(0, "s").unwrap(), Value::Float(16.0));
        assert_eq!(out.value(0, "a").unwrap(), Value::Float(4.0));
        assert_eq!(out.value(0, "mn").unwrap(), Value::Float(1.0));
        assert_eq!(out.value(0, "mx").unwrap(), Value::Float(10.0));
    }

    #[test]
    fn stddev_population() {
        let r = Relation::new(vec![(
            "v".into(),
            ColumnData::Float64(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]),
        )])
        .unwrap();
        let out = aggregate(&r, &[], &[agg("sd", AggFunc::StdDev, "v")]).unwrap();
        // Classic example: population stddev = 2.
        assert_eq!(out.value(0, "sd").unwrap(), Value::Float(2.0));
    }

    #[test]
    fn grouped_aggregates() {
        let out = aggregate(
            &rel(),
            &[("station".into(), Expr::col("station"))],
            &[agg("n", AggFunc::Count, "v"), agg("mx", AggFunc::Max, "v")],
        )
        .unwrap();
        assert_eq!(out.rows(), 2);
        // Groups appear in first-seen order: ISK then FIAM.
        assert_eq!(out.value(0, "station").unwrap(), Value::Text("ISK".into()));
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(3));
        assert_eq!(out.value(0, "mx").unwrap(), Value::Float(3.0));
        assert_eq!(out.value(1, "station").unwrap(), Value::Text("FIAM".into()));
        assert_eq!(out.value(1, "n").unwrap(), Value::Int(1));
    }

    #[test]
    fn min_max_on_timestamps() {
        let out = aggregate(
            &rel(),
            &[],
            &[agg("first", AggFunc::Min, "t"), agg("last", AggFunc::Max, "t")],
        )
        .unwrap();
        assert_eq!(out.value(0, "first").unwrap(), Value::Time(50));
        assert_eq!(out.value(0, "last").unwrap(), Value::Time(200));
    }

    #[test]
    fn empty_input_global_yields_no_rows() {
        let empty = rel().filter(&[false, false, false, false]);
        let out = aggregate(&empty, &[], &[agg("n", AggFunc::Count, "v")]).unwrap();
        assert_eq!(out.rows(), 0);
        assert_eq!(out.width(), 1, "schema preserved");
    }

    #[test]
    fn count_works_on_text() {
        let out = aggregate(&rel(), &[], &[agg("n", AggFunc::Count, "station")]).unwrap();
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(4));
        assert!(aggregate(&rel(), &[], &[agg("s", AggFunc::Sum, "station")]).is_err());
    }

    #[test]
    fn distinct_removes_duplicates() {
        let r = Relation::new(vec![
            ("a".into(), ColumnData::Int64(vec![1, 1, 2, 1])),
            ("b".into(), ColumnData::Text(TextColumn::from_strs(["x", "x", "y", "z"]))),
        ])
        .unwrap();
        let out = distinct(&r).unwrap();
        assert_eq!(out.rows(), 3);
    }

    #[test]
    fn grouped_by_computed_expr() {
        use crate::expr::Func;
        let r = Relation::new(vec![(
            "t".into(),
            ColumnData::Timestamp(vec![0, 1_800_000, 3_600_000, 3_700_000]),
        )])
        .unwrap();
        let out = aggregate(
            &r,
            &[("hour".into(), Expr::Call(Func::HourBucket, vec![Expr::col("t")]))],
            &[agg("n", AggFunc::Count, "t")],
        )
        .unwrap();
        assert_eq!(out.rows(), 2);
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(2));
        assert_eq!(out.value(1, "n").unwrap(), Value::Int(2));
    }

    /// Partition a relation by row ranges and check the merged partials
    /// equal the one-shot aggregation, bit for bit.
    #[test]
    fn partial_merge_matches_serial() {
        let r = Relation::new(vec![
            (
                "k".into(),
                ColumnData::Text(TextColumn::from_strs(["a", "b", "a", "c", "b", "a"])),
            ),
            ("v".into(), ColumnData::Float64(vec![0.1, 2.5, -3.0, 4.25, 5.5, 6.125])),
        ])
        .unwrap();
        let group_by = vec![("k".to_string(), Expr::col("k"))];
        let aggs = vec![
            agg("n", AggFunc::Count, "v"),
            agg("s", AggFunc::Sum, "v"),
            agg("a", AggFunc::Avg, "v"),
            agg("sd", AggFunc::StdDev, "v"),
            agg("mn", AggFunc::Min, "v"),
            agg("mx", AggFunc::Max, "v"),
        ];
        let serial = aggregate(&r, &group_by, &aggs).unwrap();
        // Split as [0,1], [2,3,4], [5] — chunk-order merge.
        let parts = vec![
            partial_aggregate(&r.take(&[0, 1]), &group_by, &aggs).unwrap(),
            partial_aggregate(&r.take(&[2, 3, 4]), &group_by, &aggs).unwrap(),
            partial_aggregate(&r.take(&[5]), &group_by, &aggs).unwrap(),
        ];
        let merged = merge_partials(parts, &group_by, &aggs).unwrap();
        assert_eq!(serial.rows(), merged.rows());
        assert_eq!(serial.names(), merged.names());
        for row in 0..serial.rows() {
            for name in serial.names() {
                let a = serial.value(row, name).unwrap();
                let b = merged.value(row, name).unwrap();
                match (&a, &b) {
                    (Value::Float(x), Value::Float(y)) => {
                        // Same partition boundaries → same summation
                        // order → identical bits for COUNT/MIN/MAX and
                        // ulp-close sums.
                        assert!((x - y).abs() < 1e-12, "{name}: {x} vs {y}")
                    }
                    _ => assert_eq!(a, b, "{name}"),
                }
            }
        }
    }

    /// Merging the same partials in the same order must be invariant to
    /// how they were produced (the worker-count independence the
    /// chunk-parallel executor relies on).
    #[test]
    fn merge_is_deterministic_in_partition_order() {
        let r = Relation::new(vec![
            ("k".into(), ColumnData::Int64(vec![1, 2, 1, 3])),
            ("v".into(), ColumnData::Float64(vec![0.3, 0.7, 0.11, 0.19])),
        ])
        .unwrap();
        let group_by = vec![("k".to_string(), Expr::col("k"))];
        let aggs = vec![agg("s", AggFunc::Sum, "v"), agg("a", AggFunc::Avg, "v")];
        let mk = |idx: &[u32]| partial_aggregate(&r.take(idx), &group_by, &aggs).unwrap();
        let once = merge_partials(vec![mk(&[0, 1]), mk(&[2, 3])], &group_by, &aggs).unwrap();
        let twice = merge_partials(vec![mk(&[0, 1]), mk(&[2, 3])], &group_by, &aggs).unwrap();
        for row in 0..once.rows() {
            for name in once.names() {
                let (a, b) =
                    (once.value(row, name).unwrap(), twice.value(row, name).unwrap());
                match (a, b) {
                    (Value::Float(x), Value::Float(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits())
                    }
                    (a, b) => assert_eq!(a, b),
                }
            }
        }
        // Zero-group and empty partitions merge away.
        let empty = mk(&[]);
        assert_eq!(empty.groups(), 0);
        let merged = merge_partials(vec![empty, mk(&[0])], &group_by, &aggs).unwrap();
        assert_eq!(merged.rows(), 1);
    }
}
