//! The shared morsel scheduler: one persistent worker pool serving
//! every in-flight query.
//!
//! Before this module the engine spawned a fresh scoped thread pool for
//! every morsel-parallel operator ([`crate::exec::run_indexed_obs`]),
//! which is fine for one query at a time but oversubscribes the machine
//! as soon as N callers run concurrently: N queries × `max_threads`
//! live threads, no fairness, no queueing. A [`MorselScheduler`] owns
//! exactly `max_threads` long-lived workers and interleaves the
//! per-chunk pipelines ("morsels") of many queries: each
//! [`MorselScheduler::run_batch`] call enqueues an indexed batch of
//! tasks, workers pick the best runnable batch (highest
//! [`Priority`] first, FIFO within a priority), and the submitting
//! thread blocks until its batch drains. Total live worker threads stay
//! bounded by the pool size no matter how many queries are in flight.
//!
//! Also here: [`CancelToken`] (cooperative cancellation/timeout checked
//! at chunk-pipeline boundaries) and [`SchedPolicy`] (the bundle of
//! scheduling knobs — mode, thread cap, shared pool, priority, cancel
//! token — that threads through the two-stage driver and residency
//! layers).

use crate::error::{EngineError, Result};
use crate::obs::{self, metrics::COUNT_BUCKETS, Obs};
use crate::twostage::ParallelMode;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Priority

/// Per-session / per-query scheduling priority. Workers always prefer
/// morsels of higher-priority batches; within a priority, batches drain
/// in submission order (FIFO), which is what keeps tail latency flat
/// under load.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work: scheduled only when nothing better is runnable.
    Low,
    /// The default for interactive queries.
    #[default]
    Normal,
    /// Latency-sensitive work: jumps the morsel queue.
    High,
}

impl Priority {
    /// Numeric rank used by the aging boost (Low = 0 … High = 2).
    fn rank(self) -> u64 {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }
}

// ---------------------------------------------------------------------
// MorselPanic

/// The payload [`MorselScheduler::run_batch`] re-raises on the
/// submitting thread when one of the batch's tasks panicked on a pool
/// worker. Carrying the original panic message (instead of a generic
/// string) lets the query layer convert the unwind into a typed
/// per-query error without losing the cause.
#[derive(Debug, Clone)]
pub struct MorselPanic(pub String);

/// Stringify a caught panic payload: unwraps [`MorselPanic`], `&str`
/// and `String` payloads; anything else becomes a placeholder.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(mp) = payload.downcast_ref::<MorselPanic>() {
        mp.0.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

// ---------------------------------------------------------------------
// DegradationPolicy

/// What a query does when a chunk cannot be read at all (permanent
/// decode failure, or a transient one that exhausted its retry
/// budget).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DegradationPolicy {
    /// Fail the query with a typed [`EngineError::ChunkLoad`] naming
    /// the chunk. The default: correctness over availability.
    #[default]
    Strict,
    /// Complete the query over the readable chunks and report the
    /// skipped ones (`QueryOutcome::degraded`). Availability over
    /// completeness — the answer is a correct subset.
    SkipUnreadable,
}

// ---------------------------------------------------------------------
// CancelToken

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Mutex<Option<Instant>>,
}

/// Cooperative cancellation handle, cloned into every layer that runs
/// work for one query. `cancel()` flips a flag; an optional deadline
/// turns the same flag into a timeout. The engine checks the token at
/// chunk-pipeline boundaries (never mid-decode), so cancellation is
/// prompt but always leaves chunk pin accounting balanced.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// A fresh token, not cancelled, with no deadline.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that reports a timeout once `timeout` elapses from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        let t = Self::new();
        t.set_deadline(Instant::now() + timeout);
        t
    }

    /// Install (or overwrite) the absolute deadline.
    pub fn set_deadline(&self, deadline: Instant) {
        *self.inner.deadline.lock().unwrap_or_else(|e| e.into_inner()) = Some(deadline);
    }

    /// The absolute deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        *self.inner.deadline.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Request cancellation. Idempotent; already-running morsels finish,
    /// everything after the next checkpoint is skipped.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// `Some(timed_out)` if the query should stop: `Some(false)` for an
    /// explicit cancel, `Some(true)` for a blown deadline.
    pub fn cancelled(&self) -> Option<bool> {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return Some(false);
        }
        match self.deadline() {
            Some(d) if Instant::now() >= d => Some(true),
            _ => None,
        }
    }

    /// Checkpoint: `Err(EngineError::Cancelled { .. })` once the token
    /// has fired.
    pub fn check(&self) -> Result<()> {
        match self.cancelled() {
            Some(timed_out) => Err(EngineError::Cancelled { timed_out }),
            None => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------
// SchedPolicy

/// Everything a morsel-parallel operator needs to know about *how* to
/// run: the legacy knobs (mode + thread cap) plus the shared scheduler,
/// priority, and cancellation token. Residency providers
/// ([`crate::twostage::ChunkResidency`]) take this instead of a bare
/// `(ParallelMode, usize)` pair so chunk acquisition waves land on the
/// shared pool too.
#[derive(Clone, Default)]
pub struct SchedPolicy {
    /// Morsel claiming mode (static strides vs shared-queue exchange).
    pub parallel: ParallelMode,
    /// Worker cap when no shared scheduler is attached (1 = serial);
    /// with a scheduler it caps how many pool workers may service one
    /// batch concurrently.
    pub max_threads: usize,
    /// The shared pool, if the system runs one. `None` falls back to
    /// per-batch scoped threads (the pre-server behavior).
    pub scheduler: Option<Arc<MorselScheduler>>,
    /// Scheduling priority for batches submitted under this policy.
    pub priority: Priority,
    /// Cooperative cancellation for the owning query.
    pub cancel: Option<CancelToken>,
    /// What to do with chunks that cannot be read (see
    /// [`DegradationPolicy`]).
    pub degradation: DegradationPolicy,
    /// The owning query's span collector, when spans are on — lets a
    /// residency provider parent its load-time spans (e.g. IO retries)
    /// under the query's load span.
    pub tracer: Option<Arc<crate::obs::span::TraceCollector>>,
}

impl SchedPolicy {
    /// A legacy policy: no shared pool, no cancellation.
    pub fn new(parallel: ParallelMode, max_threads: usize) -> Self {
        SchedPolicy { parallel, max_threads: max_threads.max(1), ..Default::default() }
    }

    /// Strictly serial execution on the caller's thread.
    pub fn serial() -> Self {
        Self::new(ParallelMode::Static, 1)
    }

    /// Attach a shared scheduler (builder-style).
    pub fn with_scheduler(mut self, scheduler: Option<Arc<MorselScheduler>>) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Cancellation checkpoint; `Ok(())` when no token is attached.
    pub fn check_cancel(&self) -> Result<()> {
        match &self.cancel {
            Some(c) => c.check(),
            None => Ok(()),
        }
    }
}

impl std::fmt::Debug for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedPolicy")
            .field("parallel", &self.parallel)
            .field("max_threads", &self.max_threads)
            .field("shared", &self.scheduler.is_some())
            .field("priority", &self.priority)
            .field("cancellable", &self.cancel.is_some())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Scheduler internals

thread_local! {
    static IS_SCHED_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True on a shared-pool worker thread. Nested morsel batches (e.g. a
/// decode fan-out issued from inside a chunk pipeline) must run inline
/// on the worker instead of re-entering the queue, or a pool whose
/// every worker waits on nested batches would deadlock.
pub fn on_scheduler_worker() -> bool {
    IS_SCHED_WORKER.with(|f| f.get())
}

/// One submitted batch: `n` indexed tasks behind a lifetime-erased
/// function pointer. Soundness: `ctx` points into the submitting
/// thread's stack; the submitter blocks in [`MorselScheduler::run_batch`]
/// until all `n` tasks have completed (or been drained after a panic),
/// so workers never dereference `ctx` after the frame is gone.
struct BatchCore {
    run: unsafe fn(*const (), usize),
    ctx: *const (),
    n: usize,
    /// Max pool workers servicing this batch at once.
    cap: usize,
    priority: Priority,
    /// Submission order; FIFO tiebreak within a priority.
    seq: u64,
    /// When the batch entered the queue — drives the aging boost.
    enqueued: Instant,
    next: AtomicUsize,
    active: AtomicUsize,
    done: AtomicUsize,
    panicked: AtomicBool,
    /// First caught panic payload of this batch, re-raised to the
    /// submitter as a [`MorselPanic`].
    panic_msg: Mutex<Option<String>>,
    busy_ns: AtomicU64,
    finished: Mutex<bool>,
    finished_cv: Condvar,
}

impl BatchCore {
    /// Scheduling score under aging: the base priority rank, boosted by
    /// one rank per `aging` waited in the queue (saturating at High).
    /// `aging == 0` disables the boost — strict priority order.
    fn score(&self, aging: Duration) -> u64 {
        let base = self.priority.rank();
        if aging.is_zero() {
            return base;
        }
        let boost = (self.enqueued.elapsed().as_nanos() / aging.as_nanos().max(1)) as u64;
        base.saturating_add(boost).min(Priority::High.rank())
    }
}

// Safety: `ctx`/`run` describe a `Sync` closure + result slots that the
// submitter keeps alive until the batch fully drains (see above).
unsafe impl Send for BatchCore {}
unsafe impl Sync for BatchCore {}

#[derive(Default)]
struct SchedCounters {
    batches: AtomicU64,
    tasks: AtomicU64,
    busy_ns: AtomicU64,
    panics: AtomicU64,
}

struct SchedShared {
    queue: Mutex<Vec<Arc<BatchCore>>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    /// Queue wait that buys one priority rank (see [`BatchCore::score`]).
    aging: Duration,
    counters: SchedCounters,
}

/// Point-in-time scheduler statistics, mirrored into
/// `metrics_snapshot()` as the `sched.*` family.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedStats {
    /// Pool size (== the system's `max_threads`).
    pub workers: usize,
    /// Batches submitted over the scheduler's lifetime.
    pub batches: u64,
    /// Tasks (morsels) submitted over the scheduler's lifetime.
    pub tasks: u64,
    /// Total ns workers spent running tasks.
    pub busy_ns: u64,
    /// Batches currently queued or draining.
    pub queue_depth: usize,
    /// Morsel tasks that panicked (caught; each fails only its own
    /// batch). Mirrored into `metrics_snapshot()` as `sched.panics`.
    pub panics: u64,
}

/// The shared worker pool. See the module docs for the model; the
/// important invariants are:
///
/// - exactly `worker_count()` threads exist, created once and joined on
///   drop — query concurrency never changes the thread count;
/// - workers pick the runnable batch with the highest priority, then
///   the lowest submission seq, honoring each batch's worker cap;
/// - a panicking task poisons only its own batch: remaining morsels are
///   drained without running and the submitter re-panics.
pub struct MorselScheduler {
    shared: Arc<SchedShared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    workers: usize,
    next_seq: AtomicU64,
}

/// Default queue wait that promotes a batch by one priority rank.
/// Bounds starvation: a `Low` batch outranks freshly queued `High`
/// work after at most `2 * DEFAULT_AGING` in the queue.
pub const DEFAULT_AGING: Duration = Duration::from_millis(100);

impl MorselScheduler {
    /// Spawn a pool of `workers` (min 1) persistent threads with the
    /// default aging quantum ([`DEFAULT_AGING`]).
    pub fn new(workers: usize) -> Self {
        Self::with_aging(workers, DEFAULT_AGING)
    }

    /// Spawn a pool whose queued batches gain one priority rank per
    /// `aging` waited (zero disables aging — strict priority order,
    /// the pre-aging behavior, under which a saturating `High` tenant
    /// starves `Low` forever).
    pub fn with_aging(workers: usize, aging: Duration) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(SchedShared {
            queue: Mutex::new(Vec::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            aging,
            counters: SchedCounters::default(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("morsel-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn morsel worker")
            })
            .collect();
        MorselScheduler {
            shared,
            handles: Mutex::new(handles),
            workers,
            next_seq: AtomicU64::new(0),
        }
    }

    /// Pool size. The bound on live worker threads, independent of how
    /// many queries are in flight.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Lifetime counters + current queue depth.
    pub fn stats(&self) -> SchedStats {
        let c = &self.shared.counters;
        SchedStats {
            workers: self.workers,
            batches: c.batches.load(Ordering::Relaxed),
            tasks: c.tasks.load(Ordering::Relaxed),
            busy_ns: c.busy_ns.load(Ordering::Relaxed),
            queue_depth: lock(&self.shared.queue).len(),
            panics: c.panics.load(Ordering::Relaxed),
        }
    }

    /// Count one caught morsel panic. The worker loop calls this for
    /// panics that unwound a pool task; layers that convert a panic to
    /// a typed error *before* it reaches the pool (the cellar's decode
    /// seam) call it so `sched.panics` counts every isolated panic.
    pub fn note_panic(&self) {
        self.shared.counters.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// True once [`MorselScheduler::shutdown`] ran: the worker pool is
    /// joined and new batches execute inline on their submitter.
    pub fn is_shut_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Join the worker pool. Called by `Server::shutdown` (and by
    /// drop). Idempotent. Batches already queued are drained inline so
    /// their submitters always wake; batches submitted *after* shutdown
    /// run inline on the submitting thread — a shut-down scheduler
    /// still serves queries, just without parallelism.
    pub fn shutdown(&self) {
        {
            // Flag and enqueue are ordered by the queue lock: any batch
            // enqueued before the flip is visible to the drain below;
            // any submitter that sees the flag runs inline instead.
            let _q = lock(&self.shared.queue);
            self.shared.shutdown.store(true, Ordering::Release);
        }
        self.shared.work_cv.notify_all();
        for h in lock(&self.handles).drain(..) {
            let _ = h.join();
        }
        // Workers may have exited without touching late batches; claim
        // and run their remaining tasks here (tasks already claimed by
        // a worker completed before it exited).
        loop {
            let batch = lock(&self.shared.queue).pop();
            match batch {
                Some(b) => drain_batch(&self.shared, &b),
                None => break,
            }
        }
    }

    /// Run `task(0..n)` on the pool and collect the results in index
    /// order, blocking until the batch drains. At most `cap` workers
    /// service the batch concurrently. Feeds the same `pool.*` metrics
    /// as the legacy scoped pool so dashboards keep working.
    pub fn run_batch<T, F>(
        &self,
        n: usize,
        cap: usize,
        priority: Priority,
        obs: &Obs,
        task: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let wall = obs.metrics().map(|_| Instant::now());
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

        struct Erased<'e, T, F> {
            task: &'e F,
            slots: &'e [Mutex<Option<T>>],
        }
        // Safety contract: `p` is the `Erased` for this batch and `i < n`.
        unsafe fn call<T, F: Fn(usize) -> T>(p: *const (), i: usize) {
            let e = unsafe { &*(p as *const Erased<'_, T, F>) };
            let v = (e.task)(i);
            *e.slots[i].lock().unwrap_or_else(|x| x.into_inner()) = Some(v);
        }

        let erased = Erased { task: &task, slots: &slots };
        let core = Arc::new(BatchCore {
            run: call::<T, F>,
            ctx: &erased as *const Erased<'_, T, F> as *const (),
            n,
            cap: cap.max(1),
            priority,
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            enqueued: Instant::now(),
            next: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic_msg: Mutex::new(None),
            busy_ns: AtomicU64::new(0),
            finished: Mutex::new(false),
            finished_cv: Condvar::new(),
        });
        self.shared.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.shared.counters.tasks.fetch_add(n as u64, Ordering::Relaxed);
        let inline = {
            let mut q = lock(&self.shared.queue);
            if self.shared.shutdown.load(Ordering::Acquire) {
                // Shut-down pool: no workers left; run on the submitter.
                true
            } else {
                q.push(Arc::clone(&core));
                false
            }
        };
        if inline {
            drain_batch(&self.shared, &core);
        } else {
            self.shared.work_cv.notify_all();
        }

        // Block until every task has been claimed AND finished. This is
        // what makes the lifetime erasure sound. (A batch queued
        // concurrently with shutdown is drained inline by `shutdown`,
        // so this wait always terminates.)
        {
            let mut fin = lock(&core.finished);
            while !*fin {
                fin = core.finished_cv.wait(fin).unwrap_or_else(|e| e.into_inner());
            }
        }

        if let (Some(m), Some(wall)) = (obs.metrics(), wall) {
            let busy = core.busy_ns.load(Ordering::Relaxed);
            let span = wall.elapsed().as_nanos() as u64 * cap.max(1) as u64;
            m.counter("pool.batches").inc();
            m.counter("pool.tasks").add(n as u64);
            m.counter("pool.busy_ns").add(busy);
            m.counter("pool.idle_ns").add(span.saturating_sub(busy));
            m.histogram("pool.queue_depth", &COUNT_BUCKETS).observe(n as u64);
        }
        if core.panicked.load(Ordering::Acquire) {
            let msg = lock(&core.panic_msg)
                .take()
                .unwrap_or_else(|| "a morsel task panicked on the shared scheduler".into());
            std::panic::panic_any(MorselPanic(msg));
        }
        slots
            .into_iter()
            .map(|s| {
                s.into_inner().unwrap_or_else(|e| e.into_inner()).expect("every morsel ran")
            })
            .collect()
    }
}

impl Drop for MorselScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for MorselScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MorselScheduler").field("workers", &self.workers).finish()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run one claimed task: catch a panic (recording its payload and the
/// pool-wide panic counter), charge busy time, and signal the batch's
/// submitter when the last task completes. Shared by the worker loop
/// and the inline drain paths.
fn run_one(shared: &SchedShared, batch: &BatchCore, i: usize) {
    let t0 = Instant::now();
    if !batch.panicked.load(Ordering::Acquire) {
        let r = catch_unwind(AssertUnwindSafe(|| unsafe { (batch.run)(batch.ctx, i) }));
        if let Err(payload) = r {
            {
                let mut msg = lock(&batch.panic_msg);
                if msg.is_none() {
                    *msg = Some(panic_message(payload.as_ref()));
                }
            }
            batch.panicked.store(true, Ordering::Release);
            shared.counters.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
    let dt = t0.elapsed().as_nanos() as u64;
    batch.busy_ns.fetch_add(dt, Ordering::Relaxed);
    shared.counters.busy_ns.fetch_add(dt, Ordering::Relaxed);
    let finished = batch.done.fetch_add(1, Ordering::Relaxed) + 1 == batch.n;
    if finished {
        let mut fin = lock(&batch.finished);
        *fin = true;
        drop(fin);
        batch.finished_cv.notify_all();
    }
}

/// Claim and run every remaining task of `batch` on the calling thread
/// (the shutdown / post-shutdown inline path).
fn drain_batch(shared: &SchedShared, batch: &BatchCore) {
    loop {
        let i = batch.next.fetch_add(1, Ordering::Relaxed);
        if i >= batch.n {
            return;
        }
        run_one(shared, batch, i);
    }
}

fn worker_loop(shared: &SchedShared, w: usize) {
    IS_SCHED_WORKER.with(|f| f.set(true));
    let _tag = obs::worker_scope(w);
    loop {
        // Claim one morsel from the best runnable batch.
        let claimed = {
            let mut q = lock(&shared.queue);
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Drop fully-claimed batches (their stragglers finish
                // outside the queue).
                q.retain(|b| b.next.load(Ordering::Relaxed) < b.n);
                // Priority with aging (queue wait buys ranks, so a
                // saturating High tenant cannot starve Low forever),
                // FIFO within a score.
                let best = q
                    .iter()
                    .filter(|b| b.active.load(Ordering::Relaxed) < b.cap)
                    .max_by_key(|b| (b.score(shared.aging), std::cmp::Reverse(b.seq)))
                    .cloned();
                match best {
                    Some(b) => {
                        let i = b.next.fetch_add(1, Ordering::Relaxed);
                        if i >= b.n {
                            continue; // raced to exhaustion; re-evaluate
                        }
                        b.active.fetch_add(1, Ordering::Relaxed);
                        break (b, i);
                    }
                    None => {
                        // Bounded wait: an aging batch can become the
                        // best choice without any new work arriving.
                        let (g, _) = shared
                            .work_cv
                            .wait_timeout(q, Duration::from_millis(5))
                            .unwrap_or_else(|e| e.into_inner());
                        q = g;
                    }
                }
            }
        };
        let (batch, i) = claimed;
        run_one(shared, &batch, i);
        batch.active.fetch_sub(1, Ordering::Relaxed);
        if batch.done.load(Ordering::Relaxed) < batch.n
            && batch.next.load(Ordering::Relaxed) < batch.n
        {
            // A cap slot freed up with morsels still unclaimed.
            shared.work_cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn batch_returns_results_in_index_order() {
        let s = MorselScheduler::new(4);
        let out = s.run_batch(64, 4, Priority::Normal, &Obs::off(), |i| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
        let st = s.stats();
        assert_eq!(st.workers, 4);
        assert_eq!(st.batches, 1);
        assert_eq!(st.tasks, 64);
    }

    #[test]
    fn many_submitters_share_one_pool() {
        let s = Arc::new(MorselScheduler::new(3));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    let out = s.run_batch(16, 3, Priority::Normal, &Obs::off(), |i| i + 1);
                    assert_eq!(out.iter().sum::<usize>(), (1..=16).sum());
                });
            }
        });
        assert_eq!(s.stats().batches, 8);
        assert_eq!(s.stats().tasks, 8 * 16);
    }

    #[test]
    fn cap_limits_concurrent_workers_per_batch() {
        let s = MorselScheduler::new(4);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        s.run_batch(32, 2, Priority::Normal, &Obs::off(), |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(1));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "cap exceeded: {peak:?}");
    }

    #[test]
    fn high_priority_batch_overtakes_queued_normal_work() {
        // One worker, saturated by a slow batch; a Normal and then a
        // High batch queue behind it. High must start (and finish)
        // before Normal.
        let s = Arc::new(MorselScheduler::new(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    s.run_batch(1, 1, Priority::Normal, &Obs::off(), |_| {
                        std::thread::sleep(Duration::from_millis(60))
                    });
                });
            }
            std::thread::sleep(Duration::from_millis(15));
            {
                let (s, order) = (Arc::clone(&s), Arc::clone(&order));
                scope.spawn(move || {
                    s.run_batch(1, 1, Priority::Normal, &Obs::off(), |_| {
                        lock(&order).push("normal")
                    });
                });
            }
            std::thread::sleep(Duration::from_millis(15));
            {
                let (s, order) = (Arc::clone(&s), Arc::clone(&order));
                scope.spawn(move || {
                    s.run_batch(1, 1, Priority::High, &Obs::off(), |_| {
                        lock(&order).push("high")
                    });
                });
            }
        });
        assert_eq!(*lock(&order), vec!["high", "normal"]);
    }

    #[test]
    fn panicking_task_propagates_to_the_submitter_only() {
        let s = Arc::new(MorselScheduler::new(2));
        let r = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let s = Arc::clone(&s);
                    catch_unwind(AssertUnwindSafe(move || {
                        s.run_batch(8, 2, Priority::Normal, &Obs::off(), |i| {
                            if i == 3 {
                                panic!("boom")
                            }
                            i
                        })
                    }))
                })
                .join()
                .unwrap()
        });
        assert!(r.is_err());
        // Pool still serves later batches.
        let out = s.run_batch(4, 2, Priority::Normal, &Obs::off(), |i| i);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cancel_token_reports_explicit_and_deadline_cancellation() {
        let t = CancelToken::new();
        assert!(t.check().is_ok());
        t.cancel();
        assert_eq!(t.cancelled(), Some(false));
        assert!(matches!(t.check(), Err(EngineError::Cancelled { timed_out: false })));

        let t = CancelToken::with_timeout(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(t.cancelled(), Some(true));
        assert!(matches!(t.check(), Err(EngineError::Cancelled { timed_out: true })));
    }

    #[test]
    fn priority_orders_low_normal_high() {
        assert!(Priority::Low < Priority::Normal && Priority::Normal < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn panic_payload_is_typed_and_counted() {
        let s = MorselScheduler::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            s.run_batch(8, 2, Priority::Normal, &Obs::off(), |i| {
                if i == 3 {
                    panic!("boom at morsel {i}")
                }
                i
            })
        }));
        let payload = r.expect_err("batch must re-raise the panic");
        let msg = panic_message(payload.as_ref());
        assert!(msg.contains("boom at morsel 3"), "{msg}");
        assert_eq!(s.stats().panics, 1);
    }

    #[test]
    fn aging_lets_low_finish_under_saturating_high_tenant() {
        // One worker with fast aging: a queued Low batch must run even
        // while a stream of High batches keeps arriving.
        let s = Arc::new(MorselScheduler::with_aging(1, Duration::from_millis(10)));
        let low_done = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            // Saturating High tenant: keeps one-morsel batches flowing.
            {
                let (s, low_done) = (Arc::clone(&s), Arc::clone(&low_done));
                scope.spawn(move || {
                    let deadline = Instant::now() + Duration::from_secs(5);
                    while !low_done.load(Ordering::Acquire) && Instant::now() < deadline {
                        s.run_batch(1, 1, Priority::High, &Obs::off(), |_| {
                            std::thread::sleep(Duration::from_millis(2))
                        });
                    }
                });
            }
            std::thread::sleep(Duration::from_millis(5));
            {
                let (s, low_done) = (Arc::clone(&s), Arc::clone(&low_done));
                scope.spawn(move || {
                    s.run_batch(1, 1, Priority::Low, &Obs::off(), |_| {});
                    low_done.store(true, Ordering::Release);
                });
            }
        });
        assert!(low_done.load(Ordering::Acquire), "Low starved despite aging");
    }

    #[test]
    fn without_aging_score_is_the_static_rank() {
        let core = BatchCore {
            seq: 0,
            priority: Priority::Low,
            n: 1,
            cap: 1,
            next: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic_msg: Mutex::new(None),
            busy_ns: AtomicU64::new(0),
            enqueued: Instant::now() - Duration::from_secs(60),
            finished: Mutex::new(false),
            finished_cv: Condvar::new(),
            run: |_, _| {},
            ctx: std::ptr::null(),
        };
        assert_eq!(core.score(Duration::ZERO), Priority::Low.rank());
        // With aging, a long wait saturates at High's rank, never above.
        assert_eq!(core.score(Duration::from_millis(10)), Priority::High.rank());
    }

    #[test]
    fn shutdown_is_idempotent_and_degrades_to_inline() {
        let s = MorselScheduler::new(2);
        assert!(!s.is_shut_down());
        s.shutdown();
        assert!(s.is_shut_down());
        s.shutdown(); // second call is a no-op
                      // Post-shutdown batches still complete, inline on the submitter.
        let out = s.run_batch(8, 2, Priority::Normal, &Obs::off(), |i| i * 3);
        assert_eq!(out, (0..8).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn shutdown_while_loaded_drains_queued_batches() {
        let s = Arc::new(MorselScheduler::new(1));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    let out = s.run_batch(8, 1, Priority::Normal, &Obs::off(), |i| {
                        std::thread::sleep(Duration::from_millis(1));
                        i
                    });
                    assert_eq!(out.len(), 8);
                });
            }
            std::thread::sleep(Duration::from_millis(3));
            let s = Arc::clone(&s);
            scope.spawn(move || s.shutdown());
        });
        assert!(s.is_shut_down());
        assert_eq!(s.stats().tasks, 32, "every queued morsel ran");
    }
}
