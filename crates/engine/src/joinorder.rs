//! Compile-time join ordering — the paper's rules R1–R4, plus a
//! "traditional" optimizer used for the eager loading baselines.
//!
//! * **R1** Join on red edges first before anything else.
//! * **R2** Only if necessary, use cross-products to join all red
//!   vertices into one, before using any blue or black edges.
//! * **R3** Do not allow bushy plans containing black vertices.
//! * **R4** Join on black edges only if all other edges are used.
//!
//! [`order_metadata_first`] produces the decomposed plan
//! `Q = Qf ▷ Qs`: a join tree where all metadata (red) vertices form
//! one subtree, wrapped in [`LogicalPlan::QfMark`], and actual-data
//! (black) vertices attach linearly above it. With `lazy = true` the
//! black leaves become [`LogicalPlan::LazyScan`]s.
//!
//! [`order_traditional`] is what a selectivity-greedy textbook optimizer
//! would do (start from the selective big table, chain in the rest) —
//! the plan shape the eager variants run, where index joins apply.

use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::graph::{EdgeColor, QueryGraph, VertexColor};
use crate::logical::LogicalPlan;
use crate::spec::{OutputExpr, QuerySpec};

/// How to plan a query.
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Metadata-first (two-stage) shape vs. traditional shape.
    pub metadata_first: bool,
    /// Emit `LazyScan` leaves for actual-data tables (lazy loading).
    pub lazy: bool,
    /// Extra columns the `Qf` output must retain (e.g. `F.uri` and
    /// `F.file_id` so the run-time optimizer can name the chunks).
    pub qf_extra_columns: Vec<String>,
}

impl PlanOptions {
    /// The paper's lazy two-stage planning.
    pub fn lazy(qf_extra: &[&str]) -> Self {
        PlanOptions {
            metadata_first: true,
            lazy: true,
            qf_extra_columns: qf_extra.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Traditional planning over fully loaded tables.
    pub fn eager() -> Self {
        PlanOptions { metadata_first: false, lazy: false, qf_extra_columns: Vec::new() }
    }
}

/// Plan `spec` according to `opts`, producing a complete logical plan
/// (join tree + aggregation/projection/ordering).
pub fn plan_query(spec: &QuerySpec, opts: &PlanOptions) -> Result<LogicalPlan> {
    let graph = QueryGraph::from_spec(spec)?;
    let join_tree = if opts.metadata_first {
        order_metadata_first(&graph, spec, opts)?
    } else {
        order_traditional(&graph, spec)?
    };
    finish(join_tree, spec)
}

/// Scan leaf for vertex `v`.
fn leaf(graph: &QueryGraph, spec: &QuerySpec, v: usize, opts: &PlanOptions) -> LogicalPlan {
    let vertex = &graph.vertices[v];
    let extra: Vec<&str> = opts.qf_extra_columns.iter().map(|s| s.as_str()).collect();
    let columns = spec.needed_columns(&vertex.table, &extra);
    let predicate = vertex.predicate.clone();
    if opts.lazy && vertex.color == VertexColor::Black {
        LogicalPlan::LazyScan { table: vertex.table.clone(), columns, predicate }
    } else {
        LogicalPlan::Scan { table: vertex.table.clone(), columns, predicate }
    }
}

/// Join `plan` (covering `covered`) with vertex `v`, merging the key
/// lists of every edge that connects them. `new_on_left` controls
/// whether the new vertex becomes the left (probe) or right (build)
/// input.
fn attach(
    graph: &QueryGraph,
    plan: LogicalPlan,
    covered: &[bool],
    v: usize,
    v_leaf: LogicalPlan,
    new_on_left: bool,
) -> Result<LogicalPlan> {
    let edges = graph.edges_into(v, covered);
    if edges.is_empty() {
        // Cross product (rule R2 or a genuinely disconnected query).
        return Ok(if new_on_left {
            LogicalPlan::Cross { left: Box::new(v_leaf), right: Box::new(plan) }
        } else {
            LogicalPlan::Cross { left: Box::new(plan), right: Box::new(v_leaf) }
        });
    }
    let table = &graph.vertices[v].table;
    let mut v_keys = Vec::new();
    let mut covered_keys = Vec::new();
    for e in edges {
        let (mine, other) = e
            .join
            .keys_for(table)
            .ok_or_else(|| EngineError::Plan(format!("edge does not touch {table}")))?;
        v_keys.extend_from_slice(mine);
        covered_keys.extend_from_slice(other);
    }
    Ok(if new_on_left {
        LogicalPlan::Join {
            left: Box::new(v_leaf),
            right: Box::new(plan),
            left_keys: v_keys,
            right_keys: covered_keys,
        }
    } else {
        LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(v_leaf),
            left_keys: covered_keys,
            right_keys: v_keys,
        }
    })
}

/// Rules R1–R4: red subtree first (marked as `Qf`), black vertices
/// attached linearly above.
pub fn order_metadata_first(
    graph: &QueryGraph,
    spec: &QuerySpec,
    opts: &PlanOptions,
) -> Result<LogicalPlan> {
    let n = graph.vertices.len();
    let mut covered = vec![false; n];
    let reds = graph.vertices_of(VertexColor::Red);
    let blacks = graph.vertices_of(VertexColor::Black);

    // ---- Red phase (R1 + R2) -------------------------------------
    let qf: Option<LogicalPlan> = if reds.is_empty() {
        None
    } else {
        // Start from a selective red vertex.
        let start = reds
            .iter()
            .copied()
            .find(|&v| graph.vertices[v].predicate.is_some())
            .unwrap_or(reds[0]);
        let mut plan = leaf(graph, spec, start, opts);
        covered[start] = true;
        let mut remaining: Vec<usize> =
            reds.iter().copied().filter(|&v| v != start).collect();
        while !remaining.is_empty() {
            // R1: prefer a red vertex connected by a red edge.
            let connected =
                remaining.iter().position(|&v| !graph.edges_into(v, &covered).is_empty());
            let idx = connected.unwrap_or(0); // R2: cross product fallback
            let v = remaining.remove(idx);
            let v_leaf = leaf(graph, spec, v, opts);
            plan = attach(graph, plan, &covered, v, v_leaf, false)?;
            covered[v] = true;
        }
        Some(plan)
    };

    // ---- Black phase (R3 + R4) -----------------------------------
    let mut plan = match qf {
        Some(qf) => LogicalPlan::QfMark { input: Box::new(qf) },
        None => {
            // Pure actual-data query: the paper's "no alternative to
            // loading all AD" case. Start from the first black vertex.
            let start = blacks
                .first()
                .copied()
                .ok_or_else(|| EngineError::Plan("query with no tables".into()))?;
            covered[start] = true;
            let first = leaf(graph, spec, start, opts);
            let mut plan = first;
            let mut remaining: Vec<usize> =
                blacks.iter().copied().filter(|&v| v != start).collect();
            while !remaining.is_empty() {
                let connected =
                    remaining.iter().position(|&v| !graph.edges_into(v, &covered).is_empty());
                let idx = connected.unwrap_or(0);
                let v = remaining.remove(idx);
                let v_leaf = leaf(graph, spec, v, opts);
                plan = attach(graph, plan, &covered, v, v_leaf, true)?;
                covered[v] = true;
            }
            return Ok(plan);
        }
    };
    let mut remaining: Vec<usize> = blacks;
    while !remaining.is_empty() {
        // R4: prefer black vertices reachable via a blue edge; fall back
        // to black edges; cross product only if disconnected.
        let pick = remaining
            .iter()
            .position(|&v| {
                graph.edges_into(v, &covered).iter().any(|e| e.color == EdgeColor::Blue)
            })
            .or_else(|| {
                remaining.iter().position(|&v| !graph.edges_into(v, &covered).is_empty())
            })
            .unwrap_or(0);
        let v = remaining.remove(pick);
        let v_leaf = leaf(graph, spec, v, opts);
        // Black vertex on the left (probe side), composite on the right
        // (build side) — the metadata result is the small input. The
        // chain stays linear, satisfying R3.
        plan = attach(graph, plan, &covered, v, v_leaf, true)?;
        covered[v] = true;
    }
    Ok(plan)
}

/// A traditional greedy order: start from a selective actual-data
/// table, then repeatedly join the "cheapest" connected vertex
/// (predicated metadata first).
pub fn order_traditional(graph: &QueryGraph, spec: &QuerySpec) -> Result<LogicalPlan> {
    let n = graph.vertices.len();
    let opts = PlanOptions::eager();
    let mut covered = vec![false; n];
    let rank = |v: usize| -> (u8, u8) {
        let vx = &graph.vertices[v];
        (
            if vx.predicate.is_some() { 0 } else { 1 },
            if vx.color == VertexColor::Red { 0 } else { 1 },
        )
    };
    // Start from a black vertex (the data table drives the scan) if one
    // exists, preferring predicated ones; otherwise the best red vertex.
    let blacks = graph.vertices_of(VertexColor::Black);
    let start = blacks
        .iter()
        .copied()
        .min_by_key(|&v| rank(v))
        .or_else(|| (0..n).min_by_key(|&v| rank(v)))
        .ok_or_else(|| EngineError::Plan("query with no tables".into()))?;
    let mut plan = leaf(graph, spec, start, &opts);
    covered[start] = true;
    let mut remaining: Vec<usize> = (0..n).filter(|&v| v != start).collect();
    while !remaining.is_empty() {
        // Among connected vertices pick the lowest rank; else cross.
        let connected: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&v| !graph.edges_into(v, &covered).is_empty())
            .collect();
        let v = connected.into_iter().min_by_key(|&v| rank(v)).unwrap_or(remaining[0]);
        remaining.retain(|&x| x != v);
        let v_leaf = leaf(graph, spec, v, &opts);
        // New table goes on the right: it becomes the hash-join build
        // side (metadata tables are small) or the index-join parent.
        plan = attach(graph, plan, &covered, v, v_leaf, false)?;
        covered[v] = true;
    }
    Ok(plan)
}

/// Add aggregation / projection / distinct / order / limit on top of a
/// join tree, per the spec's output clause.
pub fn finish(join_tree: LogicalPlan, spec: &QuerySpec) -> Result<LogicalPlan> {
    let mut plan = join_tree;
    if let Some(residual) = Expr::conjoin(spec.residual.iter().cloned()) {
        plan = LogicalPlan::Filter { input: Box::new(plan), predicate: residual };
    }
    if spec.has_aggregates() || !spec.group_by.is_empty() {
        let aggs: Vec<(String, crate::expr::AggFunc, Expr)> = spec
            .output
            .iter()
            .filter_map(|o| match o {
                OutputExpr::Aggregate { name, func, expr } => {
                    Some((name.clone(), *func, expr.clone()))
                }
                OutputExpr::Column { .. } => None,
            })
            .collect();
        plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_by: spec.group_by.clone(),
            aggs,
        };
        // Re-order the aggregate's output to the SELECT-list order.
        let exprs: Vec<(String, Expr)> =
            spec.output.iter().map(|o| (o.name().to_string(), Expr::col(o.name()))).collect();
        plan = LogicalPlan::Project { input: Box::new(plan), exprs };
    } else {
        let exprs: Vec<(String, Expr)> = spec
            .output
            .iter()
            .map(|o| match o {
                OutputExpr::Column { name, expr } => (name.clone(), expr.clone()),
                OutputExpr::Aggregate { .. } => unreachable!("filtered above"),
            })
            .collect();
        plan = LogicalPlan::Project { input: Box::new(plan), exprs };
    }
    if spec.distinct {
        plan = LogicalPlan::Distinct { input: Box::new(plan) };
    }
    if !spec.order_by.is_empty() {
        plan = LogicalPlan::Sort { input: Box::new(plan), keys: spec.order_by.clone() };
    }
    if let Some(n) = spec.limit {
        plan = LogicalPlan::Limit { input: Box::new(plan), n };
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::tests::windowish_spec;
    use crate::spec::{JoinEdge, OutputExpr, TableRef};
    use sommelier_storage::TableClass;

    /// Walk the join tree: assert every scan under QfMark is metadata,
    /// and every actual-data scan is above it.
    #[test]
    fn metadata_first_separates_colors() {
        let spec = windowish_spec();
        let opts = PlanOptions::lazy(&["F.uri", "F.file_id"]);
        let graph = QueryGraph::from_spec(&spec).unwrap();
        let plan = order_metadata_first(&graph, &spec, &opts).unwrap();
        let qf = plan.qf().expect("Qf must be marked");
        let mut qf_tables = qf.tables();
        qf_tables.sort();
        assert_eq!(qf_tables, vec!["F", "H", "S"]);
        assert!(!qf.has_lazy_scan(), "no actual data below the Qf mark");
        assert!(plan.has_lazy_scan(), "D is a lazy scan above Qf");
    }

    #[test]
    fn qf_scan_keeps_required_columns() {
        let spec = windowish_spec();
        let opts = PlanOptions::lazy(&["F.uri", "F.file_id"]);
        let plan = plan_query(&spec, &opts).unwrap();
        let mut found_uri = false;
        plan.visit(&mut |p| {
            if let LogicalPlan::Scan { table, columns, .. } = p {
                if table == "F" {
                    found_uri = columns.iter().any(|c| c == "F.uri");
                }
            }
        });
        assert!(found_uri, "F scan must retain F.uri for the run-time rewrite");
    }

    #[test]
    fn black_phase_is_linear() {
        // Two black vertices must chain, not join bushily (R3).
        let mut spec = windowish_spec();
        spec.tables.push(TableRef { name: "D2".into(), class: TableClass::ActualData });
        spec.joins.push(
            JoinEdge::new(
                "D",
                "D2",
                vec![Expr::col("D.seg_id")],
                vec![Expr::col("D2.seg_id")],
            )
            .unwrap(),
        );
        let graph = QueryGraph::from_spec(&spec).unwrap();
        let opts = PlanOptions::lazy(&[]);
        let plan = order_metadata_first(&graph, &spec, &opts).unwrap();
        // Walk down the spine: every Join's left child must be a leaf
        // scan (linear chain), never a Join of two black subtrees.
        fn assert_linear(p: &LogicalPlan) {
            if let LogicalPlan::Join { left, right, .. } = p {
                assert!(
                    matches!(**left, LogicalPlan::LazyScan { .. } | LogicalPlan::Scan { .. }),
                    "black spine must be linear, got left = {left}"
                );
                assert_linear(right);
            }
        }
        assert_linear(&plan);
    }

    #[test]
    fn r2_cross_product_when_reds_disconnected() {
        // Two metadata tables with no red edge between them, both
        // bridging into D: R2 forces a cross product in Qf.
        let spec = QuerySpec {
            tables: vec![
                TableRef { name: "M1".into(), class: TableClass::MetadataGiven },
                TableRef { name: "M2".into(), class: TableClass::MetadataGiven },
                TableRef { name: "D".into(), class: TableClass::ActualData },
            ],
            joins: vec![
                JoinEdge::new("M1", "D", vec![Expr::col("M1.k")], vec![Expr::col("D.k1")])
                    .unwrap(),
                JoinEdge::new("M2", "D", vec![Expr::col("M2.k")], vec![Expr::col("D.k2")])
                    .unwrap(),
            ],
            output: vec![OutputExpr::Column { name: "k".into(), expr: Expr::col("D.k1") }],
            ..QuerySpec::default()
        };
        let graph = QueryGraph::from_spec(&spec).unwrap();
        let opts = PlanOptions::lazy(&[]);
        let plan = order_metadata_first(&graph, &spec, &opts).unwrap();
        let qf = plan.qf().unwrap();
        let mut has_cross = false;
        qf.visit(&mut |p| {
            if matches!(p, LogicalPlan::Cross { .. }) {
                has_cross = true;
            }
        });
        assert!(has_cross, "R2: disconnected red vertices must cross-product inside Qf");
        // And D joins the crossed metadata on both keys at once.
        if let LogicalPlan::Join { left_keys, .. } = &plan {
            assert_eq!(left_keys.len(), 2);
        } else {
            panic!("expected a join at the root, got {plan}");
        }
    }

    #[test]
    fn pure_metadata_query_is_all_qf() {
        let spec = QuerySpec {
            tables: vec![TableRef { name: "H".into(), class: TableClass::MetadataDerived }],
            output: vec![OutputExpr::Column {
                name: "ts".into(),
                expr: Expr::col("H.window_start_ts"),
            }],
            ..QuerySpec::default()
        };
        let plan = plan_query(&spec, &PlanOptions::lazy(&[])).unwrap();
        assert!(plan.qf().is_some());
        assert!(!plan.has_lazy_scan());
    }

    #[test]
    fn pure_ad_query_has_no_qf() {
        let spec = QuerySpec {
            tables: vec![TableRef { name: "D".into(), class: TableClass::ActualData }],
            output: vec![OutputExpr::Column {
                name: "v".into(),
                expr: Expr::col("D.sample_value"),
            }],
            ..QuerySpec::default()
        };
        let plan = plan_query(&spec, &PlanOptions::lazy(&[])).unwrap();
        assert!(plan.qf().is_none());
        assert!(plan.has_lazy_scan());
    }

    #[test]
    fn traditional_order_starts_from_data_table() {
        let spec = windowish_spec();
        let graph = QueryGraph::from_spec(&spec).unwrap();
        let plan = order_traditional(&graph, &spec).unwrap();
        // Leftmost leaf should be the D scan.
        fn leftmost(p: &LogicalPlan) -> &LogicalPlan {
            match p {
                LogicalPlan::Join { left, .. } | LogicalPlan::Cross { left, .. } => {
                    leftmost(left)
                }
                other => other,
            }
        }
        match leftmost(&plan) {
            LogicalPlan::Scan { table, .. } => assert_eq!(table, "D"),
            other => panic!("expected D scan at the bottom, got {other:?}"),
        }
        assert!(plan.qf().is_none(), "traditional plans are not decomposed");
        assert!(!plan.has_lazy_scan());
    }

    #[test]
    fn finish_adds_aggregate_projection() {
        let mut spec = windowish_spec();
        spec.output = vec![OutputExpr::Aggregate {
            name: "avg_v".into(),
            func: crate::expr::AggFunc::Avg,
            expr: Expr::col("D.sample_value"),
        }];
        let plan = plan_query(&spec, &PlanOptions::lazy(&["F.uri"])).unwrap();
        match &plan {
            LogicalPlan::Project { input, exprs } => {
                assert_eq!(exprs[0].0, "avg_v");
                assert!(matches!(**input, LogicalPlan::Aggregate { .. }));
            }
            other => panic!("expected Project over Aggregate, got {other}"),
        }
    }

    #[test]
    fn finish_adds_sort_and_limit() {
        let mut spec = windowish_spec();
        spec.order_by = vec![("v".into(), true)];
        spec.limit = Some(10);
        let plan = plan_query(&spec, &PlanOptions::eager()).unwrap();
        match &plan {
            LogicalPlan::Limit { input, n } => {
                assert_eq!(*n, 10);
                assert!(matches!(**input, LogicalPlan::Sort { .. }));
            }
            other => panic!("expected Limit over Sort, got {other}"),
        }
    }
}
