//! Vectorized expression evaluation over relations.
//!
//! Two entry points: [`eval_scalar`] produces a column, [`eval_mask`]
//! a boolean selection vector. Comparisons against literals on
//! `i64`/`f64`/timestamp columns take tight vectorized loops;
//! text-vs-literal equality short-circuits through the dictionary
//! (a literal absent from the dictionary matches nothing without
//! touching the rows).

use crate::error::{EngineError, Result};
use crate::expr::{ArithOp, CmpOp, Expr, Func};
use crate::relation::Relation;
use sommelier_storage::column::TextColumn;
use sommelier_storage::time::{day_bucket, hour_bucket};
use sommelier_storage::{ColumnData, Value};

/// Evaluate `expr` to a column over `rel`.
pub fn eval_scalar(expr: &Expr, rel: &Relation) -> Result<ColumnData> {
    match expr {
        Expr::Col(name) => Ok(rel.column(name)?.clone()),
        Expr::Lit(v) => broadcast(v, rel.rows()),
        Expr::Arith(op, a, b) => {
            let ca = eval_scalar(a, rel)?;
            let cb = eval_scalar(b, rel)?;
            arith(*op, &ca, &cb)
        }
        Expr::Call(f, args) => call(*f, args, rel),
        Expr::Cmp(..) | Expr::And(..) | Expr::Or(..) | Expr::Not(..) => {
            // Boolean in scalar position: materialize as 0/1 ints.
            let mask = eval_mask(expr, rel)?;
            Ok(ColumnData::Int64(mask.iter().map(|&b| b as i64).collect()))
        }
    }
}

/// Evaluate `expr` as a row mask over `rel`.
pub fn eval_mask(expr: &Expr, rel: &Relation) -> Result<Vec<bool>> {
    match expr {
        Expr::And(a, b) => {
            let mut m = eval_mask(a, rel)?;
            // Short-circuit: only evaluate b where a holds? Bulk engines
            // evaluate both; we AND the masks (b's evaluation is cheap
            // and side-effect free).
            let mb = eval_mask(b, rel)?;
            for (x, y) in m.iter_mut().zip(mb) {
                *x = *x && y;
            }
            Ok(m)
        }
        Expr::Or(a, b) => {
            let mut m = eval_mask(a, rel)?;
            let mb = eval_mask(b, rel)?;
            for (x, y) in m.iter_mut().zip(mb) {
                *x = *x || y;
            }
            Ok(m)
        }
        Expr::Not(a) => {
            let mut m = eval_mask(a, rel)?;
            for x in m.iter_mut() {
                *x = !*x;
            }
            Ok(m)
        }
        Expr::Cmp(op, a, b) => cmp_mask(*op, a, b, rel),
        Expr::Lit(Value::Int(v)) => Ok(vec![*v != 0; rel.rows()]),
        other => Err(EngineError::Exec(format!("{other} is not a predicate"))),
    }
}

fn broadcast(v: &Value, n: usize) -> Result<ColumnData> {
    Ok(match v {
        Value::Int(x) => ColumnData::Int64(vec![*x; n]),
        Value::Float(x) => ColumnData::Float64(vec![*x; n]),
        Value::Time(x) => ColumnData::Timestamp(vec![*x; n]),
        Value::Text(s) => {
            let mut t = TextColumn::new();
            for _ in 0..n {
                t.push(s);
            }
            ColumnData::Text(t)
        }
        Value::Null => return Err(EngineError::Exec("cannot broadcast NULL".into())),
    })
}

fn arith(op: ArithOp, a: &ColumnData, b: &ColumnData) -> Result<ColumnData> {
    use ColumnData::*;
    let fail = || {
        EngineError::Exec(format!(
            "cannot apply {} to {} and {}",
            op.symbol(),
            a.data_type(),
            b.data_type()
        ))
    };
    let fi = |x: i64, y: i64| -> i64 {
        match op {
            ArithOp::Add => x.wrapping_add(y),
            ArithOp::Sub => x.wrapping_sub(y),
            ArithOp::Mul => x.wrapping_mul(y),
            ArithOp::Div => {
                if y == 0 {
                    0
                } else {
                    x / y
                }
            }
        }
    };
    let ff = |x: f64, y: f64| -> f64 {
        match op {
            ArithOp::Add => x + y,
            ArithOp::Sub => x - y,
            ArithOp::Mul => x * y,
            ArithOp::Div => x / y,
        }
    };
    Ok(match (a, b) {
        (Int64(x) | Timestamp(x), Int64(y) | Timestamp(y)) => {
            Int64(x.iter().zip(y).map(|(&x, &y)| fi(x, y)).collect())
        }
        (Float64(x), Float64(y)) => {
            Float64(x.iter().zip(y).map(|(&x, &y)| ff(x, y)).collect())
        }
        (Float64(x), Int64(y) | Timestamp(y)) => {
            Float64(x.iter().zip(y).map(|(&x, &y)| ff(x, y as f64)).collect())
        }
        (Int64(x) | Timestamp(x), Float64(y)) => {
            Float64(x.iter().zip(y).map(|(&x, &y)| ff(x as f64, y)).collect())
        }
        _ => return Err(fail()),
    })
}

fn call(f: Func, args: &[Expr], rel: &Relation) -> Result<ColumnData> {
    let arg = |i: usize| -> Result<ColumnData> {
        args.get(i)
            .ok_or_else(|| EngineError::Exec(format!("{} missing argument {i}", f.name())))
            .and_then(|e| eval_scalar(e, rel))
    };
    match f {
        Func::HourBucket | Func::DayBucket => {
            let c = arg(0)?;
            let v = c.as_i64().map_err(EngineError::Storage)?;
            let bucket = if f == Func::HourBucket { hour_bucket } else { day_bucket };
            Ok(ColumnData::Timestamp(v.iter().map(|&t| bucket(t)).collect()))
        }
        Func::TimeBucket => {
            let c = arg(0)?;
            let v = c.as_i64().map_err(EngineError::Storage)?;
            if v.is_empty() {
                return Ok(ColumnData::Timestamp(Vec::new()));
            }
            let w = arg(1)?;
            let w = w.as_i64().map_err(EngineError::Storage)?;
            let width = *w.first().ok_or_else(|| {
                EngineError::Exec("TIME_BUCKET width must be a constant".into())
            })?;
            if width <= 0 {
                return Err(EngineError::Exec(format!(
                    "TIME_BUCKET width must be positive, got {width}"
                )));
            }
            Ok(ColumnData::Timestamp(
                v.iter().map(|&t| t.div_euclid(width) * width).collect(),
            ))
        }
        Func::Abs => {
            let c = arg(0)?;
            Ok(match c {
                ColumnData::Int64(v) => {
                    ColumnData::Int64(v.iter().map(|&x| x.abs()).collect())
                }
                ColumnData::Float64(v) => {
                    ColumnData::Float64(v.iter().map(|&x| x.abs()).collect())
                }
                other => {
                    return Err(EngineError::Exec(format!(
                        "ABS over {} column",
                        other.data_type()
                    )))
                }
            })
        }
    }
}

/// Comparison mask with fast paths for column-vs-literal.
fn cmp_mask(op: CmpOp, a: &Expr, b: &Expr, rel: &Relation) -> Result<Vec<bool>> {
    // Normalize literal to the right side.
    if matches!(a, Expr::Lit(_)) && !matches!(b, Expr::Lit(_)) {
        return cmp_mask(op.flip(), b, a, rel);
    }
    if let (Expr::Col(name), Expr::Lit(lit)) = (a, b) {
        let col = rel.column(name)?;
        return cmp_col_lit(op, col, lit);
    }
    // General path: evaluate both sides, compare element-wise.
    let ca = eval_scalar(a, rel)?;
    let cb = eval_scalar(b, rel)?;
    cmp_cols(op, &ca, &cb)
}

fn cmp_col_lit(op: CmpOp, col: &ColumnData, lit: &Value) -> Result<Vec<bool>> {
    match col {
        ColumnData::Int64(v) | ColumnData::Timestamp(v) => {
            let x = lit
                .coerce_to(col.data_type())
                .map_err(EngineError::Storage)?
                .as_i64()
                .map_err(EngineError::Storage)?;
            Ok(v.iter().map(|&e| op.test(e.cmp(&x))).collect())
        }
        ColumnData::Float64(v) => {
            let x = lit.as_f64().map_err(EngineError::Storage)?;
            Ok(v.iter().map(|&e| e.partial_cmp(&x).is_some_and(|o| op.test(o))).collect())
        }
        ColumnData::Text(t) => {
            let s = lit.as_str().map_err(EngineError::Storage)?;
            match op {
                // Dictionary fast path for (in)equality.
                CmpOp::Eq | CmpOp::Ne => {
                    let want_eq = op == CmpOp::Eq;
                    match t.dict.code_of(s) {
                        Some(code) => {
                            Ok(t.codes.iter().map(|&c| (c == code) == want_eq).collect())
                        }
                        None => Ok(vec![!want_eq; t.len()]),
                    }
                }
                _ => Ok((0..t.len()).map(|i| op.test(t.get(i).cmp(s))).collect()),
            }
        }
    }
}

fn cmp_cols(op: CmpOp, a: &ColumnData, b: &ColumnData) -> Result<Vec<bool>> {
    use ColumnData::*;
    if a.len() != b.len() {
        return Err(EngineError::Exec(format!(
            "comparison arity mismatch: {} vs {} rows",
            a.len(),
            b.len()
        )));
    }
    Ok(match (a, b) {
        (Int64(x) | Timestamp(x), Int64(y) | Timestamp(y)) => {
            x.iter().zip(y).map(|(&x, &y)| op.test(x.cmp(&y))).collect()
        }
        (Float64(x), Float64(y)) => x
            .iter()
            .zip(y)
            .map(|(x, y)| x.partial_cmp(y).is_some_and(|o| op.test(o)))
            .collect(),
        (Int64(x) | Timestamp(x), Float64(y)) => x
            .iter()
            .zip(y)
            .map(|(&x, y)| (x as f64).partial_cmp(y).is_some_and(|o| op.test(o)))
            .collect(),
        (Float64(x), Int64(y) | Timestamp(y)) => x
            .iter()
            .zip(y)
            .map(|(x, &y)| x.partial_cmp(&(y as f64)).is_some_and(|o| op.test(o)))
            .collect(),
        (Text(x), Text(y)) => (0..x.len()).map(|i| op.test(x.get(i).cmp(y.get(i)))).collect(),
        _ => {
            return Err(EngineError::Exec(format!(
                "cannot compare {} with {}",
                a.data_type(),
                b.data_type()
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_storage::column::TextColumn;
    use sommelier_storage::time::MS_PER_HOUR;

    fn rel() -> Relation {
        Relation::new(vec![
            ("D.sample_time".into(), ColumnData::Timestamp(vec![0, 1_000, MS_PER_HOUR + 5])),
            ("D.sample_value".into(), ColumnData::Float64(vec![1.5, -2.0, 10.0])),
            (
                "F.station".into(),
                ColumnData::Text(TextColumn::from_strs(["ISK", "FIAM", "ISK"])),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn literal_comparisons() {
        let r = rel();
        let m =
            eval_mask(&Expr::col("sample_value").cmp(CmpOp::Gt, Expr::lit(0.0)), &r).unwrap();
        assert_eq!(m, vec![true, false, true]);
        // Int literal against float column coerces.
        let m = eval_mask(&Expr::col("sample_value").cmp(CmpOp::Ge, Expr::lit(10i64)), &r)
            .unwrap();
        assert_eq!(m, vec![false, false, true]);
        // Literal on the left flips.
        let m =
            eval_mask(&Expr::lit(0.0).cmp(CmpOp::Lt, Expr::col("sample_value")), &r).unwrap();
        assert_eq!(m, vec![true, false, true]);
    }

    #[test]
    fn timestamp_literal_text_coerces() {
        let r = rel();
        let m = eval_mask(
            &Expr::col("sample_time").cmp(CmpOp::Ge, Expr::lit("1970-01-01T00:00:01.000")),
            &r,
        )
        .unwrap();
        assert_eq!(m, vec![false, true, true]);
    }

    #[test]
    fn text_dictionary_fast_path() {
        let r = rel();
        let m = eval_mask(&Expr::col("station").eq(Expr::lit("ISK")), &r).unwrap();
        assert_eq!(m, vec![true, false, true]);
        // Absent literal: all false without row scans.
        let m = eval_mask(&Expr::col("station").eq(Expr::lit("NOPE")), &r).unwrap();
        assert_eq!(m, vec![false, false, false]);
        let m =
            eval_mask(&Expr::col("station").cmp(CmpOp::Ne, Expr::lit("NOPE")), &r).unwrap();
        assert_eq!(m, vec![true, true, true]);
        // Ordered text compare.
        let m =
            eval_mask(&Expr::col("station").cmp(CmpOp::Lt, Expr::lit("ISJ")), &r).unwrap();
        assert_eq!(m, vec![false, true, false]);
    }

    #[test]
    fn boolean_combinators() {
        let r = rel();
        let e = Expr::col("station")
            .eq(Expr::lit("ISK"))
            .and(Expr::col("sample_value").cmp(CmpOp::Gt, Expr::lit(5.0)));
        assert_eq!(eval_mask(&e, &r).unwrap(), vec![false, false, true]);
        let e = Expr::col("station")
            .eq(Expr::lit("FIAM"))
            .or(Expr::col("sample_value").cmp(CmpOp::Gt, Expr::lit(5.0)));
        assert_eq!(eval_mask(&e, &r).unwrap(), vec![false, true, true]);
        let e = Expr::Not(Box::new(Expr::col("station").eq(Expr::lit("ISK"))));
        assert_eq!(eval_mask(&e, &r).unwrap(), vec![false, true, false]);
    }

    #[test]
    fn hour_bucket_call() {
        let r = rel();
        let c =
            eval_scalar(&Expr::Call(Func::HourBucket, vec![Expr::col("sample_time")]), &r)
                .unwrap();
        assert_eq!(c.as_i64().unwrap(), &[0, 0, MS_PER_HOUR]);
    }

    #[test]
    fn arithmetic() {
        let r = rel();
        let c = eval_scalar(
            &Expr::Arith(
                ArithOp::Mul,
                Box::new(Expr::col("sample_value")),
                Box::new(Expr::lit(2.0)),
            ),
            &r,
        )
        .unwrap();
        assert_eq!(c.as_f64().unwrap(), &[3.0, -4.0, 20.0]);
        // Abs.
        let c =
            eval_scalar(&Expr::Call(Func::Abs, vec![Expr::col("sample_value")]), &r).unwrap();
        assert_eq!(c.as_f64().unwrap(), &[1.5, 2.0, 10.0]);
    }

    #[test]
    fn col_vs_col_comparison() {
        let r = Relation::new(vec![
            ("a".into(), ColumnData::Int64(vec![1, 5, 3])),
            ("b".into(), ColumnData::Int64(vec![2, 4, 3])),
        ])
        .unwrap();
        let m = eval_mask(&Expr::col("a").cmp(CmpOp::Lt, Expr::col("b")), &r).unwrap();
        assert_eq!(m, vec![true, false, false]);
        let m = eval_mask(&Expr::col("a").eq(Expr::col("b")), &r).unwrap();
        assert_eq!(m, vec![false, false, true]);
    }

    #[test]
    fn non_predicate_rejected() {
        let r = rel();
        assert!(eval_mask(&Expr::col("sample_value"), &r).is_err());
        assert!(eval_scalar(&Expr::Lit(Value::Null), &r).is_err());
    }
}
