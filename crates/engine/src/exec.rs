//! The bulk (column-at-a-time) executor.
//!
//! Executes a [`PhysicalPlan`] bottom-up, materializing every
//! intermediate [`Relation`] — MonetDB's execution style, which the
//! paper's two-stage model builds on. Chunk data for
//! [`PhysicalPlan::ChunkUnion`] and [`PhysicalPlan::PartialAggUnion`]
//! must have been pre-loaded into the [`ExecContext`] by the two-stage
//! driver (the paper's run-time optimizer inserts the load statements
//! before `Qs` resumes; see [`crate::twostage`]) — except when the
//! driver runs the fused decode→execute wave, which replaces the
//! partial-agg node with a result-scan of the merged states.
//!
//! Chunk-bearing operators are **morsel-parallel**: both union flavors
//! run their per-chunk pipelines (projection, pushed-down selection,
//! probe, partial aggregation) on a worker pool of
//! [`ExecContext::workers`] threads, pulling chunks from a shared
//! queue. Results are combined in chunk order, so the output is
//! independent of the worker count.

use crate::agg::{aggregate, distinct, merge_partials, partial_aggregate, PartialAgg};
use crate::error::{EngineError, Result};
use crate::eval::{eval_mask, eval_scalar};
use crate::expr::Expr;
use crate::join::{cross_join, hash_join, index_join, JoinBuild};
use crate::obs::{self, metrics::COUNT_BUCKETS, Obs};
use crate::physical::{ChunkOp, PhysicalPlan};
use crate::relation::Relation;
use crate::sched::{self, CancelToken, MorselScheduler, Priority, SchedPolicy};
use crate::sort::{limit, sort_relation};
use crate::twostage::ParallelMode;
use parking_lot::Mutex;
use sommelier_storage::Database;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Counters the executor fills while running (interior-mutable so the
/// worker pools can update them); the two-stage driver copies them into
/// [`crate::twostage::ExecStats`].
#[derive(Debug, Default)]
pub struct ExecCounters {
    /// Rows concatenated into materialized chunk unions.
    pub union_rows: AtomicU64,
    /// Chunks that went through a per-chunk partial-aggregation
    /// pipeline instead of being unioned.
    pub partial_agg_chunks: AtomicU64,
}

/// Everything the executor needs besides the plan.
pub struct ExecContext<'a> {
    pub db: &'a Database,
    /// Materialized stage-1 results, indexed by `ResultScan { id }`.
    /// Shared (`Arc`) so a result referenced several times is never
    /// deep-copied.
    pub materialized: Vec<Arc<Relation>>,
    /// Pre-loaded chunk relations by URI (cache-scans and chunk-accesses
    /// both resolve here; the driver fills it).
    pub chunks: HashMap<String, Arc<Relation>>,
    /// Scheduling mode for morsel-parallel operators (static strides
    /// vs shared-queue exchange).
    pub parallel: ParallelMode,
    /// Worker cap for morsel-parallel operators (1 = serial).
    pub workers: usize,
    /// Shared morsel scheduler; when set, morsel-parallel operators
    /// submit batches here instead of spawning scoped threads.
    pub scheduler: Option<Arc<MorselScheduler>>,
    /// Scheduling priority for this query's batches.
    pub priority: Priority,
    /// Cooperative cancellation, checked at chunk-pipeline boundaries.
    pub cancel: Option<CancelToken>,
    /// Execution counters.
    pub counters: ExecCounters,
    /// Observability handle (pool metrics, per-chunk pipeline spans).
    pub obs: Obs,
}

impl<'a> ExecContext<'a> {
    /// A context with no stage-1 results or chunks, executing serially.
    pub fn new(db: &'a Database) -> Self {
        ExecContext {
            db,
            materialized: Vec::new(),
            chunks: HashMap::new(),
            parallel: ParallelMode::Static,
            workers: 1,
            scheduler: None,
            priority: Priority::Normal,
            cancel: None,
            counters: ExecCounters::default(),
            obs: Obs::off(),
        }
    }

    /// The scheduling policy for this context's morsel batches.
    pub fn sched_policy(&self) -> SchedPolicy {
        SchedPolicy {
            parallel: self.parallel,
            max_threads: self.workers.max(1),
            scheduler: self.scheduler.clone(),
            priority: self.priority,
            cancel: self.cancel.clone(),
            degradation: Default::default(),
            tracer: self.obs.tracer().cloned(),
        }
    }
}

/// Scan a base table into a qualified, provenance-carrying relation.
pub fn scan_base_table(
    db: &Database,
    table: &str,
    columns: &[String],
    predicate: Option<&crate::expr::Expr>,
) -> Result<Relation> {
    let prefix = format!("{table}.");
    let raw: Vec<&str> = columns
        .iter()
        .map(|c| {
            c.strip_prefix(&prefix).ok_or_else(|| {
                EngineError::Plan(format!("scan column {c:?} not qualified by {table}"))
            })
        })
        .collect::<Result<_>>()?;
    let data = db.scan_columns(table, &raw)?;
    let rel = Relation::new(columns.iter().cloned().zip(data).collect())?;
    let rows: Vec<u32> = (0..rel.rows() as u32).collect();
    let rel = rel.with_provenance(table, rows);
    match predicate {
        Some(p) => {
            let mask = eval_mask(p, &rel)?;
            Ok(rel.filter(&mask))
        }
        None => Ok(rel),
    }
}

/// The correctly-typed empty relation for a chunk scan that selected no
/// chunks (so joins above keep working).
fn empty_chunk_schema(db: &Database, table: &str, columns: &[String]) -> Result<Relation> {
    let schema = db.table_schema(table)?;
    let prefix = format!("{table}.");
    let cols = columns
        .iter()
        .map(|c| {
            let raw = c.strip_prefix(&prefix).ok_or_else(|| {
                EngineError::Plan(format!("chunk column {c:?} not qualified by {table}"))
            })?;
            let dtype = schema.col_type(raw)?;
            Ok((c.clone(), sommelier_storage::ColumnData::empty(dtype)))
        })
        .collect::<Result<Vec<_>>>()?;
    Relation::new(cols)
}

/// The per-chunk stage-2 pipeline: scan-level projection, pushed-down
/// selection, optional probe of a shared pre-built join side, residual
/// filter. Shared by the executor's morsel-parallel operators and the
/// two-stage driver's fused decode→execute wave.
pub struct ChunkPipeline<'a> {
    /// Qualified output columns of the chunk scan.
    pub columns: &'a [String],
    /// Pushed-down selection (None = post-union filtering, or none).
    pub predicate: Option<&'a Expr>,
    /// `(pre-built build side, probe keys)` of the per-chunk hash
    /// join, if the aggregate sat over a join. Built once; probed by
    /// every chunk.
    pub build: Option<(&'a JoinBuild, &'a [Expr])>,
    /// Residual filters/projections applied after the join, in order.
    pub ops: &'a [ChunkOp],
}

impl ChunkPipeline<'_> {
    /// Run the pipeline over one chunk's rows.
    pub fn run(&self, chunk: &Relation) -> Result<Relation> {
        let wanted: Vec<(String, String)> =
            self.columns.iter().map(|c| (c.clone(), c.clone())).collect();
        let mut part = chunk.project_named(&wanted)?;
        if let Some(p) = self.predicate {
            let mask = eval_mask(p, &part)?;
            part = part.filter(&mask);
        }
        if let Some((build, probe_keys)) = self.build {
            part = build.probe(&part, probe_keys)?;
        }
        for op in self.ops {
            match op {
                ChunkOp::Filter(p) => {
                    let mask = eval_mask(p, &part)?;
                    part = part.filter(&mask);
                }
                ChunkOp::Project(exprs) => {
                    // Plain column references share the source payload
                    // (zero-copy, like `project_named`); only computed
                    // expressions materialize a new column. This runs
                    // once per chunk on the ingest hot path.
                    let cols = exprs
                        .iter()
                        .map(|(name, e)| {
                            let col = match e {
                                Expr::Col(src) => {
                                    Arc::clone(&part.columns()[part.resolve(src)?].1)
                                }
                                _ => Arc::new(eval_scalar(e, &part)?),
                            };
                            Ok((name.clone(), col))
                        })
                        .collect::<Result<Vec<_>>>()?;
                    part = Relation::from_shared(cols)?;
                }
            }
        }
        Ok(part)
    }
}

/// Run `task` over indices `0..n` on a worker pool, collecting results
/// in index order. [`ParallelMode::Static`] pre-assigns strided shares
/// (the paper's strategy — cheap, but skewed tasks underutilize the
/// pool); [`ParallelMode::Exchange`] pulls indices from a shared
/// queue. The worker count is the mode's stage-2 implication capped by
/// `n`; a single worker runs inline. This is the one scheduling
/// primitive shared by the executor's morsel operators, the two-stage
/// loaders, and the cellar's decode/streaming pools.
pub fn run_indexed<T: Send>(
    n: usize,
    parallel: ParallelMode,
    max_threads: usize,
    task: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    run_indexed_obs(n, parallel, max_threads, &Obs::off(), task)
}

/// [`run_indexed`] with an observability handle: workers tag themselves
/// with a thread-local id (so span probes inside `task` can say which
/// worker ran them), and each batch feeds the `pool.*` metrics —
/// batches, tasks, busy/idle ns, queue depth. With a disabled handle
/// this is byte-for-byte the old `run_indexed`.
pub fn run_indexed_obs<T: Send>(
    n: usize,
    parallel: ParallelMode,
    max_threads: usize,
    obs: &Obs,
    task: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let workers = parallel.stage2_workers(max_threads).min(n);
    let wall = obs.metrics().map(|_| std::time::Instant::now());
    if workers <= 1 {
        // Inline on the caller's thread; tag as worker 0 unless the
        // caller already runs inside a pool (nested decode units keep
        // the outer pool's id).
        let _tag = obs::current_worker().is_none().then(|| obs::worker_scope(0));
        let out: Vec<T> = (0..n).map(task).collect();
        if let (Some(m), Some(wall)) = (obs.metrics(), wall) {
            let busy = wall.elapsed().as_nanos() as u64;
            m.counter("pool.batches").inc();
            m.counter("pool.tasks").add(n as u64);
            m.counter("pool.busy_ns").add(busy);
            m.histogram("pool.queue_depth", &COUNT_BUCKETS).observe(n as u64);
        }
        return out;
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let busy: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let timed = obs.metrics().is_some();
    LEGACY_POOL_SPAWNS.fetch_add(workers as u64, Ordering::Relaxed);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let next = &next;
            let slots = &slots;
            let task = &task;
            let busy = &busy;
            scope.spawn(move || {
                let _tag = obs::worker_scope(w);
                let t0 = timed.then(std::time::Instant::now);
                match parallel {
                    ParallelMode::Static => {
                        let mut i = w;
                        while i < n {
                            *slots[i].lock() = Some(task(i));
                            i += workers;
                        }
                    }
                    ParallelMode::Exchange { .. } => loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        *slots[i].lock() = Some(task(i));
                    },
                }
                if let Some(t0) = t0 {
                    busy[w].store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            });
        }
    });
    if let (Some(m), Some(wall)) = (obs.metrics(), wall) {
        let busy_total: u64 = busy.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        let span = wall.elapsed().as_nanos() as u64 * workers as u64;
        m.counter("pool.batches").inc();
        m.counter("pool.tasks").add(n as u64);
        m.counter("pool.busy_ns").add(busy_total);
        m.counter("pool.idle_ns").add(span.saturating_sub(busy_total));
        m.histogram("pool.queue_depth", &COUNT_BUCKETS).observe(n as u64);
    }
    slots.into_iter().map(|s| s.into_inner().expect("every slot filled")).collect()
}

/// Threads spawned by the legacy per-batch scoped pool, cumulatively.
/// A shared-scheduler system should never grow this: the server tests
/// assert the delta stays zero while queries are in flight, which is
/// how "total live worker threads ≤ `max_threads`" is enforced.
static LEGACY_POOL_SPAWNS: AtomicU64 = AtomicU64::new(0);

/// Cumulative count of threads spawned by the legacy (per-batch scoped)
/// pool path. See [`run_indexed_policy`].
pub fn legacy_pool_spawns() -> u64 {
    LEGACY_POOL_SPAWNS.load(Ordering::Relaxed)
}

/// Policy-directed morsel batch: the single front door for
/// morsel-parallel work.
///
/// - On a shared-pool worker (nested batch, e.g. decode units inside a
///   chunk pipeline): runs inline on the worker — re-entering the queue
///   could deadlock a pool whose every worker waits on nested batches,
///   and inline execution keeps the thread bound intact.
/// - With a scheduler attached and >1 effective workers: submits to the
///   shared pool, capped at the policy's effective worker count.
/// - Otherwise: the legacy scoped pool ([`run_indexed_obs`]).
pub fn run_indexed_policy<T: Send>(
    n: usize,
    policy: &SchedPolicy,
    obs: &Obs,
    task: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    if sched::on_scheduler_worker() {
        return run_indexed_obs(n, ParallelMode::Static, 1, obs, task);
    }
    let workers = policy.parallel.stage2_workers(policy.max_threads).min(n);
    if workers > 1 {
        if let Some(s) = &policy.scheduler {
            return s.run_batch(n, workers, policy.priority, obs, task);
        }
    }
    run_indexed_obs(n, policy.parallel, policy.max_threads, obs, task)
}

/// Resolve every chunk of a union against the pre-loaded context.
fn resolve_chunks<'c>(
    ctx: &'c ExecContext,
    chunks: &[crate::physical::ChunkRef],
) -> Result<Vec<&'c Arc<Relation>>> {
    chunks
        .iter()
        .map(|chunk| {
            ctx.chunks.get(&chunk.uri).ok_or_else(|| {
                EngineError::Chunk(format!("chunk {:?} was not pre-loaded", chunk.uri))
            })
        })
        .collect()
}

/// Execute a physical plan.
pub fn execute(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<Relation> {
    match plan {
        PhysicalPlan::SeqScan { table, columns, predicate } => {
            scan_base_table(ctx.db, table, columns, predicate.as_ref())
        }
        PhysicalPlan::ResultScan { id } => ctx
            .materialized
            .get(*id)
            // Shallow: the clone shares the column payloads.
            .map(|r| (**r).clone())
            .ok_or_else(|| EngineError::Exec(format!("no materialized result #{id}"))),
        PhysicalPlan::ChunkUnion { table, chunks, columns, predicate, pushdown, .. } => {
            if chunks.is_empty() {
                // Stage 1 selected no files: an empty relation with the
                // base table's schema (so joins above keep working).
                return empty_chunk_schema(ctx.db, table, columns);
            }
            let pipeline = ChunkPipeline {
                columns,
                predicate: if *pushdown { predicate.as_ref() } else { None },
                build: None,
                ops: &[],
            };
            let rels = resolve_chunks(ctx, chunks)?;
            // Per-chunk projection (and selection, if pushed down) on
            // the worker pool; concatenation in chunk order.
            let parts = run_indexed_policy(rels.len(), &ctx.sched_policy(), &ctx.obs, |i| {
                let tracer = ctx.obs.tracer();
                let t0 = tracer.map(|tc| tc.now_ns());
                // Cancellation checkpoint at the chunk-pipeline
                // boundary: already-running morsels finish.
                let part = ctx
                    .cancel
                    .as_ref()
                    .map_or(Ok(()), CancelToken::check)
                    .and_then(|()| pipeline.run(rels[i]));
                if let (Some(tc), Some(t0)) = (tracer, t0) {
                    tc.record(
                        tc.ambient(),
                        "chunk",
                        chunks[i].uri.clone(),
                        t0,
                        tc.now_ns().saturating_sub(t0),
                        obs::current_worker(),
                        part.as_ref().ok().map(|r| r.rows() as u64),
                        None,
                    );
                }
                part
            });
            let mut out = Relation::empty();
            for part in parts {
                out.union_in_place(&part?)?;
            }
            ctx.counters.union_rows.fetch_add(out.rows() as u64, Ordering::Relaxed);
            if !*pushdown {
                if let Some(p) = predicate {
                    if out.rows() > 0 {
                        let mask = eval_mask(p, &out)?;
                        out = out.filter(&mask);
                    }
                }
            }
            // An empty union (zero chunks selected) still needs a schema
            // so joins above keep working.
            if out.width() == 0 {
                return Err(EngineError::Chunk(
                    "chunk union over zero chunks has no schema; stage-1 selected no files"
                        .into(),
                ));
            }
            Ok(out)
        }
        PhysicalPlan::PartialAggUnion {
            table,
            chunks,
            columns,
            predicate,
            join,
            ops,
            group_by,
            aggs,
            ..
        } => {
            // Build the join side once; every chunk probes it.
            let build = join
                .as_ref()
                .map(|j| JoinBuild::new(execute(&j.right, ctx)?, &j.right_keys))
                .transpose()?;
            let probe =
                join.as_ref().zip(build.as_ref()).map(|(j, b)| (b, j.left_keys.as_slice()));
            if chunks.is_empty() {
                // No chunks: run the (empty) pipeline serially so the
                // aggregate keeps its schema semantics.
                let pipeline = ChunkPipeline { columns, predicate: None, build: probe, ops };
                let empty = empty_chunk_schema(ctx.db, table, columns)?;
                return aggregate(&pipeline.run(&empty)?, group_by, aggs);
            }
            let pipeline =
                ChunkPipeline { columns, predicate: predicate.as_ref(), build: probe, ops };
            let rels = resolve_chunks(ctx, chunks)?;
            let parts: Vec<Result<PartialAgg>> =
                run_indexed_policy(rels.len(), &ctx.sched_policy(), &ctx.obs, |i| {
                    // Cancellation checkpoint at the chunk-pipeline
                    // boundary: already-running morsels finish.
                    if let Some(c) = &ctx.cancel {
                        c.check()?;
                    }
                    let tracer = ctx.obs.tracer();
                    let t0 = tracer.map(|tc| tc.now_ns());
                    let part = pipeline.run(rels[i])?;
                    let agg = partial_aggregate(&part, group_by, aggs);
                    if let (Some(tc), Some(t0)) = (tracer, t0) {
                        tc.record(
                            tc.ambient(),
                            "chunk",
                            chunks[i].uri.clone(),
                            t0,
                            tc.now_ns().saturating_sub(t0),
                            obs::current_worker(),
                            Some(part.rows() as u64),
                            None,
                        );
                    }
                    agg
                });
            ctx.counters.partial_agg_chunks.fetch_add(rels.len() as u64, Ordering::Relaxed);
            merge_partials(parts.into_iter().collect::<Result<Vec<_>>>()?, group_by, aggs)
        }
        PhysicalPlan::HashJoin { left, right, left_keys, right_keys } => {
            let l = execute(left, ctx)?;
            let r = execute(right, ctx)?;
            hash_join(&l, &r, left_keys, right_keys)
        }
        PhysicalPlan::IndexJoin {
            child,
            child_table,
            parent_table,
            parent_columns,
            parent_predicate,
        } => {
            let c = execute(child, ctx)?;
            match c.provenance() {
                Some(p) if p.table == *child_table => {}
                _ => {
                    return Err(EngineError::Exec(format!(
                        "index join expected provenance of {child_table}"
                    )))
                }
            }
            let parent = scan_base_table(ctx.db, parent_table, parent_columns, None)?;
            let ji = ctx.db.join_index(child_table, parent_table).ok_or_else(|| {
                EngineError::Exec(format!(
                    "no join index from {child_table} to {parent_table}"
                ))
            })?;
            index_join(&c, &parent, &ji.positions, parent_predicate.as_ref())
        }
        PhysicalPlan::Cross { left, right } => {
            let l = execute(left, ctx)?;
            let r = execute(right, ctx)?;
            cross_join(&l, &r)
        }
        PhysicalPlan::Filter { input, predicate } => {
            let rel = execute(input, ctx)?;
            let mask = eval_mask(predicate, &rel)?;
            Ok(rel.filter(&mask))
        }
        PhysicalPlan::Project { input, exprs } => {
            let rel = execute(input, ctx)?;
            let cols = exprs
                .iter()
                .map(|(name, e)| Ok((name.clone(), eval_scalar(e, &rel)?)))
                .collect::<Result<Vec<_>>>()?;
            Relation::new(cols)
        }
        PhysicalPlan::Aggregate { input, group_by, aggs } => {
            let rel = execute(input, ctx)?;
            aggregate(&rel, group_by, aggs)
        }
        PhysicalPlan::Distinct { input } => {
            let rel = execute(input, ctx)?;
            distinct(&rel)
        }
        PhysicalPlan::Sort { input, keys } => {
            let rel = execute(input, ctx)?;
            sort_relation(&rel, keys)
        }
        PhysicalPlan::Limit { input, n } => {
            let rel = execute(input, ctx)?;
            Ok(limit(&rel, *n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, CmpOp, Expr};
    use crate::physical::{fuse_partial_agg, ChunkRef};
    use sommelier_storage::buffer::BufferPoolConfig;
    use sommelier_storage::catalog::Disposition;
    use sommelier_storage::column::TextColumn;
    use sommelier_storage::{
        ColumnData, ConstraintPolicy, DataType, TableClass, TableSchema, Value,
    };

    fn db() -> Database {
        let db = Database::in_memory(BufferPoolConfig::default());
        db.create_table(
            TableSchema::new("F", TableClass::MetadataGiven)
                .column("file_id", DataType::Int64)
                .column("station", DataType::Text)
                .primary_key(["file_id"]),
            Disposition::Resident,
        )
        .unwrap();
        db.create_table(
            TableSchema::new("D", TableClass::ActualData)
                .column("file_id", DataType::Int64)
                .column("sample_value", DataType::Float64)
                .foreign_key(["file_id"], "F", ["file_id"]),
            Disposition::Resident,
        )
        .unwrap();
        db.append(
            "F",
            &[
                ColumnData::Int64(vec![1, 2]),
                ColumnData::Text(TextColumn::from_strs(["ISK", "FIAM"])),
            ],
            ConstraintPolicy::all(),
        )
        .unwrap();
        db.append(
            "D",
            &[
                ColumnData::Int64(vec![1, 1, 2, 2]),
                ColumnData::Float64(vec![1.0, 3.0, 100.0, 200.0]),
            ],
            ConstraintPolicy::all(),
        )
        .unwrap();
        db
    }

    #[test]
    fn scan_with_predicate_and_provenance() {
        let db = db();
        let rel = scan_base_table(
            &db,
            "D",
            &["D.file_id".into(), "D.sample_value".into()],
            Some(&Expr::col("D.sample_value").cmp(CmpOp::Gt, Expr::lit(2.0))),
        )
        .unwrap();
        assert_eq!(rel.rows(), 3);
        assert_eq!(rel.provenance().unwrap().rows, vec![1, 2, 3]);
    }

    #[test]
    fn full_pipeline_hash_join_aggregate() {
        let db = db();
        let ctx = ExecContext::new(&db);
        // AVG(sample_value) of station ISK via hash join.
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::HashJoin {
                left: Box::new(PhysicalPlan::SeqScan {
                    table: "D".into(),
                    columns: vec!["D.file_id".into(), "D.sample_value".into()],
                    predicate: None,
                }),
                right: Box::new(PhysicalPlan::SeqScan {
                    table: "F".into(),
                    columns: vec!["F.file_id".into(), "F.station".into()],
                    predicate: Some(Expr::col("F.station").eq(Expr::lit("ISK"))),
                }),
                left_keys: vec![Expr::col("D.file_id")],
                right_keys: vec![Expr::col("F.file_id")],
            }),
            group_by: vec![],
            aggs: vec![("avg_v".into(), AggFunc::Avg, Expr::col("D.sample_value"))],
        };
        let out = execute(&plan, &ctx).unwrap();
        assert_eq!(out.value(0, "avg_v").unwrap(), Value::Float(2.0));
    }

    #[test]
    fn index_join_path() {
        let db = db();
        db.build_join_indices("D").unwrap();
        let ctx = ExecContext::new(&db);
        let plan = PhysicalPlan::IndexJoin {
            child: Box::new(PhysicalPlan::SeqScan {
                table: "D".into(),
                columns: vec!["D.file_id".into(), "D.sample_value".into()],
                predicate: Some(Expr::col("D.sample_value").cmp(CmpOp::Gt, Expr::lit(1.5))),
            }),
            child_table: "D".into(),
            parent_table: "F".into(),
            parent_columns: vec!["F.file_id".into(), "F.station".into()],
            parent_predicate: Some(Expr::col("F.station").eq(Expr::lit("FIAM"))),
        };
        let out = execute(&plan, &ctx).unwrap();
        assert_eq!(out.rows(), 2);
        assert_eq!(out.value(0, "D.sample_value").unwrap(), Value::Float(100.0));
    }

    fn chunk_ctx(db: &Database) -> ExecContext<'_> {
        let mut ctx = ExecContext::new(db);
        let mk = |vals: Vec<f64>, ids: Vec<i64>| {
            Arc::new(
                Relation::new(vec![
                    ("D.file_id".into(), ColumnData::Int64(ids)),
                    ("D.sample_value".into(), ColumnData::Float64(vals)),
                ])
                .unwrap(),
            )
        };
        ctx.chunks.insert("a".into(), mk(vec![1.0, 5.0], vec![1, 1]));
        ctx.chunks.insert("b".into(), mk(vec![7.0], vec![2]));
        ctx
    }

    fn union_plan(pushdown: bool) -> PhysicalPlan {
        PhysicalPlan::ChunkUnion {
            table: "D".into(),
            chunks: vec![
                ChunkRef { uri: "a".into(), cached: false },
                ChunkRef { uri: "b".into(), cached: true },
            ],
            columns: vec!["D.file_id".into(), "D.sample_value".into()],
            predicate: Some(Expr::col("D.sample_value").cmp(CmpOp::Gt, Expr::lit(2.0))),
            pushdown,
            projected_decode: false,
        }
    }

    #[test]
    fn chunk_union_with_pushdown() {
        let db = db();
        let ctx = chunk_ctx(&db);
        let out = execute(&union_plan(true), &ctx).unwrap();
        assert_eq!(out.rows(), 2);
        // Same result without pushdown.
        let out2 = execute(&union_plan(false), &ctx).unwrap();
        assert_eq!(out2.rows(), 2);
        // Union materialization is counted.
        assert!(ctx.counters.union_rows.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn chunk_union_parallel_matches_serial() {
        let db = db();
        let mut ctx = chunk_ctx(&db);
        let serial = execute(&union_plan(true), &ctx).unwrap();
        ctx.workers = 4;
        let parallel = execute(&union_plan(true), &ctx).unwrap();
        assert_eq!(serial.rows(), parallel.rows());
        for r in 0..serial.rows() {
            assert_eq!(
                serial.value(r, "D.sample_value").unwrap(),
                parallel.value(r, "D.sample_value").unwrap()
            );
        }
    }

    #[test]
    fn partial_agg_union_fuses_and_matches_aggregate_over_union() {
        let db = db();
        let mut ctx = chunk_ctx(&db);
        ctx.workers = 4;
        let agg_over_union = PhysicalPlan::Aggregate {
            input: Box::new(union_plan(true)),
            group_by: vec![("fid".into(), Expr::col("D.file_id"))],
            aggs: vec![
                ("n".into(), AggFunc::Count, Expr::col("D.sample_value")),
                ("avg_v".into(), AggFunc::Avg, Expr::col("D.sample_value")),
            ],
        };
        let fused = fuse_partial_agg(agg_over_union.clone());
        assert_eq!(fused.partial_agg_count(), 1, "fusion fires: {fused}");
        let want = execute(&agg_over_union, &ctx).unwrap();
        let union_rows = ctx.counters.union_rows.load(Ordering::Relaxed);
        let got = execute(&fused, &ctx).unwrap();
        // Partial aggregation did not materialize any further union.
        assert_eq!(ctx.counters.union_rows.load(Ordering::Relaxed), union_rows);
        assert_eq!(ctx.counters.partial_agg_chunks.load(Ordering::Relaxed), 2);
        assert_eq!(want.rows(), got.rows());
        for r in 0..want.rows() {
            for name in ["fid", "n", "avg_v"] {
                assert_eq!(want.value(r, name).unwrap(), got.value(r, name).unwrap());
            }
        }
    }

    #[test]
    fn partial_agg_union_with_join_matches_unfused() {
        let db = db();
        let mut ctx = chunk_ctx(&db);
        ctx.workers = 2;
        let join = PhysicalPlan::HashJoin {
            left: Box::new(union_plan(true)),
            right: Box::new(PhysicalPlan::SeqScan {
                table: "F".into(),
                columns: vec!["F.file_id".into(), "F.station".into()],
                predicate: None,
            }),
            left_keys: vec![Expr::col("D.file_id")],
            right_keys: vec![Expr::col("F.file_id")],
        };
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(join),
                predicate: Expr::col("F.station").eq(Expr::lit("FIAM")),
            }),
            group_by: vec![],
            aggs: vec![("s".into(), AggFunc::Sum, Expr::col("D.sample_value"))],
        };
        let fused = fuse_partial_agg(plan.clone());
        assert_eq!(fused.partial_agg_count(), 1, "join shape fuses: {fused}");
        let want = execute(&plan, &ctx).unwrap();
        let got = execute(&fused, &ctx).unwrap();
        assert_eq!(want.value(0, "s").unwrap(), got.value(0, "s").unwrap());
        // No-pushdown unions do not fuse (they are the ablation baseline).
        let unfused = fuse_partial_agg(PhysicalPlan::Aggregate {
            input: Box::new(union_plan(false)),
            group_by: vec![],
            aggs: vec![("n".into(), AggFunc::Count, Expr::col("D.sample_value"))],
        });
        assert_eq!(unfused.partial_agg_count(), 0);
    }

    #[test]
    fn partial_agg_union_fuses_through_project() {
        use crate::expr::ArithOp;
        let db = db();
        let mut ctx = chunk_ctx(&db);
        ctx.workers = 2;
        // Aggregate over a computed projection of the chunk rows.
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::Project {
                input: Box::new(union_plan(true)),
                exprs: vec![(
                    "doubled".into(),
                    Expr::Arith(
                        ArithOp::Mul,
                        Box::new(Expr::col("D.sample_value")),
                        Box::new(Expr::lit(2.0)),
                    ),
                )],
            }),
            group_by: vec![],
            aggs: vec![("s".into(), AggFunc::Sum, Expr::col("doubled"))],
        };
        let fused = fuse_partial_agg(plan.clone());
        assert_eq!(fused.partial_agg_count(), 1, "project chain fuses: {fused}");
        let want = execute(&plan, &ctx).unwrap();
        let got = execute(&fused, &ctx).unwrap();
        assert_eq!(want.value(0, "s").unwrap(), got.value(0, "s").unwrap());
    }

    #[test]
    fn partial_agg_union_empty_chunks_keeps_schema() {
        let db = db();
        let ctx = ExecContext::new(&db);
        let plan = PhysicalPlan::PartialAggUnion {
            table: "D".into(),
            chunks: vec![],
            columns: vec!["D.file_id".into(), "D.sample_value".into()],
            projected_decode: false,
            predicate: None,
            join: None,
            ops: vec![],
            group_by: vec![],
            aggs: vec![("n".into(), AggFunc::Count, Expr::col("D.sample_value"))],
        };
        let out = execute(&plan, &ctx).unwrap();
        assert_eq!(out.rows(), 0, "global aggregate over empty input");
        assert_eq!(out.width(), 1, "schema preserved");
    }

    #[test]
    fn missing_chunk_is_an_error() {
        let db = db();
        let ctx = ExecContext::new(&db);
        let plan = PhysicalPlan::ChunkUnion {
            table: "D".into(),
            chunks: vec![ChunkRef { uri: "missing".into(), cached: false }],
            columns: vec!["D.file_id".into()],
            predicate: None,
            pushdown: true,
            projected_decode: false,
        };
        assert!(matches!(execute(&plan, &ctx), Err(EngineError::Chunk(_))));
    }

    #[test]
    fn result_scan_reads_materialized() {
        let db = db();
        let mut ctx = ExecContext::new(&db);
        ctx.materialized.push(Arc::new(
            Relation::new(vec![("x".into(), ColumnData::Int64(vec![42]))]).unwrap(),
        ));
        let out = execute(&PhysicalPlan::ResultScan { id: 0 }, &ctx).unwrap();
        assert_eq!(out.value(0, "x").unwrap(), Value::Int(42));
        // The scan shares the stored payloads (no deep copy).
        assert!(Arc::ptr_eq(&out.columns()[0].1, &ctx.materialized[0].columns()[0].1));
        assert!(execute(&PhysicalPlan::ResultScan { id: 7 }, &ctx).is_err());
    }

    #[test]
    fn project_sort_limit_pipeline() {
        let db = db();
        let ctx = ExecContext::new(&db);
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Sort {
                input: Box::new(PhysicalPlan::Project {
                    input: Box::new(PhysicalPlan::SeqScan {
                        table: "D".into(),
                        columns: vec!["D.sample_value".into()],
                        predicate: None,
                    }),
                    exprs: vec![("v".into(), Expr::col("D.sample_value"))],
                }),
                keys: vec![("v".into(), false)],
            }),
            n: 2,
        };
        let out = execute(&plan, &ctx).unwrap();
        assert_eq!(out.rows(), 2);
        assert_eq!(out.value(0, "v").unwrap(), Value::Float(200.0));
    }
}
