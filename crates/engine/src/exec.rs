//! The bulk (column-at-a-time) executor.
//!
//! Executes a [`PhysicalPlan`] bottom-up, materializing every
//! intermediate [`Relation`] — MonetDB's execution style, which the
//! paper's two-stage model builds on. Chunk data for
//! [`PhysicalPlan::ChunkUnion`] must have been pre-loaded into the
//! [`ExecContext`] by the two-stage driver (the paper's run-time
//! optimizer inserts the load statements before `Qs` resumes; see
//! [`crate::twostage`]).

use crate::agg::{aggregate, distinct};
use crate::error::{EngineError, Result};
use crate::eval::{eval_mask, eval_scalar};
use crate::join::{cross_join, hash_join, index_join};
use crate::physical::PhysicalPlan;
use crate::relation::Relation;
use crate::sort::{limit, sort_relation};
use sommelier_storage::Database;
use std::collections::HashMap;
use std::sync::Arc;

/// Everything the executor needs besides the plan.
pub struct ExecContext<'a> {
    pub db: &'a Database,
    /// Materialized stage-1 results, indexed by `ResultScan { id }`.
    pub materialized: Vec<Relation>,
    /// Pre-loaded chunk relations by URI (cache-scans and chunk-accesses
    /// both resolve here; the driver fills it).
    pub chunks: HashMap<String, Arc<Relation>>,
}

impl<'a> ExecContext<'a> {
    /// A context with no stage-1 results or chunks.
    pub fn new(db: &'a Database) -> Self {
        ExecContext { db, materialized: Vec::new(), chunks: HashMap::new() }
    }
}

/// Scan a base table into a qualified, provenance-carrying relation.
pub fn scan_base_table(
    db: &Database,
    table: &str,
    columns: &[String],
    predicate: Option<&crate::expr::Expr>,
) -> Result<Relation> {
    let prefix = format!("{table}.");
    let raw: Vec<&str> = columns
        .iter()
        .map(|c| {
            c.strip_prefix(&prefix).ok_or_else(|| {
                EngineError::Plan(format!("scan column {c:?} not qualified by {table}"))
            })
        })
        .collect::<Result<_>>()?;
    let data = db.scan_columns(table, &raw)?;
    let rel = Relation::new(columns.iter().cloned().zip(data).collect())?;
    let rows: Vec<u32> = (0..rel.rows() as u32).collect();
    let rel = rel.with_provenance(table, rows);
    match predicate {
        Some(p) => {
            let mask = eval_mask(p, &rel)?;
            Ok(rel.filter(&mask))
        }
        None => Ok(rel),
    }
}

/// Execute a physical plan.
pub fn execute(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<Relation> {
    match plan {
        PhysicalPlan::SeqScan { table, columns, predicate } => {
            scan_base_table(ctx.db, table, columns, predicate.as_ref())
        }
        PhysicalPlan::ResultScan { id } => ctx
            .materialized
            .get(*id)
            .cloned()
            .ok_or_else(|| EngineError::Exec(format!("no materialized result #{id}"))),
        PhysicalPlan::ChunkUnion { table, chunks, columns, predicate, pushdown } => {
            if chunks.is_empty() {
                // Stage 1 selected no files: an empty relation with the
                // base table's schema (so joins above keep working).
                let schema = ctx.db.table_schema(table)?;
                let prefix = format!("{table}.");
                let cols = columns
                    .iter()
                    .map(|c| {
                        let raw = c.strip_prefix(&prefix).ok_or_else(|| {
                            EngineError::Plan(format!(
                                "chunk column {c:?} not qualified by {table}"
                            ))
                        })?;
                        let dtype = schema.col_type(raw)?;
                        Ok((c.clone(), sommelier_storage::ColumnData::empty(dtype)))
                    })
                    .collect::<Result<Vec<_>>>()?;
                return Relation::new(cols);
            }
            let mut out = Relation::empty();
            for chunk in chunks {
                let rel = ctx.chunks.get(&chunk.uri).ok_or_else(|| {
                    EngineError::Chunk(format!("chunk {:?} was not pre-loaded", chunk.uri))
                })?;
                // Per-chunk projection (and selection, if pushed down).
                let wanted: Vec<(String, String)> =
                    columns.iter().map(|c| (c.clone(), c.clone())).collect();
                let mut part = rel.project_named(&wanted)?;
                if *pushdown {
                    if let Some(p) = predicate {
                        let mask = eval_mask(p, &part)?;
                        part = part.filter(&mask);
                    }
                }
                out.union_in_place(&part)?;
            }
            if !*pushdown {
                if let Some(p) = predicate {
                    if out.rows() > 0 {
                        let mask = eval_mask(p, &out)?;
                        out = out.filter(&mask);
                    }
                }
            }
            // An empty union (zero chunks selected) still needs a schema
            // so joins above keep working.
            if out.width() == 0 {
                return Err(EngineError::Chunk(
                    "chunk union over zero chunks has no schema; stage-1 selected no files"
                        .into(),
                ));
            }
            Ok(out)
        }
        PhysicalPlan::HashJoin { left, right, left_keys, right_keys } => {
            let l = execute(left, ctx)?;
            let r = execute(right, ctx)?;
            hash_join(&l, &r, left_keys, right_keys)
        }
        PhysicalPlan::IndexJoin {
            child,
            child_table,
            parent_table,
            parent_columns,
            parent_predicate,
        } => {
            let c = execute(child, ctx)?;
            match c.provenance() {
                Some(p) if p.table == *child_table => {}
                _ => {
                    return Err(EngineError::Exec(format!(
                        "index join expected provenance of {child_table}"
                    )))
                }
            }
            let parent = scan_base_table(ctx.db, parent_table, parent_columns, None)?;
            let ji = ctx.db.join_index(child_table, parent_table).ok_or_else(|| {
                EngineError::Exec(format!(
                    "no join index from {child_table} to {parent_table}"
                ))
            })?;
            index_join(&c, &parent, &ji.positions, parent_predicate.as_ref())
        }
        PhysicalPlan::Cross { left, right } => {
            let l = execute(left, ctx)?;
            let r = execute(right, ctx)?;
            cross_join(&l, &r)
        }
        PhysicalPlan::Filter { input, predicate } => {
            let rel = execute(input, ctx)?;
            let mask = eval_mask(predicate, &rel)?;
            Ok(rel.filter(&mask))
        }
        PhysicalPlan::Project { input, exprs } => {
            let rel = execute(input, ctx)?;
            let cols = exprs
                .iter()
                .map(|(name, e)| Ok((name.clone(), eval_scalar(e, &rel)?)))
                .collect::<Result<Vec<_>>>()?;
            Relation::new(cols)
        }
        PhysicalPlan::Aggregate { input, group_by, aggs } => {
            let rel = execute(input, ctx)?;
            aggregate(&rel, group_by, aggs)
        }
        PhysicalPlan::Distinct { input } => {
            let rel = execute(input, ctx)?;
            distinct(&rel)
        }
        PhysicalPlan::Sort { input, keys } => {
            let rel = execute(input, ctx)?;
            sort_relation(&rel, keys)
        }
        PhysicalPlan::Limit { input, n } => {
            let rel = execute(input, ctx)?;
            Ok(limit(&rel, *n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, CmpOp, Expr};
    use crate::physical::ChunkRef;
    use sommelier_storage::buffer::BufferPoolConfig;
    use sommelier_storage::catalog::Disposition;
    use sommelier_storage::column::TextColumn;
    use sommelier_storage::{
        ColumnData, ConstraintPolicy, DataType, TableClass, TableSchema, Value,
    };

    fn db() -> Database {
        let db = Database::in_memory(BufferPoolConfig::default());
        db.create_table(
            TableSchema::new("F", TableClass::MetadataGiven)
                .column("file_id", DataType::Int64)
                .column("station", DataType::Text)
                .primary_key(["file_id"]),
            Disposition::Resident,
        )
        .unwrap();
        db.create_table(
            TableSchema::new("D", TableClass::ActualData)
                .column("file_id", DataType::Int64)
                .column("sample_value", DataType::Float64)
                .foreign_key(["file_id"], "F", ["file_id"]),
            Disposition::Resident,
        )
        .unwrap();
        db.append(
            "F",
            &[
                ColumnData::Int64(vec![1, 2]),
                ColumnData::Text(TextColumn::from_strs(["ISK", "FIAM"])),
            ],
            ConstraintPolicy::all(),
        )
        .unwrap();
        db.append(
            "D",
            &[
                ColumnData::Int64(vec![1, 1, 2, 2]),
                ColumnData::Float64(vec![1.0, 3.0, 100.0, 200.0]),
            ],
            ConstraintPolicy::all(),
        )
        .unwrap();
        db
    }

    #[test]
    fn scan_with_predicate_and_provenance() {
        let db = db();
        let rel = scan_base_table(
            &db,
            "D",
            &["D.file_id".into(), "D.sample_value".into()],
            Some(&Expr::col("D.sample_value").cmp(CmpOp::Gt, Expr::lit(2.0))),
        )
        .unwrap();
        assert_eq!(rel.rows(), 3);
        assert_eq!(rel.provenance().unwrap().rows, vec![1, 2, 3]);
    }

    #[test]
    fn full_pipeline_hash_join_aggregate() {
        let db = db();
        let ctx = ExecContext::new(&db);
        // AVG(sample_value) of station ISK via hash join.
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::HashJoin {
                left: Box::new(PhysicalPlan::SeqScan {
                    table: "D".into(),
                    columns: vec!["D.file_id".into(), "D.sample_value".into()],
                    predicate: None,
                }),
                right: Box::new(PhysicalPlan::SeqScan {
                    table: "F".into(),
                    columns: vec!["F.file_id".into(), "F.station".into()],
                    predicate: Some(Expr::col("F.station").eq(Expr::lit("ISK"))),
                }),
                left_keys: vec![Expr::col("D.file_id")],
                right_keys: vec![Expr::col("F.file_id")],
            }),
            group_by: vec![],
            aggs: vec![("avg_v".into(), AggFunc::Avg, Expr::col("D.sample_value"))],
        };
        let out = execute(&plan, &ctx).unwrap();
        assert_eq!(out.value(0, "avg_v").unwrap(), Value::Float(2.0));
    }

    #[test]
    fn index_join_path() {
        let db = db();
        db.build_join_indices("D").unwrap();
        let ctx = ExecContext::new(&db);
        let plan = PhysicalPlan::IndexJoin {
            child: Box::new(PhysicalPlan::SeqScan {
                table: "D".into(),
                columns: vec!["D.file_id".into(), "D.sample_value".into()],
                predicate: Some(Expr::col("D.sample_value").cmp(CmpOp::Gt, Expr::lit(1.5))),
            }),
            child_table: "D".into(),
            parent_table: "F".into(),
            parent_columns: vec!["F.file_id".into(), "F.station".into()],
            parent_predicate: Some(Expr::col("F.station").eq(Expr::lit("FIAM"))),
        };
        let out = execute(&plan, &ctx).unwrap();
        assert_eq!(out.rows(), 2);
        assert_eq!(out.value(0, "D.sample_value").unwrap(), Value::Float(100.0));
    }

    #[test]
    fn chunk_union_with_pushdown() {
        let db = db();
        let mut ctx = ExecContext::new(&db);
        let mk = |vals: Vec<f64>, ids: Vec<i64>| {
            Arc::new(
                Relation::new(vec![
                    ("D.file_id".into(), ColumnData::Int64(ids)),
                    ("D.sample_value".into(), ColumnData::Float64(vals)),
                ])
                .unwrap(),
            )
        };
        ctx.chunks.insert("a".into(), mk(vec![1.0, 5.0], vec![1, 1]));
        ctx.chunks.insert("b".into(), mk(vec![7.0], vec![2]));
        let plan = PhysicalPlan::ChunkUnion {
            table: "D".into(),
            chunks: vec![
                ChunkRef { uri: "a".into(), cached: false },
                ChunkRef { uri: "b".into(), cached: true },
            ],
            columns: vec!["D.file_id".into(), "D.sample_value".into()],
            predicate: Some(Expr::col("D.sample_value").cmp(CmpOp::Gt, Expr::lit(2.0))),
            pushdown: true,
        };
        let out = execute(&plan, &ctx).unwrap();
        assert_eq!(out.rows(), 2);
        // Same result without pushdown.
        let plan2 = match plan {
            PhysicalPlan::ChunkUnion { table, chunks, columns, predicate, .. } => {
                PhysicalPlan::ChunkUnion {
                    table,
                    chunks,
                    columns,
                    predicate,
                    pushdown: false,
                }
            }
            _ => unreachable!(),
        };
        let out2 = execute(&plan2, &ctx).unwrap();
        assert_eq!(out2.rows(), 2);
    }

    #[test]
    fn missing_chunk_is_an_error() {
        let db = db();
        let ctx = ExecContext::new(&db);
        let plan = PhysicalPlan::ChunkUnion {
            table: "D".into(),
            chunks: vec![ChunkRef { uri: "missing".into(), cached: false }],
            columns: vec!["D.file_id".into()],
            predicate: None,
            pushdown: true,
        };
        assert!(matches!(execute(&plan, &ctx), Err(EngineError::Chunk(_))));
    }

    #[test]
    fn result_scan_reads_materialized() {
        let db = db();
        let mut ctx = ExecContext::new(&db);
        ctx.materialized
            .push(Relation::new(vec![("x".into(), ColumnData::Int64(vec![42]))]).unwrap());
        let out = execute(&PhysicalPlan::ResultScan { id: 0 }, &ctx).unwrap();
        assert_eq!(out.value(0, "x").unwrap(), Value::Int(42));
        assert!(execute(&PhysicalPlan::ResultScan { id: 7 }, &ctx).is_err());
    }

    #[test]
    fn project_sort_limit_pipeline() {
        let db = db();
        let ctx = ExecContext::new(&db);
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Sort {
                input: Box::new(PhysicalPlan::Project {
                    input: Box::new(PhysicalPlan::SeqScan {
                        table: "D".into(),
                        columns: vec!["D.sample_value".into()],
                        predicate: None,
                    }),
                    exprs: vec![("v".into(), Expr::col("D.sample_value"))],
                }),
                keys: vec![("v".into(), false)],
            }),
            n: 2,
        };
        let out = execute(&plan, &ctx).unwrap();
        assert_eq!(out.rows(), 2);
        assert_eq!(out.value(0, "v").unwrap(), Value::Float(200.0));
    }
}
