//! Scalar expressions, comparison/arithmetic operators, aggregates.

use sommelier_storage::Value;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Apply to an ordering result.
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less | Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less | Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater | Equal)
        )
    }

    /// The operator with flipped operand order (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl ArithOp {
    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// Floor a timestamp to its hour — the `H` window bucketing.
    HourBucket,
    /// Floor a timestamp to its day.
    DayBucket,
    /// Floor a timestamp to an arbitrary bucket width:
    /// `TIME_BUCKET(ts, width_ms)`. Generalizes the fixed hour/day
    /// buckets so source adapters can declare any derived-metadata
    /// window granularity.
    TimeBucket,
    /// Absolute value.
    Abs,
}

impl Func {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            Func::HourBucket => "HOUR_BUCKET",
            Func::DayBucket => "DAY_BUCKET",
            Func::TimeBucket => "TIME_BUCKET",
            Func::Abs => "ABS",
        }
    }

    /// Look up by (case-insensitive) name.
    pub fn from_name(name: &str) -> Option<Func> {
        match name.to_ascii_uppercase().as_str() {
            "HOUR_BUCKET" => Some(Func::HourBucket),
            "DAY_BUCKET" => Some(Func::DayBucket),
            "TIME_BUCKET" => Some(Func::TimeBucket),
            "ABS" => Some(Func::Abs),
            _ => None,
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
    /// Population standard deviation (what the paper's `window_std_dev`
    /// summary metadata stores).
    StdDev,
}

impl AggFunc {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::StdDev => "STDDEV",
        }
    }

    /// Look up by (case-insensitive) name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "STDDEV" | "STDDEV_POP" => Some(AggFunc::StdDev),
            _ => None,
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference (possibly qualified).
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Scalar function call.
    Call(Func, Vec<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self op other`.
    pub fn cmp(self, op: CmpOp, other: Expr) -> Expr {
        Expr::Cmp(op, Box::new(self), Box::new(other))
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Eq, other)
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// Conjoin many predicates (None for empty input).
    pub fn conjoin(preds: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        preds.into_iter().reduce(Expr::and)
    }

    /// All column names referenced by this expression.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit_columns(&mut |c| out.push(c));
        out
    }

    fn visit_columns<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        match self {
            Expr::Col(c) => f(c),
            Expr::Lit(_) => {}
            Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) | Expr::Arith(_, a, b) => {
                a.visit_columns(f);
                b.visit_columns(f);
            }
            Expr::Not(a) => a.visit_columns(f),
            Expr::Call(_, args) => {
                for a in args {
                    a.visit_columns(f);
                }
            }
        }
    }

    /// Rewrite every column reference through `f` (e.g. re-qualifying).
    pub fn map_columns(&self, f: &impl Fn(&str) -> String) -> Expr {
        match self {
            Expr::Col(c) => Expr::Col(f(c)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => {
                Expr::Cmp(*op, Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
            Expr::And(a, b) => {
                Expr::And(Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
            Expr::Or(a, b) => {
                Expr::Or(Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
            Expr::Not(a) => Expr::Not(Box::new(a.map_columns(f))),
            Expr::Arith(op, a, b) => {
                Expr::Arith(*op, Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
            Expr::Call(func, args) => {
                Expr::Call(*func, args.iter().map(|a| a.map_columns(f)).collect())
            }
        }
    }

    /// Split a conjunction into its factors.
    pub fn split_conjunction(self) -> Vec<Expr> {
        match self {
            Expr::And(a, b) => {
                let mut out = a.split_conjunction();
                out.extend(b.split_conjunction());
                out
            }
            other => vec![other],
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Cmp(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "(NOT {a})"),
            Expr::Arith(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Call(func, args) => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn cmp_semantics() {
        assert!(CmpOp::Eq.test(Ordering::Equal));
        assert!(!CmpOp::Eq.test(Ordering::Less));
        assert!(CmpOp::Ne.test(Ordering::Less));
        assert!(CmpOp::Le.test(Ordering::Equal));
        assert!(CmpOp::Gt.test(Ordering::Greater));
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    }

    #[test]
    fn columns_collects_all_refs() {
        let e = Expr::col("F.station").eq(Expr::lit("ISK")).and(
            Expr::Call(Func::HourBucket, vec![Expr::col("D.sample_time")])
                .eq(Expr::col("H.ts")),
        );
        let mut cols = e.columns();
        cols.sort();
        assert_eq!(cols, vec!["D.sample_time", "F.station", "H.ts"]);
    }

    #[test]
    fn split_and_conjoin_roundtrip() {
        let parts = vec![
            Expr::col("a").eq(Expr::lit(1i64)),
            Expr::col("b").eq(Expr::lit(2i64)),
            Expr::col("c").eq(Expr::lit(3i64)),
        ];
        let joined = Expr::conjoin(parts.clone()).unwrap();
        assert_eq!(joined.split_conjunction(), parts);
        assert!(Expr::conjoin(vec![]).is_none());
    }

    #[test]
    fn map_columns_requalifies() {
        let e = Expr::col("station").eq(Expr::lit("ISK"));
        let q = e.map_columns(&|c| format!("F.{c}"));
        assert_eq!(q.columns(), vec!["F.station"]);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::col("x")
            .cmp(CmpOp::Ge, Expr::lit(3i64))
            .or(Expr::Not(Box::new(Expr::col("y").eq(Expr::lit("a")))));
        assert_eq!(e.to_string(), "((x >= 3) OR (NOT (y = 'a')))");
    }

    #[test]
    fn agg_and_func_lookup() {
        assert_eq!(AggFunc::from_name("avg"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::from_name("STDDEV_POP"), Some(AggFunc::StdDev));
        assert_eq!(AggFunc::from_name("median"), None);
        assert_eq!(Func::from_name("hour_bucket"), Some(Func::HourBucket));
        assert_eq!(Func::from_name("nope"), None);
    }
}
