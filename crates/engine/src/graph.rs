//! The colored query graph of §III.
//!
//! Vertices are base tables: **red** for metadata tables (given or
//! derived), **black** for actual-data tables. Edges are join
//! predicates: **red** between two red vertices, **black** between two
//! black vertices, **blue** between a red and a black vertex. The
//! join-order rules R1–R4 ([`crate::joinorder`]) operate on this graph.

use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::spec::{JoinEdge, QuerySpec};
use sommelier_storage::TableClass;

/// Vertex color (table classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VertexColor {
    /// Metadata table (given or derived).
    Red,
    /// Actual-data table.
    Black,
}

/// Edge color derived from its endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeColor {
    /// red–red: metadata joins, evaluated first (R1).
    Red,
    /// red–black: the bridge from metadata into actual data.
    Blue,
    /// black–black: actual-data joins, evaluated last (R4).
    Black,
}

/// One graph vertex.
#[derive(Debug, Clone)]
pub struct Vertex {
    pub table: String,
    pub color: VertexColor,
    /// Conjoined single-table selection, if any (drives the greedy
    /// start-vertex choice: selective tables first).
    pub predicate: Option<Expr>,
}

/// One graph edge.
#[derive(Debug, Clone)]
pub struct GraphEdge {
    pub a: usize,
    pub b: usize,
    pub color: EdgeColor,
    pub join: JoinEdge,
}

/// The query graph.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    pub vertices: Vec<Vertex>,
    pub edges: Vec<GraphEdge>,
}

impl QueryGraph {
    /// Build from a validated spec, coloring vertices and edges.
    pub fn from_spec(spec: &QuerySpec) -> Result<Self> {
        spec.validate()?;
        let vertices: Vec<Vertex> = spec
            .tables
            .iter()
            .map(|t| Vertex {
                table: t.name.clone(),
                color: match t.class {
                    TableClass::ActualData => VertexColor::Black,
                    _ => VertexColor::Red,
                },
                predicate: spec.table_predicate(&t.name),
            })
            .collect();
        let index_of = |name: &str| -> Result<usize> {
            vertices.iter().position(|v| v.table == name).ok_or_else(|| {
                EngineError::Plan(format!("edge references unknown table {name:?}"))
            })
        };
        let mut edges = Vec::with_capacity(spec.joins.len());
        for j in &spec.joins {
            let a = index_of(&j.left)?;
            let b = index_of(&j.right)?;
            let color = match (vertices[a].color, vertices[b].color) {
                (VertexColor::Red, VertexColor::Red) => EdgeColor::Red,
                (VertexColor::Black, VertexColor::Black) => EdgeColor::Black,
                _ => EdgeColor::Blue,
            };
            edges.push(GraphEdge { a, b, color, join: j.clone() });
        }
        Ok(QueryGraph { vertices, edges })
    }

    /// Vertex indices of the given color.
    pub fn vertices_of(&self, color: VertexColor) -> Vec<usize> {
        (0..self.vertices.len()).filter(|&i| self.vertices[i].color == color).collect()
    }

    /// Edges touching vertex `v` whose other endpoint is in `covered`.
    pub fn edges_into(&self, v: usize, covered: &[bool]) -> Vec<&GraphEdge> {
        self.edges
            .iter()
            .filter(|e| (e.a == v && covered[e.b]) || (e.b == v && covered[e.a]))
            .collect()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::expr::Func;
    use crate::spec::{OutputExpr, TableRef};

    /// The windowdataview-shaped query: F, S, H red; D black.
    pub(crate) fn windowish_spec() -> QuerySpec {
        QuerySpec {
            tables: vec![
                TableRef { name: "F".into(), class: TableClass::MetadataGiven },
                TableRef { name: "S".into(), class: TableClass::MetadataGiven },
                TableRef { name: "H".into(), class: TableClass::MetadataDerived },
                TableRef { name: "D".into(), class: TableClass::ActualData },
            ],
            joins: vec![
                JoinEdge::new(
                    "F",
                    "S",
                    vec![Expr::col("F.file_id")],
                    vec![Expr::col("S.file_id")],
                )
                .unwrap(),
                JoinEdge::new(
                    "F",
                    "H",
                    vec![Expr::col("F.station"), Expr::col("F.channel")],
                    vec![Expr::col("H.window_station"), Expr::col("H.window_channel")],
                )
                .unwrap(),
                JoinEdge::new(
                    "S",
                    "D",
                    vec![Expr::col("S.seg_id")],
                    vec![Expr::col("D.seg_id")],
                )
                .unwrap(),
                JoinEdge::new(
                    "D",
                    "H",
                    vec![Expr::Call(Func::HourBucket, vec![Expr::col("D.sample_time")])],
                    vec![Expr::col("H.window_start_ts")],
                )
                .unwrap(),
            ],
            predicates: vec![("F".into(), Expr::col("F.station").eq(Expr::lit("FIAM")))],
            output: vec![OutputExpr::Column {
                name: "v".into(),
                expr: Expr::col("D.sample_value"),
            }],
            ..QuerySpec::default()
        }
    }

    #[test]
    fn coloring_matches_paper() {
        let g = QueryGraph::from_spec(&windowish_spec()).unwrap();
        assert_eq!(g.vertices_of(VertexColor::Red).len(), 3);
        assert_eq!(g.vertices_of(VertexColor::Black), vec![3]);
        let colors: Vec<EdgeColor> = g.edges.iter().map(|e| e.color).collect();
        assert_eq!(
            colors,
            vec![EdgeColor::Red, EdgeColor::Red, EdgeColor::Blue, EdgeColor::Blue]
        );
    }

    #[test]
    fn predicates_attach_to_vertices() {
        let g = QueryGraph::from_spec(&windowish_spec()).unwrap();
        assert!(g.vertices[0].predicate.is_some());
        assert!(g.vertices[1].predicate.is_none());
    }

    #[test]
    fn edges_into_respects_cover() {
        let g = QueryGraph::from_spec(&windowish_spec()).unwrap();
        // Nothing covered: no edges in.
        assert!(g.edges_into(3, &[false, false, false, false]).is_empty());
        // With S covered, D connects via one blue edge.
        let es = g.edges_into(3, &[false, true, false, false]);
        assert_eq!(es.len(), 1);
        assert_eq!(es[0].color, EdgeColor::Blue);
        // With S and H covered, D connects via two edges.
        assert_eq!(g.edges_into(3, &[false, true, true, false]).len(), 2);
    }
}
