//! Logical query plans.
//!
//! The shape mirrors §III of the paper: a tree of joins over scans with
//! two special marks — [`LogicalPlan::QfMark`] delimits the metadata
//! branch `Qf` (everything below it is evaluated in stage 1), and
//! [`LogicalPlan::LazyScan`] is the deferred `scan(a)` of an actual-data
//! table that the run-time optimizer rewrites into
//! `⋃ cache-scan | chunk-access` once `Qf`'s result is known.

use crate::expr::{AggFunc, Expr};
use std::fmt;

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of a base table with scan-level projection and an optional
    /// pushed-down selection.
    Scan { table: String, columns: Vec<String>, predicate: Option<Expr> },
    /// Deferred scan of an actual-data table (lazy mode only).
    LazyScan { table: String, columns: Vec<String>, predicate: Option<Expr> },
    /// Equi-join (`left_keys[i] = right_keys[i]`).
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
    },
    /// Cross product (rule R2 fallback).
    Cross { left: Box<LogicalPlan>, right: Box<LogicalPlan> },
    /// Residual filter.
    Filter { input: Box<LogicalPlan>, predicate: Expr },
    /// Projection with computed expressions.
    Project { input: Box<LogicalPlan>, exprs: Vec<(String, Expr)> },
    /// Hash aggregation.
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<(String, Expr)>,
        aggs: Vec<(String, AggFunc, Expr)>,
    },
    /// Duplicate elimination.
    Distinct { input: Box<LogicalPlan> },
    /// Ordering.
    Sort { input: Box<LogicalPlan>, keys: Vec<(String, bool)> },
    /// Row-count cap.
    Limit { input: Box<LogicalPlan>, n: usize },
    /// Marks the root of the metadata branch `Qf`.
    QfMark { input: Box<LogicalPlan> },
}

impl LogicalPlan {
    /// All base tables scanned below this node.
    pub fn tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let LogicalPlan::Scan { table, .. } | LogicalPlan::LazyScan { table, .. } = p {
                out.push(table.as_str());
            }
        });
        out
    }

    /// True if any [`LogicalPlan::LazyScan`] occurs below.
    pub fn has_lazy_scan(&self) -> bool {
        let mut found = false;
        self.visit(&mut |p| {
            if matches!(p, LogicalPlan::LazyScan { .. }) {
                found = true;
            }
        });
        found
    }

    /// The `Qf` subtree, if marked.
    pub fn qf(&self) -> Option<&LogicalPlan> {
        let mut found = None;
        self.visit(&mut |p| {
            if let LogicalPlan::QfMark { input } = p {
                if found.is_none() {
                    found = Some(&**input);
                }
            }
        });
        found
    }

    /// Pre-order visit.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a LogicalPlan)) {
        f(self);
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::LazyScan { .. } => {}
            LogicalPlan::Join { left, right, .. } | LogicalPlan::Cross { left, right } => {
                left.visit(f);
                right.visit(f);
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::QfMark { input } => input.visit(f),
        }
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            LogicalPlan::Scan { table, columns, predicate } => {
                write!(f, "{pad}Scan {table} [{}]", columns.join(", "))?;
                if let Some(p) = predicate {
                    write!(f, " where {p}")?;
                }
                writeln!(f)
            }
            LogicalPlan::LazyScan { table, columns, predicate } => {
                write!(f, "{pad}LazyScan {table} [{}]", columns.join(", "))?;
                if let Some(p) = predicate {
                    write!(f, " where {p}")?;
                }
                writeln!(f)
            }
            LogicalPlan::Join { left, right, left_keys, right_keys } => {
                let keys: Vec<String> = left_keys
                    .iter()
                    .zip(right_keys)
                    .map(|(l, r)| format!("{l} = {r}"))
                    .collect();
                writeln!(f, "{pad}Join on {}", keys.join(" AND "))?;
                left.fmt_indent(f, indent + 1)?;
                right.fmt_indent(f, indent + 1)
            }
            LogicalPlan::Cross { left, right } => {
                writeln!(f, "{pad}Cross")?;
                left.fmt_indent(f, indent + 1)?;
                right.fmt_indent(f, indent + 1)
            }
            LogicalPlan::Filter { input, predicate } => {
                writeln!(f, "{pad}Filter {predicate}")?;
                input.fmt_indent(f, indent + 1)
            }
            LogicalPlan::Project { input, exprs } => {
                let cols: Vec<String> =
                    exprs.iter().map(|(n, e)| format!("{e} AS {n}")).collect();
                writeln!(f, "{pad}Project [{}]", cols.join(", "))?;
                input.fmt_indent(f, indent + 1)
            }
            LogicalPlan::Aggregate { input, group_by, aggs } => {
                let gs: Vec<String> =
                    group_by.iter().map(|(n, e)| format!("{e} AS {n}")).collect();
                let asr: Vec<String> = aggs
                    .iter()
                    .map(|(n, a, e)| format!("{}({e}) AS {n}", a.name()))
                    .collect();
                writeln!(
                    f,
                    "{pad}Aggregate group=[{}] aggs=[{}]",
                    gs.join(", "),
                    asr.join(", ")
                )?;
                input.fmt_indent(f, indent + 1)
            }
            LogicalPlan::Distinct { input } => {
                writeln!(f, "{pad}Distinct")?;
                input.fmt_indent(f, indent + 1)
            }
            LogicalPlan::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(c, asc)| format!("{c} {}", if *asc { "ASC" } else { "DESC" }))
                    .collect();
                writeln!(f, "{pad}Sort [{}]", ks.join(", "))?;
                input.fmt_indent(f, indent + 1)
            }
            LogicalPlan::Limit { input, n } => {
                writeln!(f, "{pad}Limit {n}")?;
                input.fmt_indent(f, indent + 1)
            }
            LogicalPlan::QfMark { input } => {
                writeln!(f, "{pad}QfMark  -- stage-1 boundary (metadata branch)")?;
                input.fmt_indent(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(LogicalPlan::LazyScan {
                    table: "D".into(),
                    columns: vec!["D.file_id".into(), "D.sample_value".into()],
                    predicate: None,
                }),
                right: Box::new(LogicalPlan::QfMark {
                    input: Box::new(LogicalPlan::Scan {
                        table: "F".into(),
                        columns: vec!["F.file_id".into()],
                        predicate: Some(Expr::col("F.station").eq(Expr::lit("ISK"))),
                    }),
                }),
                left_keys: vec![Expr::col("D.file_id")],
                right_keys: vec![Expr::col("F.file_id")],
            }),
            group_by: vec![],
            aggs: vec![("avg_v".into(), AggFunc::Avg, Expr::col("D.sample_value"))],
        }
    }

    #[test]
    fn tables_and_lazy_detection() {
        let p = sample();
        assert_eq!(p.tables(), vec!["D", "F"]);
        assert!(p.has_lazy_scan());
        let qf = p.qf().expect("Qf marked");
        assert_eq!(qf.tables(), vec!["F"]);
        assert!(!qf.has_lazy_scan());
    }

    #[test]
    fn display_shows_structure() {
        let s = sample().to_string();
        assert!(s.contains("Aggregate"));
        assert!(s.contains("LazyScan D"));
        assert!(s.contains("QfMark"));
        assert!(s.contains("where (F.station = 'ISK')"));
    }
}
