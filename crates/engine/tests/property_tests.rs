//! Property-based tests on the engine's core invariants: join
//! correctness against a nested-loop oracle, aggregate consistency,
//! sort/limit laws, and relation algebra round trips.

use proptest::prelude::*;
use sommelier_engine::agg::{aggregate, distinct};
use sommelier_engine::expr::{AggFunc, CmpOp, Expr};
use sommelier_engine::join::{cross_join, hash_join};
use sommelier_engine::relation::Relation;
use sommelier_engine::sort::{limit, sort_relation};
use sommelier_storage::ColumnData;

fn int_relation(name_a: &str, name_b: &str, rows: &[(i64, i64)]) -> Relation {
    Relation::new(vec![
        (name_a.to_string(), ColumnData::Int64(rows.iter().map(|r| r.0).collect())),
        (name_b.to_string(), ColumnData::Int64(rows.iter().map(|r| r.1).collect())),
    ])
    .unwrap()
}

proptest! {
    /// Hash join must agree with the O(n·m) nested-loop definition.
    #[test]
    fn hash_join_matches_nested_loop(
        left in proptest::collection::vec((0i64..8, any::<i64>()), 0..40),
        right in proptest::collection::vec((0i64..8, any::<i64>()), 0..40),
    ) {
        let l = int_relation("L.k", "L.v", &left);
        let r = int_relation("R.k", "R.v", &right);
        let joined = hash_join(&l, &r, &[Expr::col("L.k")], &[Expr::col("R.k")]).unwrap();
        // Oracle: multiset of (lk, lv, rk, rv) quadruples.
        let mut expected: Vec<(i64, i64, i64, i64)> = Vec::new();
        for &(lk, lv) in &left {
            for &(rk, rv) in &right {
                if lk == rk {
                    expected.push((lk, lv, rk, rv));
                }
            }
        }
        let mut got: Vec<(i64, i64, i64, i64)> = (0..joined.rows())
            .map(|i| {
                (
                    joined.value(i, "L.k").unwrap().as_i64().unwrap(),
                    joined.value(i, "L.v").unwrap().as_i64().unwrap(),
                    joined.value(i, "R.k").unwrap().as_i64().unwrap(),
                    joined.value(i, "R.v").unwrap().as_i64().unwrap(),
                )
            })
            .collect();
        expected.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// |A × B| = |A|·|B|.
    #[test]
    fn cross_join_cardinality(
        left in proptest::collection::vec((any::<i64>(), any::<i64>()), 0..20),
        right in proptest::collection::vec((any::<i64>(), any::<i64>()), 0..20),
    ) {
        let l = int_relation("L.a", "L.b", &left);
        let r = int_relation("R.a", "R.b", &right);
        let c = cross_join(&l, &r).unwrap();
        prop_assert_eq!(c.rows(), left.len() * right.len());
    }

    /// SUM/COUNT/MIN/MAX from the engine equal a direct fold; grouped
    /// counts sum to the total count.
    #[test]
    fn aggregates_match_direct_fold(
        rows in proptest::collection::vec((0i64..5, -1000i64..1000), 1..60),
    ) {
        let rel = int_relation("g", "v", &rows);
        let out = aggregate(
            &rel,
            &[],
            &[
                ("n".into(), AggFunc::Count, Expr::col("v")),
                ("s".into(), AggFunc::Sum, Expr::col("v")),
                ("mn".into(), AggFunc::Min, Expr::col("v")),
                ("mx".into(), AggFunc::Max, Expr::col("v")),
            ],
        )
        .unwrap();
        prop_assert_eq!(out.value(0, "n").unwrap().as_i64().unwrap(), rows.len() as i64);
        let sum: i64 = rows.iter().map(|r| r.1).sum();
        prop_assert!((out.value(0, "s").unwrap().as_f64().unwrap() - sum as f64).abs() < 1e-6);
        prop_assert_eq!(
            out.value(0, "mn").unwrap().as_i64().unwrap(),
            rows.iter().map(|r| r.1).min().unwrap()
        );
        prop_assert_eq!(
            out.value(0, "mx").unwrap().as_i64().unwrap(),
            rows.iter().map(|r| r.1).max().unwrap()
        );

        // Grouped: per-group counts sum to the total.
        let grouped = aggregate(
            &rel,
            &[("g".into(), Expr::col("g"))],
            &[("n".into(), AggFunc::Count, Expr::col("v"))],
        )
        .unwrap();
        let total: i64 = (0..grouped.rows())
            .map(|i| grouped.value(i, "n").unwrap().as_i64().unwrap())
            .sum();
        prop_assert_eq!(total, rows.len() as i64);
        // Number of groups equals the number of distinct keys.
        let mut keys: Vec<i64> = rows.iter().map(|r| r.0).collect();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(grouped.rows(), keys.len());
    }

    /// Sorting yields a non-decreasing key sequence and preserves the
    /// row multiset; limit caps the row count.
    #[test]
    fn sort_and_limit_laws(
        rows in proptest::collection::vec((any::<i64>(), any::<i64>()), 0..60),
        n in 0usize..70,
    ) {
        let rel = int_relation("k", "v", &rows);
        let sorted = sort_relation(&rel, &[("k".into(), true)]).unwrap();
        prop_assert_eq!(sorted.rows(), rows.len());
        let keys: Vec<i64> = (0..sorted.rows())
            .map(|i| sorted.value(i, "k").unwrap().as_i64().unwrap())
            .collect();
        prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        // Multiset preserved.
        let mut original: Vec<(i64, i64)> = rows.clone();
        let mut back: Vec<(i64, i64)> = (0..sorted.rows())
            .map(|i| {
                (
                    sorted.value(i, "k").unwrap().as_i64().unwrap(),
                    sorted.value(i, "v").unwrap().as_i64().unwrap(),
                )
            })
            .collect();
        original.sort_unstable();
        back.sort_unstable();
        prop_assert_eq!(original, back);
        // Limit law.
        prop_assert_eq!(limit(&rel, n).rows(), rows.len().min(n));
    }

    /// DISTINCT is idempotent and bounded by the input size.
    #[test]
    fn distinct_laws(rows in proptest::collection::vec((0i64..6, 0i64..6), 0..50)) {
        let rel = int_relation("a", "b", &rows);
        let d1 = distinct(&rel).unwrap();
        prop_assert!(d1.rows() <= rel.rows());
        let d2 = distinct(&d1).unwrap();
        prop_assert_eq!(d1.rows(), d2.rows());
        let mut unique: Vec<(i64, i64)> = rows.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(d1.rows(), unique.len());
    }

    /// Filter + union are inverses of a partition: splitting a relation
    /// by a predicate and unioning the parts preserves the multiset.
    #[test]
    fn partition_union_roundtrip(
        rows in proptest::collection::vec((any::<i64>(), any::<i64>()), 0..50),
        threshold in any::<i64>(),
    ) {
        let rel = int_relation("k", "v", &rows);
        let pred = Expr::col("k").cmp(CmpOp::Lt, Expr::lit(threshold));
        let mask = sommelier_engine::eval::eval_mask(&pred, &rel).unwrap();
        let inverse: Vec<bool> = mask.iter().map(|b| !b).collect();
        let mut low = rel.filter(&mask);
        let high = rel.filter(&inverse);
        prop_assert_eq!(low.rows() + high.rows(), rel.rows());
        low.union_in_place(&high).unwrap();
        let mut original: Vec<(i64, i64)> = rows.clone();
        let mut back: Vec<(i64, i64)> = (0..low.rows())
            .map(|i| {
                (
                    low.value(i, "k").unwrap().as_i64().unwrap(),
                    low.value(i, "v").unwrap().as_i64().unwrap(),
                )
            })
            .collect();
        original.sort_unstable();
        back.sort_unstable();
        prop_assert_eq!(original, back);
    }
}
