//! Event hunting — the seismologist's workflow from §II-C of the paper.
//!
//! Derived metadata (hourly summary windows) is materialized
//! *incrementally* as the scientist explores: a first query over a time
//! region derives its windows (Algorithm 1), follow-up queries over the
//! same region answer from the materialized view in milliseconds, and
//! only the hours with interesting windows (high max amplitude + high
//! volatility, the paper's Query 2 condition) have their waveform data
//! ingested at all.
//!
//! ```sh
//! cargo run --release --example event_hunting
//! ```

use sommelier_core::{LoadingMode, Sommelier, SommelierConfig};
use sommelier_mseed::{DatasetSpec, MseedAdapter, Repository};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("sommelier-event-hunting");
    let _ = std::fs::remove_dir_all(&dir);
    // A week of single-station (FIAM) data, reasonably dense.
    let repo = Repository::at(dir.join("repo"));
    let mut spec = DatasetSpec::fiam(1, 512);
    spec.days = 7;
    let stats = repo.generate(&spec)?;
    println!(
        "repository: {} files / {} samples ({:.1} MiB)",
        stats.files,
        stats.samples,
        stats.bytes as f64 / (1024.0 * 1024.0)
    );

    let somm = Sommelier::builder()
        .source(MseedAdapter::new(repo))
        .config(SommelierConfig::default())
        .build()?;
    somm.prepare(LoadingMode::Lazy)?;

    // Step 1 — survey: which hours of the first three days look
    // interesting? This is a T2 query; Algorithm 1 derives the hourly
    // windows for exactly those three days (lazily ingesting the three
    // chunks), then answers from H.
    let survey = "SELECT window_start_ts, window_max_val, window_std_dev FROM H \
                  WHERE window_station = 'FIAM' AND window_channel = 'HHZ' \
                  AND window_start_ts >= '2010-01-01T00:00:00.000' \
                  AND window_start_ts <  '2010-01-04T00:00:00.000' \
                  ORDER BY window_max_val DESC LIMIT 5";
    let t = Instant::now();
    let r = somm.query(survey)?;
    let dmd = r.dmd.as_ref().expect("T2 runs Algorithm 1");
    println!(
        "\nsurvey (T2, first run): {:?} — derived {}/{} windows, {} rows into H",
        t.elapsed(),
        dmd.missing,
        dmd.requested,
        dmd.rows_inserted
    );
    println!("loudest hours:\n{}", r.relation.pretty(5));

    // Step 2 — the same survey again: PSq ⊆ PSm, nothing derived.
    let t = Instant::now();
    let r2 = somm.query(survey)?;
    println!(
        "survey (repeat): {:?} — {} windows missing (answered from the materialized view)",
        t.elapsed(),
        r2.dmd.as_ref().map_or(0, |d| d.missing),
    );

    // Step 3 — drill down: fetch the waveform of hours whose windows
    // show an event signature (paper Query 2 shape: T5). Only chunks of
    // days with qualifying windows are touched.
    let drill = "SELECT D.sample_time, D.sample_value FROM windowdataview \
                 WHERE F.station = 'FIAM' AND F.channel = 'HHZ' \
                 AND H.window_start_ts >= '2010-01-01T00:00:00.000' \
                 AND H.window_start_ts <  '2010-01-04T00:00:00.000' \
                 AND H.window_max_val > 10000 AND H.window_std_dev > 10";
    let t = Instant::now();
    let r3 = somm.query(drill)?;
    println!(
        "\ndrill-down (T5): {:?} — {} qualifying samples from {} chunk(s) \
         ({} served by the recycler)",
        t.elapsed(),
        r3.relation.rows(),
        r3.stats.files_selected,
        r3.stats.cache_hits,
    );

    // Step 4 — short-term/long-term average ratio around the loudest
    // hour (the STA/LTA trigger of §II-C), all from cached chunks.
    if r.relation.rows() > 0 {
        let loudest = r.relation.value(0, "window_start_ts")?;
        let sta = somm.query(&format!(
            "SELECT AVG(ABS(D.sample_value)) FROM dataview \
             WHERE F.station = 'FIAM' \
             AND D.sample_time >= '{loudest}' \
             AND D.sample_time < '{loudest}' + 2000"
        ));
        // Arithmetic on timestamp literals is not in our SQL subset;
        // fall back to the hour window itself.
        let result = match sta {
            Ok(r) => r,
            Err(_) => somm.query(&format!(
                "SELECT AVG(ABS(D.sample_value)) FROM windowdataview \
                 WHERE F.station = 'FIAM' AND H.window_start_ts = '{loudest}'"
            ))?,
        };
        println!("\nSTA around loudest hour {loudest}: \n{}", result.relation.pretty(3));
    }

    println!("\nfinal state: {somm:?}");
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
