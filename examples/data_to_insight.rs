//! Data-to-insight time — the paper's headline claim, in miniature.
//!
//! Prepares the same repository with each of the five loading
//! approaches and measures (a) the preparation time, (b) the time of a
//! first exploratory query, and (c) the storage footprint. The lazy
//! sommelier answers the first question orders of magnitude sooner
//! because it only ever prepares the chunks the question touches.
//!
//! ```sh
//! cargo run --release --example data_to_insight
//! ```

use sommelier_core::{LoadingMode, Sommelier, SommelierConfig};
use sommelier_mseed::{DatasetSpec, MseedAdapter, Repository};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("sommelier-data-to-insight");
    let _ = std::fs::remove_dir_all(&dir);
    let repo = Repository::at(dir.join("repo"));
    let spec = DatasetSpec::ingv(1, 256); // 160 files, 4 stations, 40 days
    let stats = repo.generate(&spec)?;
    println!(
        "repository: {} files, {} samples, {:.1} MiB\n",
        stats.files,
        stats.samples,
        stats.bytes as f64 / (1024.0 * 1024.0)
    );

    // The first question a scientist actually asks: two days of one
    // station (the paper's domain-expert query shape).
    let first_query = "SELECT AVG(D.sample_value) FROM dataview \
                       WHERE F.station = 'AQU' AND F.channel = 'BHZ' \
                       AND D.sample_time >= '2010-01-20T00:00:00.000' \
                       AND D.sample_time <  '2010-01-22T00:00:00.000'";

    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>12} {:>10}",
        "approach", "prep", "first query", "data-to-insight", "db bytes", "chunks"
    );
    for mode in LoadingMode::ALL {
        let somm = Sommelier::builder()
            .source(MseedAdapter::new(Repository::at(dir.join("repo"))))
            .config(SommelierConfig::default())
            .build()?;
        let t = Instant::now();
        somm.prepare(mode)?;
        let prep = t.elapsed();
        let t = Instant::now();
        let r = somm.query(first_query)?;
        let q = t.elapsed();
        println!(
            "{:<12} {:>12} {:>12} {:>14} {:>12} {:>10}",
            mode.label(),
            format!("{prep:.2?}"),
            format!("{q:.2?}"),
            format!("{:.2?}", prep + q),
            somm.db_bytes() + somm.index_bytes(),
            r.stats.files_loaded,
        );
    }

    println!(
        "\n(lazy's data-to-insight = registering headers + ingesting the 2 \
         relevant chunks; the eager variants pay for all {} first)",
        stats.files
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
