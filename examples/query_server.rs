//! Query server walkthrough: several tenants sharing one engine
//! through sessions — priorities, quotas, cancellation, timeouts, and
//! the scheduler/admission counters that make the whole thing
//! observable.
//!
//! ```sh
//! cargo run --release --example query_server
//! ```

use sommelier_core::{LoadingMode, Priority, Sommelier, SommelierConfig};
use sommelier_mseed::{DatasetSpec, MseedAdapter, Repository};
use sommelier_server::{Server, ServerError, SessionOptions, SubmitOptions};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small FIAM repository (one station, 40 days, one chunk file
    //    per day) registered lazily.
    let dir = std::env::temp_dir().join("sommelier-query-server");
    let _ = std::fs::remove_dir_all(&dir);
    let repo = Repository::at(dir.join("repo"));
    repo.generate(&DatasetSpec::fiam(1, 512))?;

    // 2. One engine, one shared morsel pool. `max_threads` bounds the
    //    worker count for EVERY in-flight query; `admission_*` knobs
    //    bound how many queries may run at once and how many may wait.
    let somm = Arc::new(
        Sommelier::builder()
            .source(MseedAdapter::new(repo))
            .config(SommelierConfig {
                max_threads: 4,
                admission_max_concurrent: 2,
                ..SommelierConfig::default()
            })
            .build()?,
    );
    somm.prepare(LoadingMode::Lazy)?;
    let server = Server::new(Arc::clone(&somm));

    // 3. Two tenants: an interactive high-priority session and a batch
    //    session with a small in-flight quota and a default timeout.
    let interactive = server.open_session(SessionOptions {
        priority: Priority::High,
        ..SessionOptions::default()
    });
    let batch = server.open_session(SessionOptions {
        priority: Priority::Low,
        max_in_flight: 2,
        default_timeout: Some(Duration::from_secs(30)),
        ..SessionOptions::default()
    });
    println!("sessions open: {}", server.active_sessions());

    let scan = "SELECT window_start_ts, window_max_val FROM H \
                WHERE window_station = 'FIAM' AND window_channel = 'HHZ' \
                AND window_start_ts >= '2010-01-01T00:00:00.000' \
                AND window_start_ts < '2010-02-01T00:00:00.000'";

    // 4. Submit from both; the batch scan's morsels queue behind the
    //    interactive query's on the shared pool.
    let hot = interactive.submit(scan)?;
    let cold = batch.submit(scan)?;
    let hot_rows = hot.wait().map(|r| r.relation.rows())?;
    let cold_rows = cold.wait().map(|r| r.relation.rows())?;
    println!("interactive: {hot_rows} window rows; batch: {cold_rows}");

    // 5. Cancellation: a handle can be cancelled mid-query; the engine
    //    notices at the next chunk-pipeline boundary and unwinds with
    //    the cellar's pin accounting balanced.
    let doomed = batch.submit(scan)?;
    doomed.cancel();
    match doomed.wait() {
        Err(ServerError::Cancelled) => println!("cancelled cleanly"),
        other => println!("finished before the cancel landed: {:?}", other.is_ok()),
    }

    // 6. Timeouts are just deadlines on the same token: a 1 ns budget
    //    cannot survive admission + execution.
    let hasty = batch.submit_with(
        scan,
        &SubmitOptions { timeout: Some(Duration::from_nanos(1)), ..SubmitOptions::default() },
    )?;
    match hasty.wait() {
        Err(ServerError::TimedOut) => println!("timed out, as requested"),
        other => println!("unexpectedly: {:?}", other.map(|r| r.relation.rows())),
    }

    // 7. Everything above left a trail in the metrics registry.
    let snap = somm.metrics_snapshot();
    let adm = somm.admission_stats();
    println!(
        "\nsched.workers = {:?}, sched.batches = {:?}, sched.tasks = {:?}",
        snap.gauge("sched.workers"),
        snap.counter("sched.batches"),
        snap.counter("sched.tasks"),
    );
    println!(
        "admitted = {}, cancelled = {}, timeouts = {}, queue_wait_ns = {}",
        adm.admitted, adm.cancelled, adm.timeouts, adm.queue_wait_ns
    );

    drop((interactive, batch));
    println!("sessions open after drop: {}", server.active_sessions());
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
