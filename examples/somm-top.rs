//! somm-top: run a small workload and pretty-print the engine's
//! metrics snapshot — a `top`-style view of what the system did.
//!
//! ```sh
//! cargo run --release --example somm-top [-- --json]
//! ```
//!
//! `--json` emits the snapshot as JSON (the scrapeable form) instead
//! of the aligned table.

use sommelier_core::{LoadingMode, Sommelier, SommelierConfig};
use sommelier_mseed::{DatasetSpec, MseedAdapter, Repository};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let json = std::env::args().any(|a| a == "--json");

    // A small synthetic repository and a lazily prepared system.
    let dir = std::env::temp_dir().join("sommelier-somm-top");
    let _ = std::fs::remove_dir_all(&dir);
    let repo = Repository::at(dir.join("repo"));
    let mut spec = DatasetSpec::ingv(1, 128);
    spec.days = 4;
    repo.generate(&spec)?;
    let somm = Sommelier::builder()
        .source(MseedAdapter::new(repo))
        .config(SommelierConfig::default())
        .build()?;
    somm.prepare(LoadingMode::Lazy)?;

    // A mixed workload: metadata-only, range ingest, and the windowed
    // join — enough to move most counter families.
    let workload = [
        "SELECT COUNT(*) AS n FROM F WHERE station = 'ISK'",
        "SELECT AVG(D.sample_value) FROM dataview \
         WHERE F.station = 'ISK' AND F.channel = 'BHE' \
         AND D.sample_time >= '2010-01-01T00:00:00.000' \
         AND D.sample_time < '2010-01-03T00:00:00.000'",
        "SELECT AVG(D.sample_value) FROM windowdataview \
         WHERE F.station = 'ISK' AND H.window_max_val > -1000000000 \
         AND H.window_start_ts < '2010-01-01T06:00:00.000'",
    ];
    for sql in workload {
        let r = somm.query(sql)?;
        eprintln!(
            "ran {} ({} rows, {} chunks loaded, {} cache hits)",
            r.qtype.label(),
            r.relation.rows(),
            r.stats.files_loaded,
            r.stats.cache_hits,
        );
    }

    let snap = somm.metrics_snapshot();
    if json {
        println!("{}", snap.to_json());
    } else {
        print!("{}", snap.render());
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
