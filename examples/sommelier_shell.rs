//! An interactive shell over a sommelier instance: type SQL against the
//! seismology schema, `EXPLAIN <query>` to see the two-stage plan,
//! `.stats` for cache/DMd state, `.mode <m>` to re-prepare.
//!
//! ```sh
//! cargo run --release --example sommelier_shell
//! ```

use sommelier_core::{LoadingMode, Sommelier, SommelierConfig};
use sommelier_mseed::{DatasetSpec, MseedAdapter, Repository};
use std::io::{BufRead, Write};
use std::time::Instant;

fn print_help() {
    println!(
        "commands:\n\
         \x20 <SELECT ...>       run a query (tables F, S, D, H; views dataview,\n\
         \x20                    windowdataview, segview, windowview)\n\
         \x20 EXPLAIN <SELECT>   show the logical plan\n\
         \x20 .mode <lazy|eager_plain|eager_index|eager_dmd|eager_csv>  re-prepare\n\
         \x20 .stats             cellar / buffer-pool / DMd state\n\
         \x20 .cold              flush caches (simulate a cold restart)\n\
         \x20 .help              this text\n\
         \x20 .quit              exit\n\
         example:\n\
         \x20 SELECT station, COUNT(*) AS files FROM F GROUP BY station ORDER BY files DESC"
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("sommelier-shell");
    let _ = std::fs::remove_dir_all(&dir);
    let repo_dir = dir.join("repo");
    println!("generating an sf-1 INGV-like repository (160 files) ...");
    let repo = Repository::at(&repo_dir);
    repo.generate(&DatasetSpec::ingv(1, 256))?;

    let mut somm = Sommelier::builder()
        .source(MseedAdapter::new(Repository::at(&repo_dir)))
        .config(SommelierConfig::default())
        .build()?;
    somm.prepare(LoadingMode::Lazy)?;
    println!(
        "prepared lazily: {} chunks registered. Type .help for help.\n",
        somm.registered_chunks()
    );

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("somm> ");
        std::io::stdout().flush()?;
        let Some(Ok(line)) = lines.next() else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let lower = line.to_ascii_lowercase();
        if lower == ".quit" || lower == ".exit" {
            break;
        } else if lower == ".help" {
            print_help();
        } else if lower == ".cold" {
            somm.flush_caches();
            println!("caches flushed.");
        } else if lower == ".stats" {
            println!(
                "mode: {:?}\ncellar: {:?}\nbuffer pool: {:?}\nDMd windows covered: {}",
                somm.mode().map(|m| m.label()),
                somm.cellar(),
                somm.db().pool(),
                somm.dmd_manager().covered_count()
            );
        } else if let Some(rest) = lower.strip_prefix(".mode ") {
            let mode = match rest.trim() {
                "lazy" => LoadingMode::Lazy,
                "eager_plain" => LoadingMode::EagerPlain,
                "eager_index" => LoadingMode::EagerIndex,
                "eager_dmd" => LoadingMode::EagerDmd,
                "eager_csv" => LoadingMode::EagerCsv,
                other => {
                    println!("unknown mode {other:?}");
                    continue;
                }
            };
            // Re-preparing needs a fresh database.
            somm = Sommelier::builder()
                .source(MseedAdapter::new(Repository::at(&repo_dir)))
                .config(SommelierConfig::default())
                .build()?;
            let t = Instant::now();
            somm.prepare(mode)?;
            println!("prepared {} in {:?}", mode.label(), t.elapsed());
        } else if let Some(q) =
            line.strip_prefix("EXPLAIN ").or_else(|| line.strip_prefix("explain "))
        {
            match somm.explain(q) {
                Ok(plan) => println!("{plan}"),
                Err(e) => println!("error: {e}"),
            }
        } else {
            let t = Instant::now();
            match somm.query(line) {
                Ok(r) => {
                    println!("{}", r.relation.pretty(25));
                    print!(
                        "-- {} rows, {:?} ({}), {} chunks loaded, {} cache hits",
                        r.relation.rows(),
                        t.elapsed(),
                        r.qtype.label(),
                        r.stats.files_loaded,
                        r.stats.cache_hits
                    );
                    if let Some(dmd) = &r.dmd {
                        print!(", DMd derived {}/{}", dmd.missing, dmd.requested);
                    }
                    println!();
                }
                Err(e) => println!("error: {e}"),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
