//! Quickstart: generate a small synthetic seismic repository, register
//! it lazily, and run the paper's Query 1 — watching the two-stage
//! execution load only the chunks it needs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sommelier_core::{LoadingMode, Sommelier, SommelierConfig};
use sommelier_mseed::{DatasetSpec, MseedAdapter, Repository};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic INGV-like repository: 4 stations × 40 days = 160
    //    chunk files (the paper's sf-1 structure, scaled-down samples).
    let dir = std::env::temp_dir().join("sommelier-quickstart");
    let _ = std::fs::remove_dir_all(&dir);
    let repo = Repository::at(dir.join("repo"));
    let spec = DatasetSpec::ingv(1, 256);
    println!("generating {} chunk files ...", spec.expected_files());
    let stats = repo.generate(&spec)?;
    println!(
        "  {} files, {} segments, {} samples, {:.1} MiB on disk",
        stats.files,
        stats.segments,
        stats.samples,
        stats.bytes as f64 / (1024.0 * 1024.0)
    );

    // 2. Register lazily: the Registrar extracts only the control
    //    headers (given metadata) — the actual data stays in the files.
    let somm = Sommelier::builder()
        .source(MseedAdapter::new(repo))
        .config(SommelierConfig::default())
        .build()?;
    let report = somm.prepare(LoadingMode::Lazy)?;
    println!(
        "\nregistered in {:?}: F = {} rows, S = {} rows, D = {} rows",
        report.total(),
        somm.db().table_rows("F")?,
        somm.db().table_rows("S")?,
        somm.db().table_rows("D")?,
    );

    // 3. The paper's Query 1: short-term average over a one-hour window
    //    at station ISK. Stage 1 uses metadata to find the one relevant
    //    chunk; stage 2 ingests it and aggregates.
    let sql = "SELECT AVG(D.sample_value) \
               FROM dataview \
               WHERE F.station = 'ISK' AND F.channel = 'BHE' \
               AND D.sample_time > '2010-01-12T22:15:00.000' \
               AND D.sample_time < '2010-01-12T23:15:00.000'";
    println!("\n{}", somm.explain(sql)?);
    let result = somm.query(sql)?;
    println!("result:\n{}", result.relation.pretty(5));
    println!(
        "query type {}: stage1 {:?}, loaded {} of {} registered chunks in {:?}, stage2 {:?}",
        result.qtype.label(),
        result.stats.stage1,
        result.stats.files_loaded,
        somm.registered_chunks(),
        result.stats.load,
        result.stats.stage2,
    );

    // 4. Run it again: the Recycler serves the chunk from cache.
    let again = somm.query(sql)?;
    println!(
        "again: {} cache hits, {} chunk loads, total {:?}",
        again.stats.cache_hits,
        again.stats.files_loaded,
        again.stats.total()
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
