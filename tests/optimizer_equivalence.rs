//! Optimizer-pass equivalence: the two new rewrite passes —
//! `projection_pushdown` and `zone_map_pruning` — must never change
//! answers, only costs. T1–T5 run on both built-in adapters with each
//! pass individually disabled vs enabled; results must be
//! byte-identical (same lazy chunk-by-chunk execution shape in every
//! configuration, so exact bit equality is required, not float
//! tolerance). The cost assertions then check each pass actually
//! does something: zone maps prune chunks, projection prunes decoded
//! bytes.

use sommelier_core::adapters::{generate_event_logs, EventLogAdapter, EventLogSpec};
use sommelier_core::{LoadingMode, QueryResult, Sommelier, SommelierConfig};
use sommelier_integration::{ingv_repo, TempDir};
use sommelier_mseed::Repository;
use sommelier_storage::Value;
use std::path::Path;

/// Knob matrix entry: (projection_pushdown, zone_map_pruning).
const KNOBS: [(bool, bool); 4] = [(true, true), (false, true), (true, false), (false, false)];

/// The ablation configuration: no recycler, so every run decodes its
/// chunks (and the non-retaining cellar honors the decode projection).
fn config(projection: bool, zone: bool) -> SommelierConfig {
    SommelierConfig {
        use_recycler: false,
        projection_pushdown: projection,
        zone_map_pruning: zone,
        ..SommelierConfig::default()
    }
}

fn mseed_system(repo: &Repository, cfg: SommelierConfig) -> Sommelier {
    let somm = sommelier_integration::in_memory_system(repo, cfg).unwrap();
    somm.prepare(LoadingMode::Lazy).unwrap();
    somm
}

fn eventlog_system(logs: &Path, cfg: SommelierConfig) -> Sommelier {
    let somm =
        Sommelier::builder().source(EventLogAdapter::new(logs)).config(cfg).build().unwrap();
    somm.prepare(LoadingMode::Lazy).unwrap();
    somm
}

/// T1–T5 against the seismology source, including the zone-map
/// showcase (`filedataview` carries no segment table, so metadata
/// inference cannot narrow the chunk list — only zone maps can).
fn mseed_queries() -> Vec<&'static str> {
    vec![
        "SELECT COUNT(*) AS n FROM F WHERE station = 'ISK'",
        "SELECT window_start_ts, window_max_val FROM H \
         WHERE window_station = 'ISK' AND window_channel = 'BHE' \
         AND window_start_ts < '2010-01-01T04:00:00.000' \
         ORDER BY window_start_ts",
        "SELECT COUNT(*) AS n FROM windowview \
         WHERE F.station = 'ISK' AND H.window_max_val > -1000000000 \
         AND H.window_start_ts < '2010-01-01T04:00:00.000'",
        MSEED_ZONE_T4,
        "SELECT AVG(D.sample_value) FROM windowdataview \
         WHERE F.station = 'ISK' AND H.window_max_val > -1000000000 \
         AND H.window_start_ts < '2010-01-01T04:00:00.000'",
    ]
}

/// The mSEED zone-map showcase: a one-day window through the
/// segment-free view selects every ISK chunk in stage 1.
const MSEED_ZONE_T4: &str = "SELECT AVG(D.sample_value) FROM filedataview \
     WHERE F.station = 'ISK' \
     AND D.sample_time >= '2010-01-01T00:00:00.000' \
     AND D.sample_time < '2010-01-02T00:00:00.000'";

/// T1–T5 against the event-log source. The T4 is the value-zone
/// showcase: `threshold` comes from the per-file statistics in the
/// headers, chosen so some files' maxima sit below it.
fn eventlog_queries(threshold: f64) -> Vec<String> {
    vec![
        "SELECT COUNT(*) AS n FROM G WHERE host = 'web-1'".into(),
        "SELECT day_start_ts, day_max_val FROM Y \
         WHERE day_host = 'web-1' AND day_service = 'api' \
         AND day_start_ts < '2011-03-03T00:00:00.000' \
         ORDER BY day_start_ts"
            .into(),
        "SELECT COUNT(*) AS n FROM dayview \
         WHERE G.host = 'web-1' AND Y.day_max_val > 0 \
         AND Y.day_start_ts < '2011-03-03T00:00:00.000'"
            .into(),
        eventlog_zone_t4(threshold),
        "SELECT AVG(E.val) FROM daylogview \
         WHERE G.host = 'web-1' AND Y.day_max_val > 0 \
         AND Y.day_start_ts < '2011-03-03T00:00:00.000'"
            .into(),
    ]
}

fn eventlog_zone_t4(threshold: f64) -> String {
    format!("SELECT COUNT(E.val) AS n FROM eventview WHERE G.host = 'web-1' AND E.val > {threshold}")
}

/// A midpoint between the smallest and largest per-file `E.val` maxima
/// (the adapter reads its own header statistics), so a value predicate
/// above it contradicts some files' zones but not others'.
fn val_threshold(logs: &Path) -> f64 {
    sommelier_core::adapters::value_stats_midpoint(logs, None)
        .unwrap()
        .expect("per-file maxima must differ for the showcase to mean anything")
}

/// Exact bit-level rendering of a result (floats as their raw bits).
fn bits(r: &QueryResult) -> String {
    let rel = &r.relation;
    let mut out = format!("{:?}|", rel.names());
    for row in 0..rel.rows() {
        for name in rel.names() {
            match rel.value(row, name).unwrap() {
                Value::Float(f) => out.push_str(&format!("f{:016x},", f.to_bits())),
                other => out.push_str(&format!("{other:?},")),
            }
        }
        out.push(';');
    }
    out
}

#[test]
fn mseed_t1_t5_byte_identical_across_pass_knobs() {
    let dir = TempDir::new("opteq-mseed");
    let repo = ingv_repo(&dir, 3, 16);
    let baseline: Vec<String> = {
        let somm = mseed_system(&repo, config(true, true));
        mseed_queries().iter().map(|sql| bits(&somm.query(sql).unwrap())).collect()
    };
    for (projection, zone) in &KNOBS[1..] {
        let somm = mseed_system(&repo, config(*projection, *zone));
        for (sql, want) in mseed_queries().iter().zip(&baseline) {
            let got = bits(&somm.query(sql).unwrap());
            assert_eq!(
                &got, want,
                "projection={projection} zone={zone} changed the answer of {sql}"
            );
        }
    }
}

#[test]
fn eventlog_t1_t5_byte_identical_across_pass_knobs() {
    let dir = TempDir::new("opteq-evl");
    let logs = dir.join("logs");
    generate_event_logs(&logs, &EventLogSpec::small(4, 64)).unwrap();
    let threshold = val_threshold(&logs);
    let baseline: Vec<String> = {
        let somm = eventlog_system(&logs, config(true, true));
        eventlog_queries(threshold)
            .iter()
            .map(|sql| bits(&somm.query(sql).unwrap()))
            .collect()
    };
    for (projection, zone) in &KNOBS[1..] {
        let somm = eventlog_system(&logs, config(*projection, *zone));
        for (sql, want) in eventlog_queries(threshold).iter().zip(&baseline) {
            let got = bits(&somm.query(sql).unwrap());
            assert_eq!(
                &got, want,
                "projection={projection} zone={zone} changed the answer of {sql}"
            );
        }
    }
}

#[test]
fn zone_maps_prune_mseed_chunks_before_decode() {
    let dir = TempDir::new("optzone-mseed");
    let repo = ingv_repo(&dir, 3, 16);
    // No segment table in the view → stage 1 selects every ISK chunk.
    let off = mseed_system(&repo, config(true, false)).query(MSEED_ZONE_T4).unwrap();
    assert_eq!(off.stats.files_pruned, 0);
    assert_eq!(off.stats.files_loaded, 3, "one ISK chunk per day, all decoded");
    let on = mseed_system(&repo, config(true, true)).query(MSEED_ZONE_T4).unwrap();
    assert_eq!(on.stats.files_selected, 3);
    assert_eq!(on.stats.files_pruned, 2, "two days contradict the window");
    assert_eq!(on.stats.files_loaded, 1);
    assert_eq!(bits(&on), bits(&off), "pruning never changes the answer");
    assert!(
        on.trace.iter().any(|t| t.name == "zone_map_pruning" && t.fired),
        "trace records the pruning pass: {:?}",
        on.trace
    );
}

#[test]
fn zone_maps_prune_eventlog_chunks_on_value_statistics() {
    let dir = TempDir::new("optzone-evl");
    let logs = dir.join("logs");
    generate_event_logs(&logs, &EventLogSpec::small(4, 64)).unwrap();
    let sql = eventlog_zone_t4(val_threshold(&logs));
    let off = eventlog_system(&logs, config(true, false)).query(&sql).unwrap();
    assert_eq!(off.stats.files_pruned, 0);
    let on = eventlog_system(&logs, config(true, true)).query(&sql).unwrap();
    assert!(on.stats.files_pruned > 0, "some files' maxima sit below the threshold");
    assert!(on.stats.files_loaded < off.stats.files_loaded);
    assert_eq!(bits(&on), bits(&off), "pruning never changes the answer");
}

#[test]
fn projection_pushdown_reduces_decoded_bytes() {
    // mSEED: the filedataview query needs 3 of D's 4 columns.
    let dir = TempDir::new("optproj-mseed");
    let repo = ingv_repo(&dir, 2, 64);
    let off = mseed_system(&repo, config(false, false)).query(MSEED_ZONE_T4).unwrap();
    let on = mseed_system(&repo, config(true, false)).query(MSEED_ZONE_T4).unwrap();
    assert_eq!(on.stats.files_loaded, off.stats.files_loaded);
    assert!(
        on.stats.bytes_loaded < off.stats.bytes_loaded,
        "narrow decode must shrink decoded bytes: {} vs {}",
        on.stats.bytes_loaded,
        off.stats.bytes_loaded
    );
    assert_eq!(bits(&on), bits(&off));
    assert!(on.trace.iter().any(|t| t.name == "projection_pushdown" && t.fired));

    // Event log: the value query needs E.log_id + E.val but not E.ts.
    let dir = TempDir::new("optproj-evl");
    let logs = dir.join("logs");
    generate_event_logs(&logs, &EventLogSpec::small(3, 64)).unwrap();
    let sql = eventlog_zone_t4(val_threshold(&logs));
    let off = eventlog_system(&logs, config(false, false)).query(&sql).unwrap();
    let on = eventlog_system(&logs, config(true, false)).query(&sql).unwrap();
    assert!(on.stats.bytes_loaded < off.stats.bytes_loaded);
    assert_eq!(bits(&on), bits(&off));
}

#[test]
fn explain_prints_the_pass_trace() {
    let dir = TempDir::new("optexplain");
    let logs = dir.join("logs");
    generate_event_logs(&logs, &EventLogSpec::small(1, 8)).unwrap();
    let somm = eventlog_system(&logs, SommelierConfig::default());
    let plan =
        somm.explain("SELECT AVG(E.val) FROM eventview WHERE G.host = 'web-1'").unwrap();
    assert!(plan.contains("-- optimizer passes"), "{plan}");
    for pass in [
        "join_order",
        "zone_map_pruning",
        "chunk_rewrite",
        "selection_pushdown",
        "partial_agg_fusion",
        "projection_pushdown",
    ] {
        assert!(plan.contains(pass), "missing {pass} in {plan}");
    }
    assert!(plan.contains("partial_agg_fusion: fired"), "{plan}");
    // Projection pushdown is visible in the physical shape too.
    assert!(plan.contains("(projected decode)"), "{plan}");
}
