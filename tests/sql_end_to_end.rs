//! SQL-level integration: the full lexer → parser → binder → optimizer
//! → two-stage executor stack, including error reporting.

use sommelier_core::{LoadingMode, SommelierConfig, SommelierError};
use sommelier_integration::{ingv_repo, prepared, TempDir};
use sommelier_storage::Value;

#[test]
fn group_by_order_by_limit() {
    let dir = TempDir::new("gol");
    let repo = ingv_repo(&dir, 3, 16);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let r = somm
        .query(
            "SELECT station AS s, COUNT(*) AS files FROM F \
             GROUP BY station ORDER BY s DESC LIMIT 2",
        )
        .unwrap();
    assert_eq!(r.relation.rows(), 2);
    assert_eq!(r.relation.value(0, "s").unwrap(), Value::Text("TRI".into()));
    assert_eq!(r.relation.value(0, "files").unwrap(), Value::Int(3));
    assert_eq!(r.relation.value(1, "s").unwrap(), Value::Text("ISK".into()));
}

#[test]
fn distinct_through_views() {
    let dir = TempDir::new("distinct");
    let repo = ingv_repo(&dir, 2, 16);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let r = somm.query("SELECT DISTINCT F.station FROM segview").unwrap();
    assert_eq!(r.relation.rows(), 4);
}

#[test]
fn group_by_computed_hour_bucket_over_lazy_data() {
    let dir = TempDir::new("hourly");
    let repo = ingv_repo(&dir, 1, 128);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let r = somm
        .query(
            "SELECT HOUR_BUCKET(D.sample_time) AS hour, COUNT(*) AS n, \
             MAX(D.sample_value) AS peak \
             FROM dataview WHERE F.station = 'ISK' \
             AND D.sample_time < '2010-01-02T00:00:00.000' \
             GROUP BY HOUR_BUCKET(D.sample_time) ORDER BY hour",
        )
        .unwrap();
    assert!(r.relation.rows() >= 12, "one group per covered hour, got {}", r.relation.rows());
    // Counts sum to the day's samples for that station.
    let total = somm
        .query(
            "SELECT COUNT(*) AS n FROM dataview WHERE F.station = 'ISK' \
             AND D.sample_time < '2010-01-02T00:00:00.000'",
        )
        .unwrap();
    let want = total.relation.value(0, "n").unwrap().as_i64().unwrap();
    let sum: i64 = (0..r.relation.rows())
        .map(|i| r.relation.value(i, "n").unwrap().as_i64().unwrap())
        .sum();
    assert_eq!(sum, want);
}

#[test]
fn arithmetic_and_functions_in_projections() {
    let dir = TempDir::new("arith");
    let repo = ingv_repo(&dir, 1, 16);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let r = somm.query("SELECT file_id * 2 + 1 AS x FROM F ORDER BY x LIMIT 3").unwrap();
    let xs: Vec<i64> =
        (0..3).map(|i| r.relation.value(i, "x").unwrap().as_i64().unwrap()).collect();
    assert_eq!(xs, vec![1, 3, 5]);
    let r = somm.query("SELECT ABS(file_id - 3) AS d FROM F ORDER BY d LIMIT 1").unwrap();
    assert_eq!(r.relation.value(0, "d").unwrap(), Value::Int(0));
}

#[test]
fn or_predicates_and_not() {
    let dir = TempDir::new("bool");
    let repo = ingv_repo(&dir, 2, 16);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let either = somm
        .query("SELECT COUNT(*) AS n FROM F WHERE station = 'ISK' OR station = 'TRI'")
        .unwrap();
    assert_eq!(either.relation.value(0, "n").unwrap(), Value::Int(4));
    let negated = somm
        .query("SELECT COUNT(*) AS n FROM F WHERE NOT (station = 'ISK' OR station = 'TRI')")
        .unwrap();
    assert_eq!(negated.relation.value(0, "n").unwrap(), Value::Int(4));
}

#[test]
fn error_messages_are_useful() {
    let dir = TempDir::new("errors");
    let repo = ingv_repo(&dir, 1, 16);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let cases = [
        ("SELECT", "parse error"),
        ("SELECT * FROM F", "'*' is only valid"),
        ("SELECT x FROM F", "unknown column"),
        ("SELECT station FROM nope", "unknown table or view"),
        ("SELECT file_id FROM dataview", "ambiguous"),
        ("SELECT station, COUNT(*) FROM F", "GROUP BY"),
        ("SELECT MEDIAN(station) FROM F", "unknown function"),
        ("SELECT COUNT(*) FROM dataview WHERE D.sample_time = 'not-a-time'", "timestamp"),
    ];
    for (sql, needle) in cases {
        match somm.query(sql) {
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.to_lowercase().contains(&needle.to_lowercase()),
                    "{sql:?}: expected {needle:?} in {msg:?}"
                );
            }
            Ok(_) => panic!("{sql:?} should fail"),
        }
    }
}

#[test]
fn unprepared_system_is_a_usage_error() {
    let dir = TempDir::new("usage");
    let repo = ingv_repo(&dir, 1, 16);
    let somm =
        sommelier_integration::in_memory_system(&repo, SommelierConfig::default()).unwrap();
    assert!(matches!(somm.query("SELECT COUNT(*) FROM F"), Err(SommelierError::Usage(_))));
}

#[test]
fn timestamps_render_iso_in_results() {
    let dir = TempDir::new("iso");
    let repo = ingv_repo(&dir, 1, 16);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let r = somm
        .query("SELECT MIN(S.start_time) AS first FROM segview WHERE F.station = 'ISK'")
        .unwrap();
    let rendered = r.relation.value(0, "first").unwrap().to_string();
    assert!(rendered.starts_with("2010-01-01T"), "{rendered}");
}

#[test]
fn quoted_string_escapes() {
    let dir = TempDir::new("quotes");
    let repo = ingv_repo(&dir, 1, 16);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    // No station named O'Brien, but the literal must parse; an OR arm
    // keeps the result non-empty.
    let r = somm
        .query("SELECT COUNT(*) AS n FROM F WHERE station = 'O''Brien' OR station = 'ISK'")
        .unwrap();
    assert_eq!(r.relation.value(0, "n").unwrap(), Value::Int(1));
}
