//! The design-choice ablations of DESIGN.md, as correctness tests:
//! static vs exchange parallelism, selection pushdown, FK verification
//! on lazy loads, and index joins — every knob must preserve answers.
//!
//! The `serial ≡ parallel` suite additionally pins down the strongest
//! guarantee of the morsel-parallel stage 2: per-chunk partial
//! aggregation merges in chunk order, so the *bytes* of every T1–T5
//! answer are identical no matter how many workers ran the pipelines —
//! on both built-in adapters, and even when a tight cellar budget makes
//! eviction interleave with execution.

use sommelier_core::adapters::{generate_event_logs, EventLogAdapter, EventLogSpec};
use sommelier_core::{LoadingMode, QueryResult, Sommelier, SommelierConfig};
use sommelier_engine::ParallelMode;
use sommelier_integration::{fiam_repo, ingv_repo, prepared, scalar_f64, TempDir};
use sommelier_mseed::Repository;
use std::path::Path;

const Q: &str = "SELECT AVG(D.sample_value) FROM dataview \
                 WHERE F.station = 'FIAM' \
                 AND D.sample_time >= '2010-01-01T00:00:00.000' \
                 AND D.sample_time < '2010-01-05T00:00:00.000'";

#[test]
fn exchange_parallelism_matches_static() {
    let dir = TempDir::new("exchange");
    let repo = fiam_repo(&dir, 6, 64);
    let static_somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let want = scalar_f64(&static_somm.query(Q).unwrap(), "avg").unwrap();

    let config = SommelierConfig {
        parallel: ParallelMode::Exchange { workers: 3 },
        ..SommelierConfig::default()
    };
    let exchange_somm = prepared(&repo, LoadingMode::Lazy, config);
    let got_result = exchange_somm.query(Q).unwrap();
    let got = scalar_f64(&got_result, "avg").unwrap();
    assert!((want - got).abs() < 1e-9, "{want} vs {got}");
    assert_eq!(got_result.stats.files_loaded, 4);
}

#[test]
fn exchange_with_single_worker_still_correct() {
    let dir = TempDir::new("exchange-1");
    let repo = fiam_repo(&dir, 3, 32);
    let config = SommelierConfig {
        parallel: ParallelMode::Exchange { workers: 1 },
        ..SommelierConfig::default()
    };
    let somm = prepared(&repo, LoadingMode::Lazy, config);
    assert!(scalar_f64(&somm.query(Q).unwrap(), "avg").is_some());
}

#[test]
fn pushdown_toggle_preserves_answers() {
    let dir = TempDir::new("pushdown");
    let repo = fiam_repo(&dir, 4, 64);
    let with = {
        let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
        scalar_f64(&somm.query(Q).unwrap(), "avg").unwrap()
    };
    let without = {
        let config = SommelierConfig { chunk_pushdown: false, ..SommelierConfig::default() };
        let somm = prepared(&repo, LoadingMode::Lazy, config);
        scalar_f64(&somm.query(Q).unwrap(), "avg").unwrap()
    };
    assert!((with - without).abs() < 1e-9, "{with} vs {without}");
}

#[test]
fn lazy_fk_verification_passes_on_consistent_data() {
    // The paper omits FK checks as "safe by design"; with the checks
    // turned on, system-generated keys must indeed verify.
    let dir = TempDir::new("fkverify");
    let repo = fiam_repo(&dir, 3, 32);
    let config = SommelierConfig { verify_lazy_fk: true, ..SommelierConfig::default() };
    let somm = prepared(&repo, LoadingMode::Lazy, config);
    let r = somm.query(Q).unwrap();
    assert!(r.stats.files_loaded > 0);
    assert!(scalar_f64(&r, "avg").is_some());
}

#[test]
fn index_joins_agree_with_hash_joins() {
    let dir = TempDir::new("indexjoin");
    let repo = ingv_repo(&dir, 3, 64);
    let sql = "SELECT AVG(D.sample_value) FROM dataview \
               WHERE F.station = 'AQU' AND F.channel = 'BHZ' \
               AND D.sample_time >= '2010-01-01T12:00:00.000' \
               AND D.sample_time < '2010-01-03T12:00:00.000'";
    let plain = prepared(&repo, LoadingMode::EagerPlain, SommelierConfig::default());
    let index = prepared(&repo, LoadingMode::EagerIndex, SommelierConfig::default());
    let a = scalar_f64(&plain.query(sql).unwrap(), "avg").unwrap();
    let b = scalar_f64(&index.query(sql).unwrap(), "avg").unwrap();
    assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    // The index variant did build its join indices.
    assert!(index.db().join_index("D", "F").is_some());
    assert!(index.db().join_index("D", "S").is_some());
}

#[test]
fn static_parallelism_loads_every_file_exactly_once() {
    let dir = TempDir::new("once");
    let repo = fiam_repo(&dir, 8, 32);
    let config = SommelierConfig { max_threads: 3, ..SommelierConfig::default() };
    let somm = prepared(&repo, LoadingMode::Lazy, config);
    let r = somm
        .query(
            "SELECT COUNT(*) AS n FROM dataview \
             WHERE D.sample_time < '2010-01-09T00:00:00.000'",
        )
        .unwrap();
    assert_eq!(r.stats.files_loaded, 8);
    // Row count equals the repository's sample count.
    let total: i64 = r.relation.value(0, "n").unwrap().as_i64().unwrap();
    let meta = somm.query("SELECT SUM(S.sample_count) AS s FROM segview").unwrap();
    let expected = scalar_f64(&meta, "s").unwrap();
    assert_eq!(total as f64, expected);
}

#[test]
fn approximate_answering_samples_chunks() {
    // The paper's §VIII future-work sketch, implemented: a sampled
    // query ingests a fraction of the selected chunks.
    let dir = TempDir::new("approx");
    let repo = fiam_repo(&dir, 10, 64);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let sql = "SELECT AVG(D.sample_value) FROM dataview \
               WHERE D.sample_time < '2010-01-11T00:00:00.000'";
    let exact = somm.query(sql).unwrap();
    assert_eq!(exact.stats.files_selected, 10);
    somm.flush_caches();
    let approx = somm.query_approx(sql, 0.3).unwrap();
    assert_eq!(approx.stats.files_selected, 10, "selection is unchanged");
    assert_eq!(approx.stats.files_sampled_out, 7, "ceil(0.3 × 10) = 3 kept");
    assert_eq!(approx.stats.files_loaded, 3);
    // Deterministic: the same sample every time.
    somm.flush_caches();
    let again = somm.query_approx(sql, 0.3).unwrap();
    assert_eq!(scalar_f64(&approx, "avg").unwrap(), scalar_f64(&again, "avg").unwrap());
    // Fraction 1.0 is exact.
    somm.flush_caches();
    let full = somm.query_approx(sql, 1.0).unwrap();
    assert_eq!(full.stats.files_sampled_out, 0);
    assert_eq!(scalar_f64(&full, "avg").unwrap(), scalar_f64(&exact, "avg").unwrap());
    // Invalid fractions rejected.
    assert!(somm.query_approx(sql, 0.0).is_err());
    assert!(somm.query_approx(sql, 1.5).is_err());
}

// ---- serial ≡ parallel, byte for byte ------------------------------

/// T1–T5 against the seismology source (FIAM, 4 days). Multi-row
/// answers carry ORDER BY so renderings are comparable.
fn mseed_t_queries() -> Vec<String> {
    vec![
        "SELECT COUNT(*) AS segments, SUM(S.sample_count) AS samples \
         FROM segview WHERE F.station = 'FIAM'"
            .into(),
        "SELECT window_start_ts, window_max_val, window_min_val, window_mean_val, \
         window_std_dev FROM H \
         WHERE window_station = 'FIAM' AND window_channel = 'HHZ' \
         AND window_start_ts >= '2010-01-01T00:00:00.000' \
         AND window_start_ts < '2010-01-03T00:00:00.000' \
         ORDER BY window_start_ts"
            .into(),
        "SELECT COUNT(*) AS n FROM windowview \
         WHERE F.station = 'FIAM' AND H.window_max_val > -1000000000 \
         AND H.window_start_ts < '2010-01-03T00:00:00.000'"
            .into(),
        "SELECT AVG(D.sample_value) FROM dataview \
         WHERE F.station = 'FIAM' \
         AND D.sample_time >= '2010-01-01T00:00:00.000' \
         AND D.sample_time < '2010-01-04T00:00:00.000'"
            .into(),
        "SELECT AVG(D.sample_value) FROM windowdataview \
         WHERE F.station = 'FIAM' AND H.window_max_val > -1000000000 \
         AND H.window_start_ts < '2010-01-03T00:00:00.000'"
            .into(),
    ]
}

/// The same taxonomy against the event-log source.
fn eventlog_t_queries() -> Vec<String> {
    vec![
        "SELECT COUNT(*) AS n FROM G WHERE host = 'web-1'".into(),
        "SELECT day_start_ts, day_max_val FROM Y \
         WHERE day_host = 'web-1' AND day_service = 'api' \
         AND day_start_ts < '2011-03-04T00:00:00.000' \
         ORDER BY day_start_ts"
            .into(),
        "SELECT COUNT(*) AS n FROM dayview \
         WHERE G.host = 'web-1' AND Y.day_max_val > 0 \
         AND Y.day_start_ts < '2011-03-04T00:00:00.000'"
            .into(),
        "SELECT AVG(E.val) FROM eventview \
         WHERE G.host = 'web-1' AND G.service = 'api' \
         AND E.ts >= '2011-03-01T00:00:00.000' \
         AND E.ts < '2011-03-04T00:00:00.000'"
            .into(),
        "SELECT AVG(E.val) FROM daylogview \
         WHERE G.host = 'web-1' AND Y.day_max_val > 0 \
         AND Y.day_start_ts < '2011-03-04T00:00:00.000'"
            .into(),
    ]
}

/// Exact rendering: Rust's float `Debug` is shortest-round-trip, so
/// equal strings ⇔ equal bits.
fn fingerprint(r: &QueryResult) -> String {
    format!("{:?}", r.relation)
}

fn config_with(max_threads: usize, parallel: ParallelMode) -> SommelierConfig {
    SommelierConfig { max_threads, parallel, ..SommelierConfig::default() }
}

/// Run every query on a freshly prepared lazy system, fingerprinting
/// the answers.
fn mseed_fingerprints(
    repo: &Repository,
    queries: &[String],
    config: SommelierConfig,
) -> Vec<String> {
    let somm = prepared(repo, LoadingMode::Lazy, config);
    queries.iter().map(|sql| fingerprint(&somm.query(sql).unwrap())).collect()
}

fn eventlog_fingerprints(
    logs: &Path,
    queries: &[String],
    config: SommelierConfig,
) -> Vec<String> {
    let somm = Sommelier::builder()
        .source(EventLogAdapter::new(logs))
        .config(config)
        .build()
        .unwrap();
    somm.prepare(LoadingMode::Lazy).unwrap();
    queries.iter().map(|sql| fingerprint(&somm.query(sql).unwrap())).collect()
}

fn assert_identical(reference: &[String], other: &[String], queries: &[String], tag: &str) {
    for ((a, b), sql) in reference.iter().zip(other).zip(queries) {
        assert_eq!(a, b, "{tag}: serial and parallel bytes diverged on {sql}");
    }
}

#[test]
fn serial_and_parallel_results_byte_identical_mseed() {
    let dir = TempDir::new("bytes-mseed");
    let repo = fiam_repo(&dir, 4, 64);
    let queries = mseed_t_queries();
    let serial = mseed_fingerprints(&repo, &queries, config_with(1, ParallelMode::Static));
    let par8 = mseed_fingerprints(&repo, &queries, config_with(8, ParallelMode::Static));
    let exch = mseed_fingerprints(
        &repo,
        &queries,
        config_with(8, ParallelMode::Exchange { workers: 4 }),
    );
    assert_identical(&serial, &par8, &queries, "mseed static-8");
    assert_identical(&serial, &exch, &queries, "mseed exchange-4");
    // The T4 shape really did run the fused partial-agg path.
    let somm = prepared(&repo, LoadingMode::Lazy, config_with(8, ParallelMode::Static));
    let r = somm.query(&queries[3]).unwrap();
    assert!(r.stats.partial_agg_chunks > 0, "partial aggregation fired");
    assert_eq!(r.stats.rows_union_materialized, 0, "no union materialized");
}

#[test]
fn serial_and_parallel_results_byte_identical_eventlog() {
    let dir = TempDir::new("bytes-evl");
    let logs = dir.join("logs");
    generate_event_logs(&logs, &EventLogSpec::small(4, 48)).unwrap();
    let queries = eventlog_t_queries();
    let serial = eventlog_fingerprints(&logs, &queries, config_with(1, ParallelMode::Static));
    let par8 = eventlog_fingerprints(&logs, &queries, config_with(8, ParallelMode::Static));
    let exch = eventlog_fingerprints(
        &logs,
        &queries,
        config_with(8, ParallelMode::Exchange { workers: 4 }),
    );
    assert_identical(&serial, &par8, &queries, "eventlog static-8");
    assert_identical(&serial, &exch, &queries, "eventlog exchange-4");
}

#[test]
fn serial_and_parallel_byte_identical_under_tight_cellar_budget() {
    // A budget of ~1 decoded chunk: the streaming wave evicts while it
    // executes (pins are per chunk). Answers must not change — serial
    // vs parallel, tight vs unbounded.
    let dir = TempDir::new("bytes-tight");
    let repo = fiam_repo(&dir, 4, 64);
    let queries = mseed_t_queries();
    let unbounded = mseed_fingerprints(&repo, &queries, config_with(8, ParallelMode::Static));
    let tight = |threads: usize| SommelierConfig {
        cellar_bytes: Some(32 * 1024),
        ..config_with(threads, ParallelMode::Static)
    };
    let serial_tight = mseed_fingerprints(&repo, &queries, tight(1));
    let par_tight = mseed_fingerprints(&repo, &queries, tight(8));
    assert_identical(&unbounded, &serial_tight, &queries, "tight-1 vs unbounded");
    assert_identical(&unbounded, &par_tight, &queries, "tight-8 vs unbounded");
    // The tight budget really did evict mid-workload.
    let somm = prepared(&repo, LoadingMode::Lazy, tight(8));
    for sql in &queries {
        somm.query(sql).unwrap();
    }
    let cellar = somm.cellar().unwrap();
    assert!(cellar.stats().evictions > 0, "budget forced evictions: {cellar:?}");
    assert!(cellar.resident_bytes() <= cellar.budget_bytes());
}

#[test]
fn all_knobs_combined() {
    // Exchange + no pushdown + FK verification + tiny cache: the most
    // hostile configuration must still answer correctly.
    let dir = TempDir::new("all-knobs");
    let repo = fiam_repo(&dir, 4, 32);
    let reference = {
        let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
        scalar_f64(&somm.query(Q).unwrap(), "avg").unwrap()
    };
    let config = SommelierConfig {
        parallel: ParallelMode::Exchange { workers: 2 },
        chunk_pushdown: false,
        verify_lazy_fk: true,
        recycler_bytes: 1,
        ..SommelierConfig::default()
    };
    let somm = prepared(&repo, LoadingMode::Lazy, config);
    let got = scalar_f64(&somm.query(Q).unwrap(), "avg").unwrap();
    assert!((reference - got).abs() < 1e-9);
}
