//! The design-choice ablations of DESIGN.md, as correctness tests:
//! static vs exchange parallelism, selection pushdown, FK verification
//! on lazy loads, and index joins — every knob must preserve answers.

use sommelier_core::{LoadingMode, SommelierConfig};
use sommelier_engine::ParallelMode;
use sommelier_integration::{fiam_repo, ingv_repo, prepared, scalar_f64, TempDir};

const Q: &str = "SELECT AVG(D.sample_value) FROM dataview \
                 WHERE F.station = 'FIAM' \
                 AND D.sample_time >= '2010-01-01T00:00:00.000' \
                 AND D.sample_time < '2010-01-05T00:00:00.000'";

#[test]
fn exchange_parallelism_matches_static() {
    let dir = TempDir::new("exchange");
    let repo = fiam_repo(&dir, 6, 64);
    let static_somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let want = scalar_f64(&static_somm.query(Q).unwrap(), "avg").unwrap();

    let config = SommelierConfig {
        parallel: ParallelMode::Exchange { workers: 3 },
        ..SommelierConfig::default()
    };
    let exchange_somm = prepared(&repo, LoadingMode::Lazy, config);
    let got_result = exchange_somm.query(Q).unwrap();
    let got = scalar_f64(&got_result, "avg").unwrap();
    assert!((want - got).abs() < 1e-9, "{want} vs {got}");
    assert_eq!(got_result.stats.files_loaded, 4);
}

#[test]
fn exchange_with_single_worker_still_correct() {
    let dir = TempDir::new("exchange-1");
    let repo = fiam_repo(&dir, 3, 32);
    let config = SommelierConfig {
        parallel: ParallelMode::Exchange { workers: 1 },
        ..SommelierConfig::default()
    };
    let somm = prepared(&repo, LoadingMode::Lazy, config);
    assert!(scalar_f64(&somm.query(Q).unwrap(), "avg").is_some());
}

#[test]
fn pushdown_toggle_preserves_answers() {
    let dir = TempDir::new("pushdown");
    let repo = fiam_repo(&dir, 4, 64);
    let with = {
        let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
        scalar_f64(&somm.query(Q).unwrap(), "avg").unwrap()
    };
    let without = {
        let config = SommelierConfig { chunk_pushdown: false, ..SommelierConfig::default() };
        let somm = prepared(&repo, LoadingMode::Lazy, config);
        scalar_f64(&somm.query(Q).unwrap(), "avg").unwrap()
    };
    assert!((with - without).abs() < 1e-9, "{with} vs {without}");
}

#[test]
fn lazy_fk_verification_passes_on_consistent_data() {
    // The paper omits FK checks as "safe by design"; with the checks
    // turned on, system-generated keys must indeed verify.
    let dir = TempDir::new("fkverify");
    let repo = fiam_repo(&dir, 3, 32);
    let config = SommelierConfig { verify_lazy_fk: true, ..SommelierConfig::default() };
    let somm = prepared(&repo, LoadingMode::Lazy, config);
    let r = somm.query(Q).unwrap();
    assert!(r.stats.files_loaded > 0);
    assert!(scalar_f64(&r, "avg").is_some());
}

#[test]
fn index_joins_agree_with_hash_joins() {
    let dir = TempDir::new("indexjoin");
    let repo = ingv_repo(&dir, 3, 64);
    let sql = "SELECT AVG(D.sample_value) FROM dataview \
               WHERE F.station = 'AQU' AND F.channel = 'BHZ' \
               AND D.sample_time >= '2010-01-01T12:00:00.000' \
               AND D.sample_time < '2010-01-03T12:00:00.000'";
    let plain = prepared(&repo, LoadingMode::EagerPlain, SommelierConfig::default());
    let index = prepared(&repo, LoadingMode::EagerIndex, SommelierConfig::default());
    let a = scalar_f64(&plain.query(sql).unwrap(), "avg").unwrap();
    let b = scalar_f64(&index.query(sql).unwrap(), "avg").unwrap();
    assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    // The index variant did build its join indices.
    assert!(index.db().join_index("D", "F").is_some());
    assert!(index.db().join_index("D", "S").is_some());
}

#[test]
fn static_parallelism_loads_every_file_exactly_once() {
    let dir = TempDir::new("once");
    let repo = fiam_repo(&dir, 8, 32);
    let config = SommelierConfig { max_threads: 3, ..SommelierConfig::default() };
    let somm = prepared(&repo, LoadingMode::Lazy, config);
    let r = somm
        .query(
            "SELECT COUNT(*) AS n FROM dataview \
             WHERE D.sample_time < '2010-01-09T00:00:00.000'",
        )
        .unwrap();
    assert_eq!(r.stats.files_loaded, 8);
    // Row count equals the repository's sample count.
    let total: i64 = r.relation.value(0, "n").unwrap().as_i64().unwrap();
    let meta = somm.query("SELECT SUM(S.sample_count) AS s FROM segview").unwrap();
    let expected = scalar_f64(&meta, "s").unwrap();
    assert_eq!(total as f64, expected);
}

#[test]
fn approximate_answering_samples_chunks() {
    // The paper's §VIII future-work sketch, implemented: a sampled
    // query ingests a fraction of the selected chunks.
    let dir = TempDir::new("approx");
    let repo = fiam_repo(&dir, 10, 64);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let sql = "SELECT AVG(D.sample_value) FROM dataview \
               WHERE D.sample_time < '2010-01-11T00:00:00.000'";
    let exact = somm.query(sql).unwrap();
    assert_eq!(exact.stats.files_selected, 10);
    somm.flush_caches();
    let approx = somm.query_approx(sql, 0.3).unwrap();
    assert_eq!(approx.stats.files_selected, 10, "selection is unchanged");
    assert_eq!(approx.stats.files_sampled_out, 7, "ceil(0.3 × 10) = 3 kept");
    assert_eq!(approx.stats.files_loaded, 3);
    // Deterministic: the same sample every time.
    somm.flush_caches();
    let again = somm.query_approx(sql, 0.3).unwrap();
    assert_eq!(scalar_f64(&approx, "avg").unwrap(), scalar_f64(&again, "avg").unwrap());
    // Fraction 1.0 is exact.
    somm.flush_caches();
    let full = somm.query_approx(sql, 1.0).unwrap();
    assert_eq!(full.stats.files_sampled_out, 0);
    assert_eq!(scalar_f64(&full, "avg").unwrap(), scalar_f64(&exact, "avg").unwrap());
    // Invalid fractions rejected.
    assert!(somm.query_approx(sql, 0.0).is_err());
    assert!(somm.query_approx(sql, 1.5).is_err());
}

#[test]
fn all_knobs_combined() {
    // Exchange + no pushdown + FK verification + tiny cache: the most
    // hostile configuration must still answer correctly.
    let dir = TempDir::new("all-knobs");
    let repo = fiam_repo(&dir, 4, 32);
    let reference = {
        let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
        scalar_f64(&somm.query(Q).unwrap(), "avg").unwrap()
    };
    let config = SommelierConfig {
        parallel: ParallelMode::Exchange { workers: 2 },
        chunk_pushdown: false,
        verify_lazy_fk: true,
        recycler_bytes: 1,
        ..SommelierConfig::default()
    };
    let somm = prepared(&repo, LoadingMode::Lazy, config);
    let got = scalar_f64(&somm.query(Q).unwrap(), "avg").unwrap();
    assert!((reference - got).abs() < 1e-9);
}
