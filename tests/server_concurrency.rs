//! The multi-tenant query server end to end: byte-identical T1–T5
//! results under 1/4/16 concurrent sessions on both source adapters,
//! bounded worker threads under concurrency (the shared morsel
//! scheduler), observable priority ordering under a saturated server,
//! typed timeout errors, and the cancellation pin-leak regression.

use sommelier_core::adapters::{generate_event_logs, EventLogAdapter, EventLogSpec};
use sommelier_core::{LoadingMode, Priority, Sommelier, SommelierConfig};
use sommelier_engine::exec::legacy_pool_spawns;
use sommelier_integration::{ingv_repo, TempDir};
use sommelier_mseed::{MseedAdapter, Repository};
use sommelier_server::{Server, ServerError, SessionOptions, SubmitOptions};
use sommelier_storage::buffer::SimIo;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Serialize the tests in this file: `legacy_pool_spawns()` is a
/// process-global counter and the priority/timing assertions want an
/// unloaded machine.
fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

fn server_config(threads: usize) -> SommelierConfig {
    SommelierConfig { max_threads: threads, ..SommelierConfig::default() }
}

fn mseed_system(repo: &Repository, config: SommelierConfig) -> Sommelier {
    let somm = Sommelier::builder()
        .source(MseedAdapter::new(Repository::at(repo.dir())))
        .config(config)
        .build()
        .unwrap();
    somm.prepare(LoadingMode::Lazy).unwrap();
    somm
}

fn eventlog_system(logs: &Path, config: SommelierConfig) -> Sommelier {
    let somm = Sommelier::builder()
        .source(EventLogAdapter::new(logs))
        .config(config)
        .build()
        .unwrap();
    somm.prepare(LoadingMode::Lazy).unwrap();
    somm
}

/// The paper's T1–T5 taxonomy against the seismology source.
fn mseed_queries() -> Vec<&'static str> {
    vec![
        "SELECT COUNT(*) AS n FROM F WHERE station = 'ISK'",
        "SELECT window_start_ts, window_max_val FROM H \
         WHERE window_station = 'ISK' AND window_channel = 'BHE' \
         AND window_start_ts < '2010-01-01T04:00:00.000' \
         ORDER BY window_start_ts",
        "SELECT COUNT(*) AS n FROM windowview \
         WHERE F.station = 'ISK' AND H.window_max_val > -1000000000 \
         AND H.window_start_ts < '2010-01-01T04:00:00.000'",
        "SELECT AVG(D.sample_value) FROM dataview \
         WHERE F.station = 'ISK' AND F.channel = 'BHE' \
         AND D.sample_time >= '2010-01-01T00:00:00.000' \
         AND D.sample_time < '2010-01-02T00:00:00.000'",
        "SELECT AVG(D.sample_value) FROM windowdataview \
         WHERE F.station = 'ISK' AND H.window_max_val > -1000000000 \
         AND H.window_start_ts < '2010-01-01T04:00:00.000'",
    ]
}

/// The same taxonomy against the event-log source.
fn eventlog_queries() -> Vec<&'static str> {
    vec![
        "SELECT COUNT(*) AS n FROM G WHERE host = 'web-1'",
        "SELECT day_start_ts, day_max_val FROM Y \
         WHERE day_host = 'web-1' AND day_service = 'api' \
         AND day_start_ts < '2011-03-03T00:00:00.000' \
         ORDER BY day_start_ts",
        "SELECT COUNT(*) AS n FROM dayview \
         WHERE G.host = 'web-1' AND Y.day_max_val > 0 \
         AND Y.day_start_ts < '2011-03-03T00:00:00.000'",
        "SELECT AVG(E.val) FROM eventview \
         WHERE G.host = 'web-1' AND G.service = 'api' \
         AND E.ts >= '2011-03-01T00:00:00.000' \
         AND E.ts < '2011-03-02T00:00:00.000'",
        "SELECT AVG(E.val) FROM daylogview \
         WHERE G.host = 'web-1' AND Y.day_max_val > 0 \
         AND Y.day_start_ts < '2011-03-03T00:00:00.000'",
    ]
}

/// A long-running T4-shaped query (every day of the FIAM station),
/// slowed by simulated repository I/O so cancellation and priority
/// tests have something mid-flight to act on.
const SLOW_MSEED_T4: &str = "SELECT AVG(D.sample_value) FROM dataview \
     WHERE F.station = 'FIAM' AND F.channel = 'HHZ' \
     AND D.sample_time >= '2010-01-01T00:00:00.000' \
     AND D.sample_time < '2010-01-09T00:00:00.000'";

#[test]
fn results_byte_identical_under_concurrent_sessions_on_both_adapters() {
    let _x = exclusive();
    let dir = TempDir::new("server-identical");
    let repo = ingv_repo(&dir, 2, 32);
    let logs = dir.join("logs");
    generate_event_logs(&logs, &EventLogSpec::small(3, 32)).unwrap();
    for adapter in ["mseed", "eventlog"] {
        let (somm, queries) = if adapter == "mseed" {
            (mseed_system(&repo, server_config(4)), mseed_queries())
        } else {
            (eventlog_system(&logs, server_config(4)), eventlog_queries())
        };
        assert!(somm.scheduler().is_some(), "shared scheduler on by default");
        // Serial reference: every query once, single-threaded caller.
        let mut max_selected = 0;
        let reference: Vec<String> = queries
            .iter()
            .map(|sql| {
                let r = somm.query(sql).unwrap();
                max_selected = max_selected.max(r.stats.files_selected);
                format!("{:?}", r.relation)
            })
            .collect();
        let server = Server::new(Arc::new(somm));
        let spawns_before = legacy_pool_spawns();
        for sessions in [1usize, 4, 16] {
            std::thread::scope(|scope| {
                for s in 0..sessions {
                    let server = server.clone();
                    let queries = &queries;
                    let reference = &reference;
                    scope.spawn(move || {
                        let session = server.open_session(SessionOptions::default());
                        // Stagger query order per session so chunk
                        // interleavings actually differ across clients.
                        for k in 0..queries.len() {
                            let i = (k + s) % queries.len();
                            let r = session.submit(queries[i]).unwrap().wait().unwrap();
                            assert_eq!(
                                format!("{:?}", r.relation),
                                reference[i],
                                "{adapter} T{} under {sessions} sessions drifted",
                                i + 1
                            );
                            assert!(r.stats.accounting_balanced());
                        }
                    });
                }
            });
            assert_eq!(server.active_sessions(), 0, "sessions closed");
        }
        // Bounded worker threads: with the shared scheduler attached,
        // no morsel batch fell back to spawning a scoped pool, no
        // matter how many sessions ran.
        assert_eq!(
            legacy_pool_spawns(),
            spawns_before,
            "{adapter}: concurrent queries must not spawn per-query pools"
        );
        let sched = Arc::clone(server.sommelier().scheduler().unwrap());
        assert_eq!(sched.worker_count(), 4, "pool size == max_threads");
        // Single-chunk waves run inline by design; only multi-chunk
        // queries must have landed on the shared pool.
        if max_selected > 1 {
            assert!(sched.stats().batches > 0, "morsels actually ran on the shared pool");
        }
        // Pins all returned.
        assert_eq!(server.sommelier().cellar().unwrap().total_pins(), 0);
    }
}

#[test]
fn priority_ordering_observable_under_saturated_server() {
    let _x = exclusive();
    let dir = TempDir::new("server-priority");
    let repo = {
        let repo = Repository::at(dir.join("repo"));
        let mut spec = sommelier_mseed::DatasetSpec::fiam(1, 64);
        spec.days = 8;
        repo.generate(&spec).unwrap();
        repo
    };
    // One admission slot and slow decodes: the first query saturates
    // the server; everything else queues in the admission controller,
    // which serves the highest priority first.
    let config = SommelierConfig {
        admission_max_concurrent: 1,
        use_recycler: false, // every run decodes (stays slow)
        sim_chunk_io: Some(SimIo { per_page: Duration::from_millis(150) }),
        ..server_config(2)
    };
    let somm = mseed_system(&repo, config);
    let server = Server::new(Arc::new(somm));
    let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));

    let hog = server.open_session(SessionOptions::default());
    let running = hog.submit(SLOW_MSEED_T4).unwrap();
    // Let the hog win the admission slot before anyone queues.
    while server.sommelier().admission_stats().running == 0 {
        std::thread::sleep(Duration::from_millis(2));
    }

    let mut waiters = Vec::new();
    // Low queues first, High second; High must still finish first.
    for (n, (tag, priority)) in
        [("low", Priority::Low), ("high", Priority::High)].into_iter().enumerate()
    {
        let srv = server.clone();
        let order = Arc::clone(&order);
        waiters.push(std::thread::spawn(move || {
            let session = srv.open_session(SessionOptions { priority, ..Default::default() });
            session.submit(SLOW_MSEED_T4).unwrap().wait().unwrap();
            order.lock().unwrap().push(tag);
        }));
        // Deterministic enqueue order: wait until this waiter is
        // actually queued before releasing the next one.
        while server.sommelier().admission_stats().queue_depth < n as u64 + 1 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    // The hog must still be holding the slot, or ordering says nothing.
    assert_eq!(server.sommelier().admission_stats().queue_depth, 2, "both waiters queued");
    running.wait().unwrap();
    for w in waiters {
        w.join().unwrap();
    }
    assert_eq!(
        *order.lock().unwrap(),
        vec!["high", "low"],
        "high priority must overtake the earlier-queued low-priority query"
    );
    let stats = server.sommelier().admission_stats();
    assert_eq!(stats.admitted, 3);
    assert_eq!(stats.running, 0);
}

#[test]
fn timeout_fires_with_typed_error() {
    let _x = exclusive();
    let dir = TempDir::new("server-timeout");
    let repo = {
        let repo = Repository::at(dir.join("repo"));
        let mut spec = sommelier_mseed::DatasetSpec::fiam(1, 64);
        spec.days = 8;
        repo.generate(&spec).unwrap();
        repo
    };
    let config = SommelierConfig {
        use_recycler: false,
        sim_chunk_io: Some(SimIo { per_page: Duration::from_millis(60) }),
        ..server_config(2)
    };
    let somm = mseed_system(&repo, config);
    let server = Server::new(Arc::new(somm));
    let session = server.open_session(SessionOptions {
        default_timeout: Some(Duration::from_millis(120)),
        ..Default::default()
    });
    let err = session.submit(SLOW_MSEED_T4).unwrap().wait().unwrap_err();
    assert!(matches!(err, ServerError::TimedOut), "expected TimedOut, got: {err}");
    // A per-submit override beats the session default.
    let r = session
        .submit_with(
            SLOW_MSEED_T4,
            &SubmitOptions { timeout: Some(Duration::from_secs(120)), ..Default::default() },
        )
        .unwrap()
        .wait();
    assert!(r.is_ok(), "generous override must let the query finish: {:?}", r.err());
    assert_eq!(server.sommelier().cellar().unwrap().total_pins(), 0);
}

#[test]
fn cancellation_mid_query_leaves_no_pinned_chunks() {
    let _x = exclusive();
    let dir = TempDir::new("server-cancel-pins");
    let repo = {
        let repo = Repository::at(dir.join("repo"));
        let mut spec = sommelier_mseed::DatasetSpec::fiam(1, 64);
        spec.days = 8;
        repo.generate(&spec).unwrap();
        repo
    };
    let config = SommelierConfig {
        use_recycler: false,
        sim_chunk_io: Some(SimIo { per_page: Duration::from_millis(40) }),
        ..server_config(2)
    };
    let somm = mseed_system(&repo, config);
    let cellar = somm.cellar().unwrap();
    let server = Server::new(Arc::new(somm));
    let session = server.open_session(SessionOptions::default());
    for round in 0..3 {
        let handle = session.submit(SLOW_MSEED_T4).unwrap();
        // Let the query get mid-flight into its decode wave, then pull
        // the plug.
        std::thread::sleep(Duration::from_millis(90));
        handle.cancel();
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, ServerError::Cancelled), "round {round}: got {err}");
        // The regression this guards: a cancelled wave must release
        // every pin it took (debug builds also assert this inside the
        // cellar's pin ledger).
        assert_eq!(cellar.total_pins(), 0, "round {round}: cancel leaked pins");
    }
    // And the system is still fully usable afterwards.
    let r = session.submit(SLOW_MSEED_T4).unwrap().wait().unwrap();
    assert_eq!(r.relation.rows(), 1);
    assert_eq!(cellar.total_pins(), 0);
}

#[test]
fn session_quota_rejects_excess_in_flight_queries() {
    let _x = exclusive();
    let dir = TempDir::new("server-quota");
    let repo = {
        let repo = Repository::at(dir.join("repo"));
        let mut spec = sommelier_mseed::DatasetSpec::fiam(1, 64);
        spec.days = 4;
        repo.generate(&spec).unwrap();
        repo
    };
    let config = SommelierConfig {
        use_recycler: false,
        sim_chunk_io: Some(SimIo { per_page: Duration::from_millis(50) }),
        ..server_config(2)
    };
    let somm = mseed_system(&repo, config);
    let server = Server::new(Arc::new(somm));
    let session =
        server.open_session(SessionOptions { max_in_flight: 1, ..Default::default() });
    let running = session.submit(SLOW_MSEED_T4).unwrap();
    let err = session.submit(SLOW_MSEED_T4).unwrap_err();
    assert!(matches!(err, ServerError::QuotaExceeded { limit: 1 }), "{err}");
    running.wait().unwrap();
    // Slot free again.
    session.submit(SLOW_MSEED_T4).unwrap().wait().unwrap();
}

/// Drop-order lifecycle: dropping the last `Server` clone (and its
/// sessions) with queries still mid-flight, mid-retry-backoff, or
/// mid-prefetch must cancel and drain them — zero pinned chunks and
/// zero staged prefetch bytes afterwards, with the shared `Sommelier`
/// still fully usable.
#[test]
fn dropping_server_mid_flight_mid_backoff_mid_prefetch_releases_everything() {
    use sommelier_core::{FaultPlan, RetryPolicy};
    let _x = exclusive();
    let dir = TempDir::new("server-drop-order");
    let repo = {
        let repo = Repository::at(dir.join("repo"));
        let mut spec = sommelier_mseed::DatasetSpec::fiam(1, 64);
        spec.days = 8;
        repo.generate(&spec).unwrap();
        repo
    };
    for scenario in ["mid-flight", "mid-backoff", "mid-prefetch"] {
        let config = match scenario {
            // Slow decodes: the drop lands inside a decode wave.
            "mid-flight" => SommelierConfig {
                use_recycler: false,
                sim_chunk_io: Some(SimIo { per_page: Duration::from_millis(40) }),
                ..server_config(2)
            },
            // Every attempt fails transiently with an effectively
            // unbounded retry budget: the drop lands inside backoff.
            "mid-backoff" => SommelierConfig {
                use_recycler: false,
                fault_plan: Some(FaultPlan {
                    transient_rate: 1.0,
                    max_transient_per_chunk: u32::MAX,
                    ..FaultPlan::default()
                }),
                io_retry: RetryPolicy {
                    max_attempts: 100_000,
                    base_backoff: Duration::from_millis(5),
                    max_backoff: Duration::from_millis(5),
                },
                ..server_config(2)
            },
            // A deep prefetch window over slow reads: the drop lands
            // with raw bytes staged ahead of the decoders.
            _ => SommelierConfig {
                use_recycler: false,
                prefetch_depth: 4,
                sim_chunk_io: Some(SimIo { per_page: Duration::from_millis(40) }),
                ..server_config(2)
            },
        };
        let somm = Arc::new(mseed_system(&repo, config));
        {
            let server = Server::new(Arc::clone(&somm));
            let session = server.open_session(SessionOptions::default());
            let _running = session.submit(SLOW_MSEED_T4).unwrap();
            // Let the query get properly underway before pulling the rug.
            while somm.admission_stats().running == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            std::thread::sleep(Duration::from_millis(60));
            // Handle first, then session, then the last server clone:
            // the shared drop drain cancels the orphaned query and
            // waits for it to unwind.
        }
        assert_eq!(
            somm.cellar().unwrap().total_pins(),
            0,
            "{scenario}: dropped server leaked pins"
        );
        assert_eq!(
            somm.prefetch_stage().map_or(0, |s| s.staged_bytes()),
            0,
            "{scenario}: dropped server leaked staged prefetch bytes"
        );
        assert!(somm.quarantined_chunks().is_empty(), "{scenario}: cancellation quarantined");
        // The system itself was not shut down — it serves the next
        // server instance (or direct queries) as before.
        if scenario != "mid-backoff" {
            let r = somm.query("SELECT COUNT(*) AS n FROM F WHERE station = 'FIAM'").unwrap();
            assert_eq!(r.relation.rows(), 1);
        }
    }
}

#[test]
fn scheduler_and_admission_metrics_reach_the_snapshot() {
    let _x = exclusive();
    let dir = TempDir::new("server-metrics");
    let repo = ingv_repo(&dir, 2, 32);
    let somm = mseed_system(&repo, server_config(4));
    let server = Server::new(Arc::new(somm));
    let session = server.open_session(SessionOptions::default());
    session.submit(mseed_queries()[3]).unwrap().wait().unwrap();
    let snap = server.sommelier().metrics_snapshot();
    for counter in [
        "sched.batches",
        "sched.tasks",
        "sched.busy_ns",
        "admission.admitted",
        "admission.rejected",
        "admission.cancelled",
        "admission.timeouts",
        "admission.queue_wait_ns",
    ] {
        assert!(snap.counter(counter).is_some(), "documented counter {counter:?} missing");
    }
    for gauge in [
        "sched.workers",
        "sched.queue_depth",
        "admission.running",
        "admission.queue_depth",
        "server.active_sessions",
    ] {
        assert!(snap.gauge(gauge).is_some(), "documented gauge {gauge:?} missing");
    }
    assert_eq!(snap.gauge("sched.workers"), Some(4));
    assert!(snap.counter("admission.admitted") >= Some(1));
    assert_eq!(snap.gauge("server.active_sessions"), Some(1));
    drop(session);
    let snap = server.sommelier().metrics_snapshot();
    assert_eq!(snap.gauge("server.active_sessions"), Some(0));
}
