//! The observability layer end to end: metric-snapshot determinism,
//! span-tree shape across the T1–T5 taxonomy on both source adapters,
//! result equivalence across observability levels, the ExecStats
//! accounting invariant, and the EXPLAIN / EXPLAIN ANALYZE surfaces.

use sommelier_core::adapters::{generate_event_logs, EventLogAdapter, EventLogSpec};
use sommelier_core::{LoadingMode, ObsLevel, Sommelier, SommelierConfig};
use sommelier_integration::{ingv_repo, TempDir};
use sommelier_mseed::{MseedAdapter, Repository};
use std::path::{Path, PathBuf};

fn obs_config(level: ObsLevel, threads: usize) -> SommelierConfig {
    SommelierConfig {
        observability: level,
        max_threads: threads,
        ..SommelierConfig::default()
    }
}

fn mseed_system(repo: &Repository, level: ObsLevel, threads: usize) -> Sommelier {
    Sommelier::builder()
        .source(MseedAdapter::new(Repository::at(repo.dir())))
        .config(obs_config(level, threads))
        .build()
        .unwrap()
}

fn eventlog_repo(dir: &TempDir, days: u32, events: u32) -> PathBuf {
    let logs = dir.join("logs");
    generate_event_logs(&logs, &EventLogSpec::small(days, events)).unwrap();
    logs
}

fn eventlog_system(logs: &Path, level: ObsLevel, threads: usize) -> Sommelier {
    Sommelier::builder()
        .source(EventLogAdapter::new(logs))
        .config(obs_config(level, threads))
        .build()
        .unwrap()
}

/// The paper's taxonomy against the seismology source.
fn mseed_queries() -> Vec<&'static str> {
    vec![
        "SELECT COUNT(*) AS n FROM F WHERE station = 'ISK'",
        "SELECT window_start_ts, window_max_val FROM H \
         WHERE window_station = 'ISK' AND window_channel = 'BHE' \
         AND window_start_ts < '2010-01-01T04:00:00.000' \
         ORDER BY window_start_ts",
        "SELECT COUNT(*) AS n FROM windowview \
         WHERE F.station = 'ISK' AND H.window_max_val > -1000000000 \
         AND H.window_start_ts < '2010-01-01T04:00:00.000'",
        "SELECT AVG(D.sample_value) FROM dataview \
         WHERE F.station = 'ISK' AND F.channel = 'BHE' \
         AND D.sample_time >= '2010-01-01T00:00:00.000' \
         AND D.sample_time < '2010-01-02T00:00:00.000'",
        "SELECT AVG(D.sample_value) FROM windowdataview \
         WHERE F.station = 'ISK' AND H.window_max_val > -1000000000 \
         AND H.window_start_ts < '2010-01-01T04:00:00.000'",
    ]
}

/// The same taxonomy against the event-log source.
fn eventlog_queries() -> Vec<&'static str> {
    vec![
        "SELECT COUNT(*) AS n FROM G WHERE host = 'web-1'",
        "SELECT day_start_ts, day_max_val FROM Y \
         WHERE day_host = 'web-1' AND day_service = 'api' \
         AND day_start_ts < '2011-03-03T00:00:00.000' \
         ORDER BY day_start_ts",
        "SELECT COUNT(*) AS n FROM dayview \
         WHERE G.host = 'web-1' AND Y.day_max_val > 0 \
         AND Y.day_start_ts < '2011-03-03T00:00:00.000'",
        "SELECT AVG(E.val) FROM eventview \
         WHERE G.host = 'web-1' AND G.service = 'api' \
         AND E.ts >= '2011-03-01T00:00:00.000' \
         AND E.ts < '2011-03-02T00:00:00.000'",
        "SELECT AVG(E.val) FROM daylogview \
         WHERE G.host = 'web-1' AND Y.day_max_val > 0 \
         AND Y.day_start_ts < '2011-03-03T00:00:00.000'",
    ]
}

/// Counters whose deltas must repeat exactly across identical warm
/// runs. Timings (`*_ns`, `decode.ns`), pool busy/idle accounting and
/// the process-global scratch-arena counters (shared with concurrently
/// running tests) are inherently nondeterministic and excluded.
fn is_deterministic(name: &str) -> bool {
    !name.ends_with("_ns") && name != "decode.ns" && !name.starts_with("decode.arena")
}

#[test]
fn counter_deltas_repeat_across_identical_warm_runs() {
    let dir = TempDir::new("obs-determinism");
    let repo = ingv_repo(&dir, 2, 64);
    let somm = mseed_system(&repo, ObsLevel::Counters, 2);
    somm.prepare(LoadingMode::Lazy).unwrap();
    let t4 = mseed_queries()[3];
    somm.query(t4).unwrap(); // warm: residency reached steady state
    let s0 = somm.metrics_snapshot();
    somm.query(t4).unwrap();
    let s1 = somm.metrics_snapshot();
    somm.query(t4).unwrap();
    let s2 = somm.metrics_snapshot();
    let d1: Vec<(String, u64)> =
        s1.counter_deltas(&s0).into_iter().filter(|(n, _)| is_deterministic(n)).collect();
    let d2: Vec<(String, u64)> =
        s2.counter_deltas(&s1).into_iter().filter(|(n, _)| is_deterministic(n)).collect();
    assert!(!d1.is_empty(), "a warm T4 must still move counters");
    assert_eq!(d1, d2, "identical warm runs must produce identical counter deltas");
    assert_eq!(s2.counter("query.count"), Some(3), "three runs counted");
}

#[test]
fn span_trace_shape_covers_the_taxonomy_on_both_adapters() {
    let dir = TempDir::new("obs-spans");
    let repo = ingv_repo(&dir, 2, 32);
    let logs = eventlog_repo(&dir, 3, 32);
    for mode in [LoadingMode::Lazy, LoadingMode::EagerIndex] {
        for threads in [1usize, 8] {
            for adapter in ["mseed", "eventlog"] {
                let (somm, queries) = if adapter == "mseed" {
                    (mseed_system(&repo, ObsLevel::Spans, threads), mseed_queries())
                } else {
                    (eventlog_system(&logs, ObsLevel::Spans, threads), eventlog_queries())
                };
                somm.prepare(mode).unwrap();
                for (i, sql) in queries.iter().enumerate() {
                    let r = somm.query(sql).unwrap();
                    let ctx = format!("{adapter} T{} {mode} x{threads}", i + 1);
                    assert!(
                        r.stats.accounting_balanced(),
                        "chunk accounting unbalanced on {ctx}: {:?}",
                        r.stats
                    );
                    let trace =
                        r.span_trace.as_ref().unwrap_or_else(|| panic!("no trace on {ctx}"));
                    let root =
                        trace.find("query").unwrap_or_else(|| panic!("{ctx}: no root"));
                    assert!(root.parent.is_none(), "{ctx}: query span must be the root");
                    assert_eq!(trace.count("query"), 1, "{ctx}");
                    assert_eq!(trace.count("inference"), 1, "{ctx}");
                    assert_eq!(trace.count("compile"), 1, "{ctx}");
                    assert_eq!(trace.count("stage2"), 1, "{ctx}");
                    assert_eq!(trace.count("rewrite_stage2"), 1, "{ctx}");
                    // Every span's parent precedes it (a well-formed tree).
                    for s in &trace.spans {
                        if let Some(p) = s.parent {
                            assert!(p < s.id, "{ctx}: span {} parented to later {}", s.id, p);
                        }
                    }
                    // Lazy runs that ingested chunks show per-chunk spans
                    // tagged with the worker that decoded them.
                    let ingested = r.stats.files_loaded + r.stats.cache_hits;
                    if mode == LoadingMode::Lazy && ingested > 0 {
                        let chunk_spans: Vec<_> = trace
                            .spans
                            .iter()
                            .filter(|s| s.name == "chunk" || s.name == "chunk.load")
                            .collect();
                        assert_eq!(chunk_spans.len(), ingested, "{ctx}: one span per chunk");
                        assert!(
                            chunk_spans.iter().all(|s| s.worker.is_some()),
                            "{ctx}: chunk spans carry worker ids"
                        );
                    }
                    // Span durations are consistent with the stats the
                    // driver measured from the same clock edges.
                    if let Some(s) = trace.find("stage2") {
                        let measured = r.stats.stage2.as_nanos() as u64;
                        assert!(
                            s.dur_ns >= measured / 2 && s.dur_ns <= measured.max(1) * 4,
                            "{ctx}: stage2 span {}ns vs stats {}ns",
                            s.dur_ns,
                            measured
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn spans_absent_below_spans_level() {
    let dir = TempDir::new("obs-levels");
    let repo = ingv_repo(&dir, 2, 32);
    for level in [ObsLevel::Off, ObsLevel::Counters] {
        let somm = mseed_system(&repo, level, 2);
        somm.prepare(LoadingMode::Lazy).unwrap();
        let r = somm.query(mseed_queries()[3]).unwrap();
        assert!(r.span_trace.is_none(), "no span trace expected at {level:?}");
    }
}

#[test]
fn results_identical_across_observability_levels() {
    let dir = TempDir::new("obs-equivalence");
    let repo = ingv_repo(&dir, 2, 32);
    let logs = eventlog_repo(&dir, 3, 32);
    for adapter in ["mseed", "eventlog"] {
        let (off, spans, queries) = if adapter == "mseed" {
            (
                mseed_system(&repo, ObsLevel::Off, 4),
                mseed_system(&repo, ObsLevel::Spans, 4),
                mseed_queries(),
            )
        } else {
            (
                eventlog_system(&logs, ObsLevel::Off, 4),
                eventlog_system(&logs, ObsLevel::Spans, 4),
                eventlog_queries(),
            )
        };
        off.prepare(LoadingMode::Lazy).unwrap();
        spans.prepare(LoadingMode::Lazy).unwrap();
        for (i, sql) in queries.iter().enumerate() {
            let a = off.query(sql).unwrap();
            let b = spans.query(sql).unwrap();
            assert_eq!(
                format!("{:?}", a.relation),
                format!("{:?}", b.relation),
                "{adapter} T{}: Off and Spans must be byte-identical",
                i + 1
            );
            assert!(a.stats.accounting_balanced() && b.stats.accounting_balanced());
        }
    }
}

#[test]
fn explain_annotates_zone_index_candidates() {
    let dir = TempDir::new("obs-explain-zone");
    let repo = ingv_repo(&dir, 2, 32);
    let somm = mseed_system(&repo, ObsLevel::Counters, 2);
    somm.prepare(LoadingMode::Lazy).unwrap();
    let text = somm.explain(mseed_queries()[3]).unwrap();
    let zone_line = text
        .lines()
        .find(|l| l.contains("zone_map_pruning"))
        .expect("explain shows the zone_map_pruning pass");
    assert!(
        zone_line.contains("zone index:") && zone_line.contains("chunks candidate"),
        "zone-index candidate count missing from: {zone_line}"
    );
}

#[test]
fn explain_analyze_renders_spans_passes_and_accounting() {
    let dir = TempDir::new("obs-explain-analyze");
    let repo = ingv_repo(&dir, 2, 32);
    // Counters level: ANALYZE must force a span trace for its one run.
    let somm = mseed_system(&repo, ObsLevel::Counters, 2);
    somm.prepare(LoadingMode::Lazy).unwrap();
    let t4 = mseed_queries()[3];
    let text = somm.explain_analyze(t4).unwrap();
    for needle in
        ["-- spans", "query", "stage2", "-- optimizer passes", "-- stages:", "-- chunks:"]
    {
        assert!(text.contains(needle), "EXPLAIN ANALYZE missing {needle:?} in:\n{text}");
    }
    assert!(
        text.contains("selected =") && text.contains("cache hits"),
        "accounting line missing:\n{text}"
    );
    // The ANALYZE prefix routes through explain().
    let routed = somm.explain(&format!("ANALYZE {t4}")).unwrap();
    assert!(routed.starts_with("-- source:") && routed.contains("-- spans"), "{routed}");
}

#[test]
fn queue_wait_span_appears_once_on_admitted_queries() {
    let dir = TempDir::new("obs-queue-wait");
    let repo = ingv_repo(&dir, 2, 32);
    let somm = mseed_system(&repo, ObsLevel::Spans, 2);
    somm.prepare(LoadingMode::Lazy).unwrap();
    // Every top-level query passes admission control, so its span tree
    // carries exactly one queue_wait span (a child of the root),
    // however short the wait was on an idle system.
    let r = somm.query(mseed_queries()[3]).unwrap();
    let trace = r.span_trace.as_ref().expect("Spans level produces a trace");
    assert_eq!(trace.count("queue_wait"), 1, "exactly one queue_wait span");
    let qw = trace.find("queue_wait").unwrap();
    let root = trace.find("query").unwrap();
    assert_eq!(qw.parent, Some(root.id), "queue_wait hangs off the query root");
    // And EXPLAIN ANALYZE (which forces spans) renders it.
    let text = somm.explain_analyze(mseed_queries()[3]).unwrap();
    assert!(text.contains("queue_wait"), "EXPLAIN ANALYZE missing queue_wait:\n{text}");
}

#[test]
fn metrics_snapshot_serializes_documented_names() {
    let dir = TempDir::new("obs-snapshot-json");
    let repo = ingv_repo(&dir, 2, 32);
    let somm = mseed_system(&repo, ObsLevel::Counters, 2);
    somm.prepare(LoadingMode::Lazy).unwrap();
    somm.query(mseed_queries()[3]).unwrap();
    let snap = somm.metrics_snapshot();
    for name in [
        "query.count",
        "chunks.selected",
        "chunks.loaded",
        "rows.loaded",
        "bytes.loaded",
        "registrar.chunks_registered",
        "cellar.hits",
        "cellar.pin_wait_ns",
        "decode.chunks",
        "decode.bytes",
        "pool.tasks",
        "fault.io_retries",
        "fault.faults_injected",
        "fault.chunks_quarantined",
        "fault.queries_degraded",
    ] {
        assert!(snap.counter(name).is_some(), "documented counter {name:?} missing");
    }
    assert!(snap.gauge("cellar.resident_bytes").is_some());
    assert!(snap.counter("query.count") >= Some(1));
    let json = snap.to_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'), "not a JSON object");
    for key in ["\"counters\"", "\"gauges\"", "\"histograms\"", "\"query.count\""] {
        assert!(json.contains(key), "JSON missing {key}:\n{json}");
    }
}
