//! Server lifecycle resilience end to end: graceful drain within a
//! deadline, typed rejection of new and queued work during shutdown,
//! deadline-expired cancellation with balanced books, transient
//! overload with a retry-after contract, panic isolation + per-session
//! quarantine, priority aging under a saturating tenant, and a seeded
//! chaos schedule composing faults × cancellation × timeouts ×
//! saturation × panic injection × shutdown-while-loaded.

use sommelier_core::adapters::{generate_event_logs, EventLogAdapter, EventLogSpec};
use sommelier_core::{
    FaultPlan, LoadingMode, Priority, Sommelier, SommelierConfig, SommelierError,
};
use sommelier_integration::TempDir;
use sommelier_mseed::{MseedAdapter, Repository};
use sommelier_server::{Server, ServerError, SessionOptions, SubmitOptions};
use sommelier_storage::buffer::SimIo;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Serialize the tests in this file: the drain/aging assertions are
/// timing-sensitive and want an unloaded machine.
fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

fn eventlog_system(logs: &Path, config: SommelierConfig) -> Sommelier {
    let somm = Sommelier::builder()
        .source(EventLogAdapter::new(logs))
        .config(config)
        .build()
        .unwrap();
    somm.prepare(LoadingMode::Lazy).unwrap();
    somm
}

fn mseed_system(repo: &Repository, config: SommelierConfig) -> Sommelier {
    let somm = Sommelier::builder()
        .source(MseedAdapter::new(Repository::at(repo.dir())))
        .config(config)
        .build()
        .unwrap();
    somm.prepare(LoadingMode::Lazy).unwrap();
    somm
}

/// Every chunk file under `dir`, sorted (chunk URIs are file paths for
/// both built-in adapters).
fn chunk_files(dir: &Path) -> Vec<String> {
    fn walk(dir: &Path, out: &mut Vec<String>) {
        for e in std::fs::read_dir(dir).unwrap().flatten() {
            let p = e.path();
            if p.is_dir() {
                walk(&p, out);
            } else {
                out.push(p.to_string_lossy().into_owned());
            }
        }
    }
    let mut out = Vec::new();
    walk(dir, &mut out);
    out.sort();
    out
}

/// A long-running T4-shaped query, slowed by simulated repository I/O
/// so drains, cancellation, and shutdown have something mid-flight to
/// act on.
const SLOW_MSEED_T4: &str = "SELECT AVG(D.sample_value) FROM dataview \
     WHERE F.station = 'FIAM' AND F.channel = 'HHZ' \
     AND D.sample_time >= '2010-01-01T00:00:00.000' \
     AND D.sample_time < '2010-01-09T00:00:00.000'";

fn fiam_repo(dir: &TempDir, days: u32) -> Repository {
    let repo = Repository::at(dir.join("repo"));
    let mut spec = sommelier_mseed::DatasetSpec::fiam(1, 64);
    spec.days = days;
    repo.generate(&spec).unwrap();
    repo
}

/// Graceful drain: a generous deadline lets in-flight queries finish on
/// their own (drained, nothing cancelled, books balanced), queued
/// admission waiters are woken with the typed error, new submits are
/// rejected, and a second shutdown is an idempotent no-op.
#[test]
fn shutdown_drains_in_flight_within_deadline() {
    let _x = exclusive();
    let dir = TempDir::new("resilience-drain");
    let repo = fiam_repo(&dir, 8);
    let config = SommelierConfig {
        admission_max_concurrent: 1,
        use_recycler: false,
        sim_chunk_io: Some(SimIo { per_page: Duration::from_millis(30) }),
        max_threads: 2,
        ..SommelierConfig::default()
    };
    let server = Server::new(Arc::new(mseed_system(&repo, config)));
    let session = server.open_session(SessionOptions::default());
    let running = session.submit(SLOW_MSEED_T4).unwrap();
    while server.sommelier().admission_stats().running == 0 {
        std::thread::sleep(Duration::from_millis(2));
    }
    // A second query parked in the admission queue behind the hog: the
    // shutdown must wake it with the typed error, not leave it hanging.
    let queued = session.submit(SLOW_MSEED_T4).unwrap();
    while server.sommelier().admission_stats().queue_depth == 0 {
        std::thread::sleep(Duration::from_millis(2));
    }

    let deadline = Duration::from_secs(120);
    let report = server.shutdown(deadline);
    assert!(report.is_clean(), "drain left unbalanced books: {report:?}");
    assert_eq!(report.cancelled, 0, "generous deadline: nothing should be cancelled");
    assert!(report.drained >= 1, "the running query finished in the drain window");
    assert!(report.elapsed < deadline, "drain finished before the deadline");
    let r = running.wait();
    assert!(r.is_ok(), "the in-flight query completed normally: {:?}", r.err());
    assert!(
        matches!(queued.wait().unwrap_err(), ServerError::ShuttingDown),
        "queued admission waiter must be woken with the typed shutdown error"
    );
    assert!(server.is_shutting_down());
    assert!(
        matches!(session.submit(SLOW_MSEED_T4).unwrap_err(), ServerError::ShuttingDown),
        "new submits rejected after shutdown"
    );
    // Idempotent: a second shutdown re-reads an already-clean ledger.
    let again = server.shutdown(Duration::from_secs(1));
    assert!(again.is_clean());
    assert_eq!(again.drained, 0);
    assert_eq!(again.cancelled, 0);
}

/// An expired deadline fires the cancel tokens of stragglers; the
/// bounded grace window lets them observe the token and unwind, so the
/// ledger is still clean and the straggler fails with the typed
/// cancellation error.
#[test]
fn shutdown_deadline_cancels_stragglers_with_balanced_books() {
    let _x = exclusive();
    let dir = TempDir::new("resilience-cancel");
    let repo = fiam_repo(&dir, 8);
    let config = SommelierConfig {
        use_recycler: false,
        sim_chunk_io: Some(SimIo { per_page: Duration::from_millis(40) }),
        max_threads: 2,
        ..SommelierConfig::default()
    };
    let server = Server::new(Arc::new(mseed_system(&repo, config)));
    let session = server.open_session(SessionOptions::default());
    let straggler = session.submit(SLOW_MSEED_T4).unwrap();
    while server.sommelier().admission_stats().running == 0 {
        std::thread::sleep(Duration::from_millis(2));
    }
    // Deadline expires immediately: the straggler cannot finish.
    let report = server.shutdown(Duration::from_millis(1));
    assert_eq!(report.cancelled, 1, "straggler's cancel token fired: {report:?}");
    assert!(report.is_clean(), "cancelled straggler must unwind cleanly: {report:?}");
    assert!(
        matches!(straggler.wait().unwrap_err(), ServerError::Cancelled),
        "straggler sees the typed cancellation"
    );
    let somm = server.sommelier();
    assert_eq!(somm.cellar().unwrap().total_pins(), 0);
    assert_eq!(somm.prefetch_stage().map_or(0, |s| s.staged_bytes()), 0);
}

/// Overload is transient backpressure, not a dead end: a full admission
/// queue rejects with `retry_after_ms` computed from queue depth ×
/// observed latency (clamped to [10ms, 10s]), and the advertised wait
/// is also published as the `admission.retry_after_ms` gauge.
#[test]
fn overload_rejection_carries_retry_after_contract() {
    let _x = exclusive();
    let dir = TempDir::new("resilience-overload");
    let repo = fiam_repo(&dir, 4);
    let config = SommelierConfig {
        admission_max_concurrent: 1,
        admission_queue_limit: 1,
        use_recycler: false,
        sim_chunk_io: Some(SimIo { per_page: Duration::from_millis(40) }),
        max_threads: 2,
        ..SommelierConfig::default()
    };
    let server = Server::new(Arc::new(mseed_system(&repo, config)));
    let session = server.open_session(SessionOptions::default());
    // Seed the latency EWMA so retry-after has an observation to scale.
    session
        .submit("SELECT COUNT(*) AS n FROM F WHERE station = 'FIAM'")
        .unwrap()
        .wait()
        .unwrap();
    let hog = session.submit(SLOW_MSEED_T4).unwrap();
    while server.sommelier().admission_stats().running == 0 {
        std::thread::sleep(Duration::from_millis(2));
    }
    let queued = session.submit(SLOW_MSEED_T4).unwrap();
    while server.sommelier().admission_stats().queue_depth == 0 {
        std::thread::sleep(Duration::from_millis(2));
    }
    // Queue full (limit 1): the third query is the one pushed back.
    let err = session.submit(SLOW_MSEED_T4).unwrap().wait().unwrap_err();
    match err {
        ServerError::Overloaded { retry_after_ms, ref message } => {
            assert!(
                (10..=10_000).contains(&retry_after_ms),
                "retry-after clamped to its contract range, got {retry_after_ms}"
            );
            assert!(message.contains("queue"), "message names the cause: {message}");
        }
        other => panic!("expected Overloaded, got {other}"),
    }
    let snap = server.sommelier().metrics_snapshot();
    assert!(
        snap.gauge("admission.retry_after_ms").unwrap_or(0) >= 10,
        "advertised retry-after reaches the metrics snapshot"
    );
    hog.wait().unwrap();
    queued.wait().unwrap();
    // Transient by definition: the same query succeeds once the queue
    // has drained.
    session.submit(SLOW_MSEED_T4).unwrap().wait().unwrap();
}

/// A panicking chunk decode fails exactly one query with the typed
/// error, quarantines that query text in its session only, leaks no
/// pins or staged bytes, surfaces in the metrics, and leaves every
/// other session (and the rest of the data) fully usable.
#[test]
fn panic_is_isolated_quarantined_and_leak_free() {
    let _x = exclusive();
    let dir = TempDir::new("resilience-panic");
    let logs = dir.join("logs");
    generate_event_logs(&logs, &EventLogSpec::small(3, 48)).unwrap();
    let chunks = chunk_files(&logs);
    assert!(chunks.len() >= 2, "need a victim and a healthy chunk");
    let victim = chunks[0].clone();
    let config = SommelierConfig {
        max_threads: 4,
        fault_plan: Some(FaultPlan {
            panic_uris: vec![victim.clone()],
            ..FaultPlan::default()
        }),
        ..SommelierConfig::default()
    };
    let server = Server::new(Arc::new(eventlog_system(&logs, config)));
    let poisoned = server.open_session(SessionOptions::default());
    let bystander = server.open_session(SessionOptions::default());

    let all_rows = "SELECT COUNT(*) AS n FROM eventview WHERE E.val > -1000000000";
    let err = poisoned.submit(all_rows).unwrap().wait().unwrap_err();
    match &err {
        ServerError::Query(SommelierError::QueryPanicked { query, payload }) => {
            assert_eq!(query, all_rows, "the error names the query");
            assert!(payload.contains("injected panic"), "payload survives: {payload}");
        }
        other => panic!("expected QueryPanicked, got {other}"),
    }
    // Resubmitting the poison text fails fast — no second trip through
    // the worker pool.
    assert_eq!(poisoned.quarantined_count(), 1);
    assert!(matches!(
        poisoned.submit(all_rows).unwrap_err(),
        ServerError::Quarantined { .. }
    ));
    // Quarantine is per-session: the bystander may still try (and also
    // panics — the chunk is deterministically poisoned), proving the
    // first panic poisoned neither the server nor the session registry.
    assert_eq!(bystander.quarantined_count(), 0);
    // The rest of the data remains queryable from any session.
    let healthy = &chunks[1];
    let r = bystander
        .submit(&format!("SELECT COUNT(*) AS n FROM eventview WHERE G.uri = '{healthy}'"))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(r.relation.rows(), 1);
    let somm = server.sommelier();
    assert_eq!(somm.cellar().unwrap().total_pins(), 0, "panicked wave released its pins");
    assert_eq!(somm.prefetch_stage().map_or(0, |s| s.staged_bytes()), 0);
    assert!(
        somm.metrics_snapshot().counter("query.panicked") >= Some(1),
        "panics are counted"
    );
    assert!(
        somm.quarantined_chunks().is_empty(),
        "a panic is a code bug, not a bad chunk: the chunk registry must not quarantine it"
    );
}

/// Bounded starvation under the server: a saturating stream of High
/// queries on a tiny worker pool cannot starve a Low session forever —
/// aging promotes the Low batches one rank per `sched_aging_ms`.
#[test]
fn aging_keeps_low_priority_progressing_under_saturating_high_tenant() {
    let _x = exclusive();
    let dir = TempDir::new("resilience-aging");
    let repo = fiam_repo(&dir, 4);
    let config = SommelierConfig {
        max_threads: 2,
        sched_aging_ms: 10,
        use_recycler: false,
        sim_chunk_io: Some(SimIo { per_page: Duration::from_millis(10) }),
        ..SommelierConfig::default()
    };
    let server = Server::new(Arc::new(mseed_system(&repo, config)));
    let stop = Arc::new(AtomicBool::new(false));
    let mut hogs = Vec::new();
    for _ in 0..2 {
        let srv = server.clone();
        let stop = Arc::clone(&stop);
        hogs.push(std::thread::spawn(move || {
            let session = srv.open_session(SessionOptions {
                priority: Priority::High,
                ..Default::default()
            });
            while !stop.load(Ordering::Relaxed) {
                session.submit(SLOW_MSEED_T4).unwrap().wait().unwrap();
            }
        }));
    }
    // Let the High tenant saturate both workers first.
    std::thread::sleep(Duration::from_millis(100));
    let low =
        server.open_session(SessionOptions { priority: Priority::Low, ..Default::default() });
    let t0 = Instant::now();
    let r = low.submit(SLOW_MSEED_T4).unwrap().wait();
    let waited = t0.elapsed();
    stop.store(true, Ordering::Relaxed);
    for h in hogs {
        h.join().unwrap();
    }
    assert!(r.is_ok(), "Low query must complete under High saturation: {:?}", r.err());
    assert!(
        waited < Duration::from_secs(60),
        "Low made progress in bounded time, waited {waited:?}"
    );
}

/// Tiny deterministic PRNG (xorshift64*) so the chaos schedule is a
/// pure function of its seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// What the seeded schedule does with one submitted query.
#[derive(Clone, Copy, Debug)]
enum Action {
    /// Wait for completion.
    Wait,
    /// Cancel after the given number of milliseconds.
    CancelAfter(u64),
    /// Submit with a tight timeout.
    Timeout(u64),
}

/// The deterministic chaos harness: one seeded schedule composes every
/// failure mode this PR hardens — injected transient faults and latency
/// spikes on every chunk, one deterministically panicking chunk,
/// mid-query cancellation, tight timeouts, admission saturation with a
/// tiny queue — driven by six concurrent clients. Every surviving query
/// must be byte-identical to the fault-free reference, every failure
/// must be one of the typed lifecycle errors, the pin/staged ledgers
/// must balance to zero afterwards, a fresh query must still succeed —
/// and then a shutdown fired while freshly loaded must drain clean.
#[test]
fn chaos_schedule_survivors_byte_identical_and_leak_free() {
    let _x = exclusive();
    let dir = TempDir::new("resilience-chaos");
    let logs = dir.join("logs");
    generate_event_logs(&logs, &EventLogSpec::small(3, 48)).unwrap();
    let chunks = chunk_files(&logs);
    assert!(chunks.len() >= 3, "need a victim and several healthy chunks");
    let victim = chunks[0].clone();
    let healthy: Vec<&String> = chunks.iter().filter(|c| **c != victim).collect();

    // The workload: a metadata-only query, per-healthy-chunk data
    // queries (decode work whose byte-identity is meaningful, pruned
    // away from the poisoned chunk), and one poison query that must
    // reach the panicking chunk. DMd-derived tables (Y) are excluded:
    // their derivation scans every chunk, which would make any query
    // touching them a second poison query.
    let mut workload: Vec<String> =
        vec!["SELECT COUNT(*) AS n FROM G WHERE host = 'web-1'".into()];
    for c in &healthy {
        workload.push(format!("SELECT COUNT(*) AS n FROM eventview WHERE G.uri = '{c}'"));
        workload.push(format!("SELECT AVG(E.val) FROM eventview WHERE G.uri = '{c}'"));
    }
    let poison_op = workload.len();
    workload.push("SELECT COUNT(*) AS n FROM eventview WHERE E.val > -1000000000".into());

    // Fault-free reference bytes for every workload position.
    let clean = eventlog_system(&logs, SommelierConfig::default());
    let reference: Vec<String> = workload
        .iter()
        .map(|sql| format!("{:?}", clean.query(sql).unwrap().relation))
        .collect();
    drop(clean);

    // The chaos system: transient faults within the retry budget,
    // latency spikes, the panicking victim chunk, slow simulated chunk
    // reads (so cancels land mid-flight), and a starved admission queue
    // (so saturation rejects with retry-after).
    let config = SommelierConfig {
        max_threads: 4,
        use_recycler: false,
        sim_chunk_io: Some(SimIo { per_page: Duration::from_millis(5) }),
        admission_max_concurrent: 2,
        admission_queue_limit: 3,
        fault_plan: Some(FaultPlan {
            transient_rate: 0.4,
            spike_rate: 0.2,
            spike: Duration::from_millis(2),
            panic_uris: vec![victim.clone()],
            ..FaultPlan::default()
        }),
        ..SommelierConfig::default()
    };
    let server = Server::new(Arc::new(eventlog_system(&logs, config)));

    // The seeded schedule: 48 operations, each a (workload op, action)
    // pair, drawn deterministically. Same seed, same schedule.
    const SEED: u64 = 0x01ce_2015_c4a6;
    let mut rng = Rng(SEED);
    let ops: Vec<(usize, Action)> = (0..48)
        .map(|k| {
            // Every 8th op is the poison query; the rest spread over
            // the healthy workload.
            let q = if k % 8 == 7 { poison_op } else { rng.below(poison_op as u64) as usize };
            let action = match rng.below(10) {
                0..=5 => Action::Wait,
                6..=7 => Action::CancelAfter(rng.below(30)),
                _ => Action::Timeout(1 + rng.below(40)),
            };
            (q, action)
        })
        .collect();

    let survivors = AtomicUsize::new(0);
    let failures = AtomicUsize::new(0);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let server = server.clone();
            let ops = &ops;
            let workload = &workload;
            let reference = &reference;
            let survivors = &survivors;
            let failures = &failures;
            let cursor = &cursor;
            scope.spawn(move || {
                let session = server.open_session(SessionOptions::default());
                loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(q, action)) = ops.get(k) else { break };
                    let sql = &workload[q];
                    let submitted = match action {
                        Action::Timeout(ms) => session.submit_with(
                            sql,
                            &SubmitOptions {
                                timeout: Some(Duration::from_millis(ms)),
                                ..Default::default()
                            },
                        ),
                        _ => session.submit(sql),
                    };
                    let res = match submitted {
                        Ok(handle) => {
                            if let Action::CancelAfter(ms) = action {
                                std::thread::sleep(Duration::from_millis(ms));
                                handle.cancel();
                            }
                            handle.wait()
                        }
                        Err(e) => Err(e),
                    };
                    match res {
                        Ok(r) => {
                            assert_ne!(
                                q, poison_op,
                                "op {k}: the poison query cannot succeed"
                            );
                            assert_eq!(
                                format!("{:?}", r.relation),
                                reference[q],
                                "op {k} (workload {q}) survived but drifted from the \
                                 fault-free reference"
                            );
                            survivors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            // Honor (a capped slice of) the advertised
                            // backpressure before taking the next op.
                            if let ServerError::Overloaded { retry_after_ms, .. } = &e {
                                std::thread::sleep(Duration::from_millis(
                                    (*retry_after_ms).min(10),
                                ));
                            }
                            // Chaos may fail a query, but only with a
                            // typed lifecycle error.
                            let typed = matches!(
                                e,
                                ServerError::Cancelled
                                    | ServerError::TimedOut
                                    | ServerError::Overloaded { .. }
                                    | ServerError::Quarantined { .. }
                                    | ServerError::Query(
                                        SommelierError::QueryPanicked { .. }
                                    )
                            );
                            assert!(typed, "op {k} (workload {q}) failed untyped: {e}");
                            if matches!(
                                e,
                                ServerError::Quarantined { .. }
                                    | ServerError::Query(
                                        SommelierError::QueryPanicked { .. }
                                    )
                            ) {
                                assert_eq!(
                                    q, poison_op,
                                    "op {k}: only the poison query panics"
                                );
                            }
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let survivors = survivors.load(Ordering::Relaxed);
    let failures = failures.load(Ordering::Relaxed);
    assert_eq!(survivors + failures, ops.len(), "every op resolved");
    assert!(survivors > 0, "chaos must not kill the whole schedule");
    assert!(failures > 0, "a schedule with no failures exercised nothing");

    // The invariant ledger after the storm: zero pins, zero staged
    // bytes, and a fresh query still succeeds.
    let somm = Arc::clone(server.sommelier());
    assert_eq!(somm.cellar().unwrap().total_pins(), 0, "chaos leaked pins");
    assert_eq!(
        somm.prefetch_stage().map_or(0, |s| s.staged_bytes()),
        0,
        "chaos leaked staging"
    );
    let fresh = server.open_session(SessionOptions::default());
    let h = healthy[0];
    let r = fresh
        .submit(&format!("SELECT COUNT(*) AS n FROM eventview WHERE G.uri = '{h}'"))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(r.relation.rows(), 1, "the system serves fresh queries after the storm");

    // Finale: shutdown while freshly loaded. Submit a wave, then drain.
    let mut wave = Vec::new();
    for c in healthy.iter().take(4) {
        wave.push(
            fresh
                .submit(&format!("SELECT AVG(E.val) FROM eventview WHERE G.uri = '{c}'"))
                .unwrap(),
        );
    }
    let report = server.shutdown(Duration::from_secs(120));
    assert!(report.is_clean(), "shutdown-while-loaded left unbalanced books: {report:?}");
    for h in wave {
        // Loaded-at-shutdown queries either drained to completion,
        // were woken out of the admission queue with the typed
        // shutdown error, or were cancelled at the deadline — all
        // clean outcomes.
        match h.wait() {
            Ok(r) => assert_eq!(r.relation.rows(), 1),
            Err(e) => assert!(
                matches!(e, ServerError::Cancelled | ServerError::ShuttingDown),
                "untyped: {e}"
            ),
        }
    }
    assert!(matches!(fresh.submit("SELECT 1").unwrap_err(), ServerError::ShuttingDown));
}
