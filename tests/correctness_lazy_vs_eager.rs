//! The fundamental guarantee of the paper's system: partial loading is
//! *transparent*. Every loading approach must return identical answers
//! for every query type — lazy ingestion, the two-stage rewrite, index
//! joins and incremental DMd derivation are pure optimizations.

use sommelier_core::{LoadingMode, QueryType, SommelierConfig};
use sommelier_integration::{ingv_repo, prepared, TempDir};
use sommelier_storage::Value;

/// The five benchmark queries over the same small dataset.
fn queries() -> Vec<(&'static str, String)> {
    vec![
        (
            "T1",
            "SELECT COUNT(*) AS n, SUM(S.sample_count) AS total FROM segview \
             WHERE F.station = 'ISK'"
                .to_string(),
        ),
        (
            "T2",
            "SELECT window_start_ts, window_max_val, window_min_val, window_mean_val, \
             window_std_dev FROM H \
             WHERE window_station = 'ISK' AND window_channel = 'BHE' \
             AND window_start_ts >= '2010-01-01T00:00:00.000' \
             AND window_start_ts < '2010-01-02T00:00:00.000' \
             ORDER BY window_start_ts"
                .to_string(),
        ),
        (
            "T3",
            "SELECT H.window_start_ts, H.window_max_val, F.network FROM windowview \
             WHERE F.station = 'ISK' AND F.channel = 'BHE' \
             AND H.window_start_ts >= '2010-01-01T06:00:00.000' \
             AND H.window_start_ts < '2010-01-02T00:00:00.000' \
             ORDER BY window_start_ts"
                .to_string(),
        ),
        (
            "T4",
            "SELECT AVG(D.sample_value) FROM dataview \
             WHERE F.station = 'ISK' AND F.channel = 'BHE' \
             AND D.sample_time >= '2010-01-01T03:00:00.000' \
             AND D.sample_time < '2010-01-02T21:00:00.000'"
                .to_string(),
        ),
        (
            "T5",
            "SELECT COUNT(*) AS n, AVG(D.sample_value) AS a FROM windowdataview \
             WHERE F.station = 'ISK' AND F.channel = 'BHE' \
             AND H.window_start_ts >= '2010-01-01T00:00:00.000' \
             AND H.window_start_ts < '2010-01-03T00:00:00.000' \
             AND H.window_max_val > 1000"
                .to_string(),
        ),
    ]
}

/// Render a relation to a canonical string for comparison.
fn canonical(rel: &sommelier_engine::Relation) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = (0..rel.rows())
        .map(|r| {
            rel.columns()
                .iter()
                .map(|(_, c)| match c.get(r) {
                    // Normalize float formatting to survive summation
                    // order differences across parallel loads.
                    Value::Float(f) => format!("{:.9e}", f),
                    other => other.to_string(),
                })
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn all_modes_agree_on_all_query_types() {
    let dir = TempDir::new("agree");
    let repo = ingv_repo(&dir, 3, 64);
    // Reference: eager_plain.
    let reference = prepared(&repo, LoadingMode::EagerPlain, SommelierConfig::default());
    let expected: Vec<_> = queries()
        .iter()
        .map(|(name, sql)| {
            let r = reference.query(sql).unwrap_or_else(|e| panic!("{name}: {e}"));
            (name.to_string(), canonical(&r.relation))
        })
        .collect();
    // Every reference result must be non-trivial, otherwise the test
    // proves nothing.
    for (name, rows) in &expected {
        assert!(!rows.is_empty(), "{name} reference result is empty");
    }
    for mode in [
        LoadingMode::EagerCsv,
        LoadingMode::EagerIndex,
        LoadingMode::EagerDmd,
        LoadingMode::Lazy,
    ] {
        let somm = prepared(&repo, mode, SommelierConfig::default());
        for ((name, sql), (_, want)) in queries().iter().zip(&expected) {
            let got = somm.query(sql).unwrap_or_else(|e| panic!("{name} under {mode}: {e}"));
            assert_eq!(
                &canonical(&got.relation),
                want,
                "{name} result diverges under {mode}"
            );
        }
    }
}

#[test]
fn classification_is_mode_independent() {
    let dir = TempDir::new("classify");
    let repo = ingv_repo(&dir, 2, 16);
    let expected =
        [QueryType::T1, QueryType::T2, QueryType::T3, QueryType::T4, QueryType::T5];
    for mode in [LoadingMode::Lazy, LoadingMode::EagerIndex] {
        let somm = prepared(&repo, mode, SommelierConfig::default());
        for ((name, sql), want) in queries().iter().zip(expected) {
            let got = somm.query(sql).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(got.qtype, want, "{name} under {mode:?}");
        }
    }
}

#[test]
fn repeated_queries_are_stable_under_caching() {
    // Results must not change as the recycler fills up / evicts.
    let dir = TempDir::new("stable");
    let repo = ingv_repo(&dir, 3, 64);
    let config = SommelierConfig { recycler_bytes: 64 * 1024, ..SommelierConfig::default() };
    let somm = prepared(&repo, LoadingMode::Lazy, config);
    let (_, t4) = &queries()[3];
    let first = canonical(&somm.query(t4).unwrap().relation);
    for _ in 0..3 {
        assert_eq!(canonical(&somm.query(t4).unwrap().relation), first);
    }
    // Caches flushed: still identical.
    somm.flush_caches();
    assert_eq!(canonical(&somm.query(t4).unwrap().relation), first);
}

#[test]
fn lazy_aggregate_matches_manual_recomputation() {
    // Cross-check AVG against COUNT + SUM computed by separate queries.
    let dir = TempDir::new("manual");
    let repo = ingv_repo(&dir, 2, 64);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let range = "D.sample_time >= '2010-01-01T00:00:00.000' \
                 AND D.sample_time < '2010-01-02T00:00:00.000'";
    let avg = somm
        .query(&format!(
            "SELECT AVG(D.sample_value) AS a FROM dataview \
             WHERE F.station = 'FIAM' AND {range}"
        ))
        .unwrap();
    let parts = somm
        .query(&format!(
            "SELECT COUNT(*) AS n, SUM(D.sample_value) AS s FROM dataview \
             WHERE F.station = 'FIAM' AND {range}"
        ))
        .unwrap();
    let a = match avg.relation.value(0, "a").unwrap() {
        Value::Float(v) => v,
        other => panic!("unexpected {other:?}"),
    };
    let n = match parts.relation.value(0, "n").unwrap() {
        Value::Int(v) => v as f64,
        other => panic!("unexpected {other:?}"),
    };
    let s = match parts.relation.value(0, "s").unwrap() {
        Value::Float(v) => v,
        other => panic!("unexpected {other:?}"),
    };
    assert!(n > 0.0);
    assert!((a - s / n).abs() < 1e-9, "AVG {a} vs SUM/COUNT {}", s / n);
}
