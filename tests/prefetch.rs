//! Prefetch pipeline end to end: answers stay byte-identical to the
//! classic fused fetch+decode path at every window depth, under
//! transient faults, and under a ~1-chunk cellar budget (where the
//! window must degrade to depth 0 instead of deadlocking or busting
//! the budget); cancellation mid-prefetch leaves zero staged bytes and
//! zero pinned chunks.

use sommelier_core::adapters::{generate_event_logs, EventLogAdapter, EventLogSpec};
use sommelier_core::{
    FaultPlan, LoadingMode, ObsLevel, QueryOptions, RetryPolicy, Sommelier, SommelierConfig,
    SommelierError,
};
use sommelier_engine::EngineError;
use sommelier_integration::{ingv_repo, TempDir};
use sommelier_mseed::{MseedAdapter, Repository};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn config(threads: usize, depth: usize) -> SommelierConfig {
    SommelierConfig {
        max_threads: threads,
        prefetch_depth: depth,
        ..SommelierConfig::default()
    }
}

fn mseed_system(repo: &Repository, cfg: SommelierConfig) -> Sommelier {
    Sommelier::builder()
        .source(MseedAdapter::new(Repository::at(repo.dir())))
        .config(cfg)
        .build()
        .unwrap()
}

fn eventlog_repo(dir: &TempDir, days: u32, events: u32) -> PathBuf {
    let logs = dir.join("logs");
    generate_event_logs(&logs, &EventLogSpec::small(days, events)).unwrap();
    logs
}

fn eventlog_system(logs: &Path, cfg: SommelierConfig) -> Sommelier {
    Sommelier::builder().source(EventLogAdapter::new(logs)).config(cfg).build().unwrap()
}

/// The paper's taxonomy against the seismology source.
fn mseed_queries() -> Vec<&'static str> {
    vec![
        "SELECT COUNT(*) AS n FROM F WHERE station = 'ISK'",
        "SELECT window_start_ts, window_max_val FROM H \
         WHERE window_station = 'ISK' AND window_channel = 'BHE' \
         AND window_start_ts < '2010-01-01T04:00:00.000' \
         ORDER BY window_start_ts",
        "SELECT COUNT(*) AS n FROM windowview \
         WHERE F.station = 'ISK' AND H.window_max_val > -1000000000 \
         AND H.window_start_ts < '2010-01-01T04:00:00.000'",
        "SELECT AVG(D.sample_value) FROM dataview \
         WHERE F.station = 'ISK' AND F.channel = 'BHE' \
         AND D.sample_time >= '2010-01-01T00:00:00.000' \
         AND D.sample_time < '2010-01-02T00:00:00.000'",
        "SELECT AVG(D.sample_value) FROM windowdataview \
         WHERE F.station = 'ISK' AND H.window_max_val > -1000000000 \
         AND H.window_start_ts < '2010-01-01T04:00:00.000'",
    ]
}

/// The same taxonomy against the event-log source.
fn eventlog_queries() -> Vec<&'static str> {
    vec![
        "SELECT COUNT(*) AS n FROM G WHERE host = 'web-1'",
        "SELECT day_start_ts, day_max_val FROM Y \
         WHERE day_host = 'web-1' AND day_service = 'api' \
         AND day_start_ts < '2011-03-03T00:00:00.000' \
         ORDER BY day_start_ts",
        "SELECT COUNT(*) AS n FROM dayview \
         WHERE G.host = 'web-1' AND Y.day_max_val > 0 \
         AND Y.day_start_ts < '2011-03-03T00:00:00.000'",
        "SELECT AVG(E.val) FROM eventview \
         WHERE G.host = 'web-1' AND G.service = 'api' \
         AND E.ts >= '2011-03-01T00:00:00.000' \
         AND E.ts < '2011-03-02T00:00:00.000'",
        "SELECT AVG(E.val) FROM daylogview \
         WHERE G.host = 'web-1' AND Y.day_max_val > 0 \
         AND Y.day_start_ts < '2011-03-03T00:00:00.000'",
    ]
}

/// Answers to the full taxonomy, as debug strings (byte-identity).
fn answers(somm: &Sommelier, queries: &[&str], ctx: &str) -> Vec<String> {
    queries
        .iter()
        .map(|sql| {
            let r = somm.query(sql).unwrap_or_else(|e| panic!("{ctx}: {sql} failed: {e}"));
            format!("{:?}", r.relation)
        })
        .collect()
}

/// Every staged byte is gone and every pin released once queries end.
fn assert_drained(somm: &Sommelier, ctx: &str) {
    if let Some(stage) = somm.prefetch_stage() {
        assert_eq!(stage.staged_bytes(), 0, "{ctx}: staged bytes must drain to zero");
    }
    if let Some(cellar) = somm.cellar() {
        assert_eq!(cellar.total_pins(), 0, "{ctx}: no pins may outlive their query");
    }
}

/// T1–T5 at depth 0/2/8 × both adapters × lazy/eager × 1/8 workers are
/// byte-identical to the depth-0 run, and at least one lazy windowed
/// run actually consumed prefetched bytes (hits > 0).
#[test]
fn taxonomy_byte_identical_across_depths() {
    let dir = TempDir::new("prefetch-taxonomy");
    let repo = ingv_repo(&dir, 2, 32);
    let logs = eventlog_repo(&dir, 3, 32);
    let mut hits_seen = false;
    for adapter in ["mseed", "eventlog"] {
        let queries = if adapter == "mseed" { mseed_queries() } else { eventlog_queries() };
        let build = |depth: usize, threads: usize| -> Sommelier {
            if adapter == "mseed" {
                mseed_system(&repo, config(threads, depth))
            } else {
                eventlog_system(&logs, config(threads, depth))
            }
        };
        for mode in [LoadingMode::Lazy, LoadingMode::EagerIndex] {
            for threads in [1usize, 8] {
                // Control: same adapter, mode, and worker count with the
                // window off — the classic fused fetch+decode path.
                let reference = {
                    let somm = build(0, threads);
                    assert!(somm.prefetch_stage().is_none(), "depth 0 builds no stage");
                    somm.prepare(mode).unwrap();
                    answers(&somm, &queries, &format!("{adapter} {mode} x{threads} depth=0"))
                };
                for depth in [2usize, 8] {
                    let ctx = format!("{adapter} {mode} x{threads} depth={depth}");
                    let somm = build(depth, threads);
                    somm.prepare(mode).unwrap();
                    assert_eq!(
                        answers(&somm, &queries, &ctx),
                        reference,
                        "{ctx}: answers must be byte-identical to depth 0"
                    );
                    assert_drained(&somm, &ctx);
                    if mode == LoadingMode::Lazy {
                        let (_, hits, _, _) = somm.prefetch_stage().unwrap().stats();
                        hits_seen |= hits > 0;
                    }
                }
            }
        }
    }
    assert!(hits_seen, "at least one lazy run must consume prefetched bytes");
}

/// Prefetch + fault injection compose: at a 50% transient fault rate
/// (faults fire on the IO thread, inside the prefetched fetch) every
/// answer matches the fault-free depth-0 run, nothing is quarantined,
/// and no staged bytes leak.
#[test]
fn byte_identical_under_transient_faults() {
    let dir = TempDir::new("prefetch-faults");
    let repo = ingv_repo(&dir, 2, 32);
    let logs = eventlog_repo(&dir, 3, 32);
    let mut faults_seen = false;
    for adapter in ["mseed", "eventlog"] {
        let queries = if adapter == "mseed" { mseed_queries() } else { eventlog_queries() };
        let build = |cfg: SommelierConfig| -> Sommelier {
            if adapter == "mseed" {
                mseed_system(&repo, cfg)
            } else {
                eventlog_system(&logs, cfg)
            }
        };
        let reference = {
            let somm = build(config(8, 0));
            somm.prepare(LoadingMode::Lazy).unwrap();
            answers(&somm, &queries, &format!("{adapter} clean reference"))
        };
        for depth in [2usize, 8] {
            let ctx = format!("{adapter} depth={depth} faults=0.5");
            let somm = build(SommelierConfig {
                fault_plan: Some(FaultPlan::transient(0.5)),
                ..config(8, depth)
            });
            somm.prepare(LoadingMode::Lazy).unwrap();
            assert_eq!(answers(&somm, &queries, &ctx), reference, "{ctx}");
            assert!(
                somm.quarantined_chunks().is_empty(),
                "{ctx}: transient never quarantines"
            );
            assert_drained(&somm, &ctx);
            faults_seen |= somm.fault_counts().unwrap().transient > 0;
        }
    }
    assert!(faults_seen, "a 50% fault rate must inject something");
}

/// Under a cellar budget of roughly one chunk, a deep window degrades
/// to (near) depth 0: queries still answer correctly, nothing
/// deadlocks, and no staged bytes outlive the run.
#[test]
fn tiny_budget_degrades_to_depth_zero_without_deadlock() {
    let dir = TempDir::new("prefetch-budget");
    let logs = eventlog_repo(&dir, 3, 32);
    let queries = eventlog_queries();
    let reference = {
        let somm = eventlog_system(&logs, config(4, 0));
        somm.prepare(LoadingMode::Lazy).unwrap();
        answers(&somm, &queries, "budget reference")
    };
    // One decoded eventlog chunk here is well under 4 KiB; a 4 KiB
    // budget fits ~1 chunk, so the probe must stall the window.
    let somm = eventlog_system(
        &logs,
        SommelierConfig { cellar_bytes: Some(4 * 1024), ..config(4, 8) },
    );
    somm.prepare(LoadingMode::Lazy).unwrap();
    assert_eq!(answers(&somm, &queries, "tiny budget"), reference);
    let stage = somm.prefetch_stage().unwrap();
    assert_eq!(stage.staged_bytes(), 0, "staged bytes drain even when the budget stalls");
    assert_drained(&somm, "tiny budget");
}

/// Cancelling a query stuck retrying inside prefetched fetches (every
/// attempt fails transiently on the IO thread) releases every pin and
/// every staged byte: the window is abandoned, late publishes are
/// counted as wasted, nothing leaks.
#[test]
fn cancellation_mid_prefetch_releases_staged_bytes_and_pins() {
    let dir = TempDir::new("prefetch-cancel");
    let logs = eventlog_repo(&dir, 3, 32);
    let somm = eventlog_system(
        &logs,
        SommelierConfig {
            fault_plan: Some(FaultPlan {
                transient_rate: 1.0,
                max_transient_per_chunk: u32::MAX,
                ..FaultPlan::default()
            }),
            io_retry: RetryPolicy {
                max_attempts: 100_000,
                base_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(5),
            },
            ..config(4, 8)
        },
    );
    somm.prepare(LoadingMode::Lazy).unwrap();
    let opts =
        QueryOptions { timeout: Some(Duration::from_millis(50)), ..Default::default() };
    // T4-shaped (no internal derivation, so the timeout token reaches
    // every load) but spanning all three days: the window issues
    // several fetches before the deadline hits.
    let t4_all_days = "SELECT AVG(E.val) FROM eventview \
         WHERE G.host = 'web-1' AND G.service = 'api' \
         AND E.ts >= '2011-03-01T00:00:00.000' \
         AND E.ts < '2011-03-04T00:00:00.000'";
    let err = somm.query_opts(t4_all_days, &opts).unwrap_err();
    assert!(
        matches!(err, SommelierError::Engine(EngineError::Cancelled { .. })),
        "expected cancellation, got {err:?}"
    );
    assert_eq!(somm.cellar().unwrap().total_pins(), 0, "zero pins after cancel");
    // IO threads notice the cancel at their next retry checkpoint;
    // give them a moment, then demand a fully drained stage.
    let stage = somm.prefetch_stage().unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while stage.staged_bytes() != 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(stage.staged_bytes(), 0, "cancellation mid-prefetch must leak nothing");
}

/// The observability surface: `prefetch.*` counters in the metrics
/// snapshot and a `prefetch` span in the EXPLAIN ANALYZE tree.
#[test]
fn prefetch_surfaces_in_metrics_and_spans() {
    let dir = TempDir::new("prefetch-obs");
    let logs = eventlog_repo(&dir, 3, 32);
    let somm = eventlog_system(
        &logs,
        SommelierConfig { observability: ObsLevel::Spans, ..config(4, 2) },
    );
    somm.prepare(LoadingMode::Lazy).unwrap();
    // T5 touches two chunks cold: the second one's bytes arrive via the
    // window while the first decodes.
    let text = somm.explain_analyze(eventlog_queries()[4]).unwrap();
    assert!(text.contains("prefetch"), "EXPLAIN ANALYZE missing prefetch span:\n{text}");
    let snap = somm.metrics_snapshot();
    assert!(snap.counter("prefetch.issued") >= Some(1), "issued counted");
    assert!(snap.counter("prefetch.hits") >= Some(1), "hits counted");
    assert!(snap.counter("prefetch.wasted_bytes").is_some());
    assert!(snap.counter("prefetch.io_wait_ns").is_some());
    assert_eq!(snap.gauge("prefetch.staged_bytes"), Some(0));
}
