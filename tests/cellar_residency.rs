//! Cellar invariants, end to end:
//!
//! 1. **Budget safety** — after any sequence of queries, resident chunk
//!    bytes never exceed the configured budget (property test).
//! 2. **Transparency** — a budget-constrained system returns
//!    byte-identical results to an unbounded one, whatever the
//!    sequence (the partial-loading guarantee of
//!    `correctness_lazy_vs_eager`, extended to partial *unloading*).
//! 3. **Single-flight** — N threads issuing the same query concurrently
//!    decode each needed chunk exactly once.
//! 4. **Reclamation** — evicting a chunk invalidates the DMd coverage
//!    derived from it, and Algorithm 1 transparently re-derives.

use proptest::prelude::*;
use sommelier_core::{LoadingMode, QueryType, Sommelier, SommelierConfig};
use sommelier_integration::{fiam_repo, prepared, TempDir};
use sommelier_storage::time::{days_from_civil, format_ts, MS_PER_DAY};
use std::sync::{Arc, OnceLock};

const DAYS: i64 = 10;

/// One shared 10-day FIAM repository for the property tests (generated
/// once; each case builds fresh systems over it).
fn shared_repo() -> &'static TempDir {
    static REPO: OnceLock<TempDir> = OnceLock::new();
    REPO.get_or_init(|| {
        let dir = TempDir::new("cellar-prop");
        fiam_repo(&dir, DAYS as u32, 64);
        dir
    })
}

fn t4_query(start_day: i64, window: i64) -> String {
    let d0 = days_from_civil(2010, 1, 1);
    format!(
        "SELECT AVG(D.sample_value) FROM dataview \
         WHERE D.sample_time >= '{}' AND D.sample_time < '{}'",
        format_ts((d0 + start_day) * MS_PER_DAY),
        format_ts((d0 + start_day + window) * MS_PER_DAY)
    )
}

fn canonical(rel: &sommelier_engine::Relation) -> Vec<String> {
    (0..rel.rows())
        .map(|r| {
            rel.columns()
                .iter()
                .map(|(_, c)| match c.get(r) {
                    sommelier_storage::Value::Float(f) => format!("{f:.9e}"),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect()
}

fn budgeted_config(budget: usize) -> SommelierConfig {
    SommelierConfig { cellar_bytes: Some(budget), ..SommelierConfig::default() }
}

proptest! {
    /// Any query sequence, tiny budget: residency never exceeds the
    /// budget once the query returns, and every answer matches an
    /// unbounded twin system's byte for byte.
    #[test]
    fn budget_is_never_exceeded_and_answers_never_change(
        queries in proptest::collection::vec((0i64..9, 1i64..4), 1..6),
        budget_kb in 1usize..80,
    ) {
        let repo = sommelier_mseed::Repository::at(shared_repo().join("repo"));
        let budget = budget_kb * 1024;
        let bounded = prepared(&repo, LoadingMode::Lazy, budgeted_config(budget));
        let unbounded = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
        let cellar = bounded.cellar().expect("prepared");
        for &(start, w) in &queries {
            let window = w.min(DAYS - start);
            let sql = t4_query(start, window);
            let got = bounded.query(&sql).unwrap();
            let want = unbounded.query(&sql).unwrap();
            prop_assert_eq!(
                canonical(&got.relation),
                canonical(&want.relation),
                "bounded vs unbounded diverged on {:?}",
                sql
            );
            prop_assert!(
                cellar.resident_bytes() <= budget,
                "resident {} exceeds budget {} after {}",
                cellar.resident_bytes(),
                budget,
                sql
            );
        }
    }
}

/// The acceptance-criteria configuration: a budget of 10 % of the
/// dataset's decoded bytes, swept over the whole repository repeatedly.
#[test]
fn ten_percent_budget_matches_unbounded_results() {
    let dir = TempDir::new("cellar-10pct");
    let repo = fiam_repo(&dir, 10, 64);
    // Calibrate: decoded size of the full working set.
    let unbounded = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let full_scan = t4_query(0, DAYS);
    unbounded.query(&full_scan).unwrap();
    let total = unbounded.cellar().unwrap().peak_resident_bytes();
    let budget = (total / 10).max(1);

    let bounded = prepared(&repo, LoadingMode::Lazy, budgeted_config(budget));
    let cellar = bounded.cellar().unwrap();
    // Two full passes of sliding windows plus a full scan: plenty of
    // evictions and reloads.
    let mut sqls: Vec<String> = Vec::new();
    for _ in 0..2 {
        for start in 0..DAYS - 1 {
            sqls.push(t4_query(start, 2));
        }
    }
    sqls.push(full_scan);
    for sql in &sqls {
        let got = bounded.query(sql).unwrap();
        let want = unbounded.query(sql).unwrap();
        assert_eq!(canonical(&got.relation), canonical(&want.relation), "diverged on {sql}");
        assert!(
            cellar.resident_bytes() <= budget,
            "resident {} exceeds budget {budget} after {sql}",
            cellar.resident_bytes()
        );
    }
    let s = cellar.stats();
    assert!(s.evictions > 0, "a 10% budget must evict: {s:?}");
    assert!(s.reloads > 0, "a repeated workload over a 10% budget must reload: {s:?}");
}

/// Eight threads, same query, one decode per chunk (single-flight), and
/// `Sommelier::query` is safe to call concurrently.
#[test]
fn concurrent_identical_queries_decode_each_chunk_once() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Sommelier>();

    let dir = TempDir::new("cellar-flight");
    let repo = fiam_repo(&dir, 6, 64);
    let somm = Arc::new(prepared(&repo, LoadingMode::Lazy, SommelierConfig::default()));
    let sql = t4_query(0, 6);
    let barrier = Arc::new(std::sync::Barrier::new(8));
    let results: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let somm = Arc::clone(&somm);
                let sql = sql.clone();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let r = somm.query(&sql).unwrap();
                    assert_eq!(r.stats.files_selected, 6);
                    canonical(&r.relation)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &results[1..] {
        assert_eq!(r, &results[0], "concurrent queries must agree");
    }
    let s = somm.cellar().unwrap().stats();
    assert_eq!(s.loads, 6, "each of the 6 chunks decoded exactly once: {s:?}");
    assert_eq!(s.reloads, 0);
    assert_eq!(s.hits + s.joins + s.loads, 8 * 6, "every acquisition accounted for: {s:?}");
}

/// Concurrent DMd-referring queries: Algorithm 1 must derive each
/// window exactly once (no duplicate `H` inserts, no PK trips), and
/// coverage invalidation from concurrent evictions must never make a
/// query's windows vanish mid-flight. Runs a mixed T2 + T4 storm over
/// one day under a tight budget; every query must succeed and agree
/// with an unbounded reference.
#[test]
fn concurrent_dmd_queries_derive_once_and_stay_consistent() {
    let dir = TempDir::new("cellar-dmd-race");
    let repo = fiam_repo(&dir, 3, 64);
    let t2 = "SELECT window_start_ts, window_max_val FROM H \
              WHERE window_station = 'FIAM' AND window_channel = 'HHZ' \
              AND window_start_ts >= '2010-01-01T00:00:00.000' \
              AND window_start_ts < '2010-01-02T00:00:00.000' \
              ORDER BY window_start_ts";
    let reference = {
        let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
        canonical(&somm.query(t2).unwrap().relation)
    };
    assert_eq!(reference.len(), 24, "one window per hour of the day");

    // Budget of one byte: every chunk release tries to evict+invalidate.
    let somm = Arc::new(prepared(&repo, LoadingMode::Lazy, budgeted_config(1)));
    let barrier = Arc::new(std::sync::Barrier::new(8));
    std::thread::scope(|scope| {
        for i in 0..8 {
            let somm = Arc::clone(&somm);
            let barrier = Arc::clone(&barrier);
            let reference = &reference;
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..3 {
                    if i % 2 == 0 {
                        let r = somm.query(t2).unwrap_or_else(|e| panic!("T2 failed: {e}"));
                        assert_eq!(&canonical(&r.relation), reference, "T2 diverged");
                    } else {
                        somm.query(&t4_query(0, 1))
                            .unwrap_or_else(|e| panic!("T4 failed: {e}"));
                    }
                }
            });
        }
    });
    // However the storm interleaved, H holds each window at most once.
    let h_rows = somm.db().table_rows("H").unwrap();
    assert!(h_rows <= 24, "duplicate windows materialized: {h_rows}");
    // And a final quiet query still agrees.
    assert_eq!(canonical(&somm.query(t2).unwrap().relation), reference);
}

/// Evicting a chunk invalidates the DMd windows derived from it; a
/// later DMd query re-runs Algorithm 1 and gets identical rows.
#[test]
fn eviction_invalidates_dmd_coverage_and_rederives() {
    let dir = TempDir::new("cellar-dmd");
    let repo = fiam_repo(&dir, 4, 64);
    let t2 = "SELECT window_start_ts, window_max_val, window_mean_val FROM H \
              WHERE window_station = 'FIAM' AND window_channel = 'HHZ' \
              AND window_start_ts >= '2010-01-01T00:00:00.000' \
              AND window_start_ts < '2010-01-02T00:00:00.000' \
              ORDER BY window_start_ts";

    // Reference: unbounded system derives once, then serves from H.
    let unbounded = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let first = unbounded.query(t2).unwrap();
    assert_eq!(first.qtype, QueryType::T2);
    assert!(first.dmd.as_ref().unwrap().missing > 0);
    let again = unbounded.query(t2).unwrap();
    assert_eq!(again.dmd.as_ref().unwrap().missing, 0, "coverage persists unbounded");

    // A 1-byte budget evicts (and reclaims) every chunk at release.
    let bounded = prepared(&repo, LoadingMode::Lazy, budgeted_config(1));
    let b1 = bounded.query(t2).unwrap();
    assert!(b1.dmd.as_ref().unwrap().missing > 0);
    assert_eq!(
        canonical(&b1.relation),
        canonical(&first.relation),
        "bounded first derivation agrees"
    );
    // The derivation's own chunk release precedes coverage marking, so
    // the freshly derived view survives it.
    let h_rows = bounded.db().table_rows("H").unwrap();
    assert!(h_rows > 0, "derived windows materialized");
    let covered = bounded.dmd_manager().covered_count();
    assert!(covered > 0);

    // A T4 over the same day re-loads the chunk; its eviction at
    // release now finds derived coverage and reclaims it: the windows
    // leave PSm and their H rows are deleted.
    bounded.query(&t4_query(0, 1)).unwrap();
    assert_eq!(bounded.db().table_rows("H").unwrap(), 0, "H rows reclaimed");
    assert_eq!(bounded.dmd_manager().covered_count(), 0, "coverage invalidated");
    let s = bounded.cellar().unwrap().stats();
    assert!(s.reclaimed_rows >= h_rows, "H rows deleted by reclamation: {s:?}");

    // The next identical query transparently re-derives.
    let b2 = bounded.query(t2).unwrap();
    assert!(b2.dmd.as_ref().unwrap().missing > 0, "re-derivation after eviction");
    assert_eq!(canonical(&b2.relation), canonical(&first.relation));
}
