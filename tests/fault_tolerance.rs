//! Fault-tolerant chunk IO end to end: deterministic injection at the
//! decode seam, retry/backoff recovery that stays byte-identical to the
//! fault-free run, strict-vs-skip degradation, chunk quarantine, and
//! pin hygiene under cancellation mid-backoff.

use sommelier_core::adapters::{generate_event_logs, EventLogAdapter, EventLogSpec};
use sommelier_core::{
    DegradationPolicy, FaultPlan, LoadingMode, ObsLevel, QueryOptions, RetryPolicy,
    Sommelier, SommelierConfig, SommelierError,
};
use sommelier_engine::EngineError;
use sommelier_integration::{ingv_repo, TempDir};
use sommelier_mseed::{MseedAdapter, Repository};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn config(threads: usize, plan: Option<FaultPlan>) -> SommelierConfig {
    SommelierConfig { max_threads: threads, fault_plan: plan, ..SommelierConfig::default() }
}

fn mseed_system(repo: &Repository, cfg: SommelierConfig) -> Sommelier {
    Sommelier::builder()
        .source(MseedAdapter::new(Repository::at(repo.dir())))
        .config(cfg)
        .build()
        .unwrap()
}

fn eventlog_repo(dir: &TempDir, days: u32, events: u32) -> PathBuf {
    let logs = dir.join("logs");
    generate_event_logs(&logs, &EventLogSpec::small(days, events)).unwrap();
    logs
}

fn eventlog_system(logs: &Path, cfg: SommelierConfig) -> Sommelier {
    Sommelier::builder().source(EventLogAdapter::new(logs)).config(cfg).build().unwrap()
}

/// Every chunk file under `dir`, sorted (chunk URIs are file paths for
/// both built-in adapters).
fn chunk_files(dir: &Path) -> Vec<String> {
    fn walk(dir: &Path, out: &mut Vec<String>) {
        for e in std::fs::read_dir(dir).unwrap().flatten() {
            let p = e.path();
            if p.is_dir() {
                walk(&p, out);
            } else {
                out.push(p.to_string_lossy().into_owned());
            }
        }
    }
    let mut out = Vec::new();
    walk(dir, &mut out);
    out.sort();
    out
}

/// The paper's taxonomy against the seismology source.
fn mseed_queries() -> Vec<&'static str> {
    vec![
        "SELECT COUNT(*) AS n FROM F WHERE station = 'ISK'",
        "SELECT window_start_ts, window_max_val FROM H \
         WHERE window_station = 'ISK' AND window_channel = 'BHE' \
         AND window_start_ts < '2010-01-01T04:00:00.000' \
         ORDER BY window_start_ts",
        "SELECT COUNT(*) AS n FROM windowview \
         WHERE F.station = 'ISK' AND H.window_max_val > -1000000000 \
         AND H.window_start_ts < '2010-01-01T04:00:00.000'",
        "SELECT AVG(D.sample_value) FROM dataview \
         WHERE F.station = 'ISK' AND F.channel = 'BHE' \
         AND D.sample_time >= '2010-01-01T00:00:00.000' \
         AND D.sample_time < '2010-01-02T00:00:00.000'",
        "SELECT AVG(D.sample_value) FROM windowdataview \
         WHERE F.station = 'ISK' AND H.window_max_val > -1000000000 \
         AND H.window_start_ts < '2010-01-01T04:00:00.000'",
    ]
}

/// The same taxonomy against the event-log source.
fn eventlog_queries() -> Vec<&'static str> {
    vec![
        "SELECT COUNT(*) AS n FROM G WHERE host = 'web-1'",
        "SELECT day_start_ts, day_max_val FROM Y \
         WHERE day_host = 'web-1' AND day_service = 'api' \
         AND day_start_ts < '2011-03-03T00:00:00.000' \
         ORDER BY day_start_ts",
        "SELECT COUNT(*) AS n FROM dayview \
         WHERE G.host = 'web-1' AND Y.day_max_val > 0 \
         AND Y.day_start_ts < '2011-03-03T00:00:00.000'",
        "SELECT AVG(E.val) FROM eventview \
         WHERE G.host = 'web-1' AND G.service = 'api' \
         AND E.ts >= '2011-03-01T00:00:00.000' \
         AND E.ts < '2011-03-02T00:00:00.000'",
        "SELECT AVG(E.val) FROM daylogview \
         WHERE G.host = 'web-1' AND Y.day_max_val > 0 \
         AND Y.day_start_ts < '2011-03-03T00:00:00.000'",
    ]
}

/// T1–T5 on both adapters × lazy/eager × 1/8 workers stay byte-identical
/// to the fault-free run when half of all load attempts fail with
/// injected transient IO errors: the retry budget (4 attempts) absorbs
/// the per-chunk fault bound (2).
#[test]
fn taxonomy_byte_identical_under_transient_faults() {
    let dir = TempDir::new("faults-taxonomy");
    let repo = ingv_repo(&dir, 2, 32);
    let logs = eventlog_repo(&dir, 3, 32);
    let mut lazy_faults_seen = false;
    for mode in [LoadingMode::Lazy, LoadingMode::EagerIndex] {
        for threads in [1usize, 8] {
            for adapter in ["mseed", "eventlog"] {
                let plan = Some(FaultPlan::transient(0.5));
                let (clean, faulty, queries) = if adapter == "mseed" {
                    (
                        mseed_system(&repo, config(threads, None)),
                        mseed_system(&repo, config(threads, plan)),
                        mseed_queries(),
                    )
                } else {
                    (
                        eventlog_system(&logs, config(threads, None)),
                        eventlog_system(&logs, config(threads, plan)),
                        eventlog_queries(),
                    )
                };
                clean.prepare(mode).unwrap();
                faulty.prepare(mode).unwrap();
                for (i, sql) in queries.iter().enumerate() {
                    let ctx = format!("{adapter} T{} {mode} x{threads}", i + 1);
                    let a = clean.query(sql).unwrap();
                    let b = faulty
                        .query(sql)
                        .unwrap_or_else(|e| panic!("{ctx} failed under faults: {e}"));
                    assert_eq!(
                        format!("{:?}", a.relation),
                        format!("{:?}", b.relation),
                        "{ctx}: answers must be byte-identical under transient faults"
                    );
                    assert!(b.degraded.is_none(), "{ctx}: retries are not degradation");
                }
                if mode == LoadingMode::Lazy {
                    lazy_faults_seen |= faulty.fault_counts().unwrap().transient > 0;
                }
            }
        }
    }
    assert!(lazy_faults_seen, "lazy runs at 50% fault rate must inject something");
}

/// Retries surface in the observability layer: a `retry` span under the
/// load span in EXPLAIN ANALYZE, and the `fault.*` counter family in
/// the metrics snapshot.
#[test]
fn retries_surface_in_spans_and_metrics() {
    let dir = TempDir::new("faults-obs");
    let logs = eventlog_repo(&dir, 3, 32);
    let somm = eventlog_system(
        &logs,
        SommelierConfig {
            observability: ObsLevel::Spans,
            fault_plan: Some(FaultPlan::transient(1.0)),
            ..SommelierConfig::default()
        },
    );
    somm.prepare(LoadingMode::Lazy).unwrap();
    // Rate 1.0: the first load of every chunk hits its per-chunk fault
    // budget, so the very first data query must retry.
    let text = somm.explain_analyze(eventlog_queries()[3]).unwrap();
    assert!(text.contains("retry"), "EXPLAIN ANALYZE missing retry span:\n{text}");
    let snap = somm.metrics_snapshot();
    assert!(snap.counter("fault.io_retries") >= Some(1), "retries counted");
    assert!(snap.counter("fault.faults_injected") >= Some(1), "injections counted");
    assert_eq!(snap.counter("fault.chunks_quarantined"), Some(0));
    assert_eq!(snap.counter("fault.queries_degraded"), Some(0));
}

/// A permanently corrupt chunk fails a Strict query with a typed error
/// naming the chunk, quarantines it, and never poisons unrelated (or
/// even repeated) queries; the quarantined file is not touched again.
#[test]
fn strict_permanent_failure_quarantines_without_poisoning() {
    let dir = TempDir::new("faults-strict");
    let logs = eventlog_repo(&dir, 2, 48);
    let chunks = chunk_files(&logs);
    let victim = chunks[0].clone();
    let somm = eventlog_system(
        &logs,
        config(
            4,
            Some(FaultPlan { corrupt_uris: vec![victim.clone()], ..FaultPlan::default() }),
        ),
    );
    somm.prepare(LoadingMode::Lazy).unwrap();
    let all_rows = "SELECT COUNT(*) AS n FROM eventview WHERE E.val > -1000000000";
    let err = somm.query(all_rows).unwrap_err();
    assert!(err.to_string().contains(&victim), "error must name the chunk: {err}");
    assert!(
        matches!(
            &err,
            SommelierError::Engine(EngineError::ChunkLoad { uri, .. }) if *uri == victim
        ),
        "typed chunk-load error expected, got {err:?}"
    );
    let quarantined = somm.quarantined_chunks();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0].0, victim);
    let touched = somm.fault_counts().unwrap().corrupt;
    assert!(touched >= 1);
    // Repeating the query still fails (strict) — but via the
    // quarantine list, without re-reading the broken file.
    let err2 = somm.query(all_rows).unwrap_err();
    assert!(err2.to_string().contains("quarantined"), "{err2}");
    assert_eq!(somm.fault_counts().unwrap().corrupt, touched, "file not re-touched");
    // Metadata-only and disjoint data queries are untouched.
    somm.query(eventlog_queries()[0]).unwrap();
    let other = chunks.iter().find(|c| **c != victim).unwrap();
    let r = somm
        .query(&format!("SELECT COUNT(*) AS n FROM eventview WHERE G.uri = '{other}'"))
        .unwrap();
    assert_eq!(r.relation.rows(), 1);
    assert_eq!(somm.metrics_snapshot().counter("fault.chunks_quarantined"), Some(1));
}

/// SkipUnreadable completes over the readable subset and reports
/// exactly what was skipped: total row count drops by precisely the
/// victim chunk's rows.
#[test]
fn skip_mode_answers_over_readable_subset_with_accurate_report() {
    let dir = TempDir::new("faults-skip");
    let logs = eventlog_repo(&dir, 2, 48);
    let victim = chunk_files(&logs)[0].clone();
    let clean = eventlog_system(&logs, config(4, None));
    clean.prepare(LoadingMode::Lazy).unwrap();
    let faulty = eventlog_system(
        &logs,
        config(
            4,
            Some(FaultPlan { corrupt_uris: vec![victim.clone()], ..FaultPlan::default() }),
        ),
    );
    faulty.prepare(LoadingMode::Lazy).unwrap();
    let count = |r: &sommelier_core::QueryResult| match r.relation.value(0, "n").unwrap() {
        sommelier_storage::Value::Int(n) => n,
        other => panic!("unexpected {other:?}"),
    };
    let all_rows = "SELECT COUNT(*) AS n FROM eventview WHERE E.val > -1000000000";
    let total = count(&clean.query(all_rows).unwrap());
    let victim_rows = count(
        &clean
            .query(&format!("SELECT COUNT(*) AS n FROM eventview WHERE G.uri = '{victim}'"))
            .unwrap(),
    );
    assert!(victim_rows > 0, "victim chunk must hold rows for the test to mean anything");
    let opts =
        QueryOptions { degradation: DegradationPolicy::SkipUnreadable, ..Default::default() };
    let r = faulty.query_opts(all_rows, &opts).unwrap();
    assert_eq!(count(&r), total - victim_rows, "answer covers exactly the readable rest");
    assert_eq!(r.stats.files_skipped, 1);
    let d = r.degraded.expect("degraded report present");
    assert_eq!(d.skipped_chunks, vec![victim.clone()]);
    assert!(d.reasons[0].contains("bad magic"), "reason carries the cause: {}", d.reasons[0]);
    // The skip quarantined the chunk; a second skip query still reports
    // it (via stage 1) without touching the file again.
    let touched = faulty.fault_counts().unwrap().corrupt;
    let r2 = faulty.query_opts(all_rows, &opts).unwrap();
    assert_eq!(count(&r2), total - victim_rows);
    assert_eq!(r2.degraded.unwrap().skipped_chunks, vec![victim]);
    assert_eq!(faulty.fault_counts().unwrap().corrupt, touched);
    assert!(faulty.metrics_snapshot().counter("fault.queries_degraded") >= Some(2));
}

/// Cancelling a query stuck in retry/backoff (every attempt failing
/// transiently, effectively an unbounded retry budget) releases every
/// pin and quarantines nothing.
#[test]
fn cancellation_during_backoff_releases_all_pins() {
    let dir = TempDir::new("faults-cancel");
    let logs = eventlog_repo(&dir, 2, 32);
    let somm = eventlog_system(
        &logs,
        SommelierConfig {
            max_threads: 4,
            fault_plan: Some(FaultPlan {
                transient_rate: 1.0,
                max_transient_per_chunk: u32::MAX,
                ..FaultPlan::default()
            }),
            io_retry: RetryPolicy {
                max_attempts: 100_000,
                base_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(5),
            },
            ..SommelierConfig::default()
        },
    );
    somm.prepare(LoadingMode::Lazy).unwrap();
    let opts =
        QueryOptions { timeout: Some(Duration::from_millis(50)), ..Default::default() };
    let err = somm.query_opts(eventlog_queries()[3], &opts).unwrap_err();
    assert!(
        matches!(err, SommelierError::Engine(EngineError::Cancelled { .. })),
        "expected cancellation, got {err:?}"
    );
    let cellar = somm.cellar().unwrap();
    assert_eq!(cellar.total_pins(), 0, "cancelled query must leave zero pinned chunks");
    assert!(somm.quarantined_chunks().is_empty(), "transient faults never quarantine");
    assert!(somm.fault_counts().unwrap().transient > 0, "the query did hit the injector");
}
