//! Disk-backed operation: catalog persistence, buffer-pool behaviour on
//! cold runs, and the simulated-I/O substitution used by the figures.

use sommelier_core::{LoadingMode, SommelierConfig};
use sommelier_integration::{disk_system, fiam_repo, open_system, TempDir};
use sommelier_storage::buffer::{BufferPoolConfig, SimIo};
use sommelier_storage::Database;
use std::time::Duration;

#[test]
fn disk_backed_prepare_and_query() {
    let dir = TempDir::new("disk");
    let repo = fiam_repo(&dir, 3, 64);
    let somm = disk_system(&dir.join("db"), &repo, SommelierConfig::default()).unwrap();
    somm.prepare(LoadingMode::EagerPlain).unwrap();
    assert!(somm.db_bytes() > 0, "column files on disk");
    let r = somm
        .query(
            "SELECT COUNT(*) AS n FROM dataview \
             WHERE D.sample_time < '2010-01-04T00:00:00.000'",
        )
        .unwrap();
    assert!(r.relation.value(0, "n").unwrap().as_i64().unwrap() > 0);
}

#[test]
fn database_reopens_with_data_intact() {
    let dir = TempDir::new("reopen");
    let repo = fiam_repo(&dir, 2, 32);
    let db_dir = dir.join("db");
    let rows_before;
    {
        let somm = disk_system(&db_dir, &repo, SommelierConfig::default()).unwrap();
        somm.prepare(LoadingMode::EagerPlain).unwrap();
        rows_before = somm.db().table_rows("D").unwrap();
        assert!(rows_before > 0);
    }
    // Re-open at the storage level: catalog + data must be intact.
    let db = Database::open(&db_dir, BufferPoolConfig::default()).unwrap();
    assert_eq!(db.table_rows("D").unwrap(), rows_before);
    assert_eq!(db.table_rows("F").unwrap(), 2);
    let schema = db.table_schema("D").unwrap();
    assert_eq!(schema.columns.len(), 4);
    // Scanning after reopen works (reads through the buffer pool).
    let cols = db.scan_columns("D", &["sample_value"]).unwrap();
    assert_eq!(cols[0].len() as u64, rows_before);
}

#[test]
fn cold_runs_miss_the_buffer_pool() {
    let dir = TempDir::new("cold");
    let repo = fiam_repo(&dir, 2, 64);
    let somm = disk_system(&dir.join("db"), &repo, SommelierConfig::default()).unwrap();
    somm.prepare(LoadingMode::EagerPlain).unwrap();
    let sql = "SELECT AVG(D.sample_value) FROM dataview \
               WHERE D.sample_time < '2010-01-02T00:00:00.000'";
    somm.query(sql).unwrap();
    let warm = somm.db().pool().stats().snapshot();
    somm.query(sql).unwrap();
    let hot = somm.db().pool().stats().snapshot();
    assert_eq!(hot.misses, warm.misses, "hot run: all hits");
    assert!(hot.hits > warm.hits);
    somm.flush_caches();
    somm.query(sql).unwrap();
    let cold = somm.db().pool().stats().snapshot();
    assert!(cold.misses > hot.misses, "cold run re-reads pages");
}

#[test]
fn simulated_io_slows_pool_misses() {
    // The DESIGN.md substitution for the paper's disk-bound regimes:
    // a per-page latency charged on misses must make cold scans
    // measurably slower, and leave hot scans alone.
    let dir = TempDir::new("simio");
    let repo = fiam_repo(&dir, 2, 256);
    let config = SommelierConfig {
        sim_io: Some(SimIo { per_page: Duration::from_millis(2) }),
        ..SommelierConfig::default()
    };
    let somm = disk_system(&dir.join("db"), &repo, config).unwrap();
    somm.prepare(LoadingMode::EagerPlain).unwrap();
    let sql = "SELECT AVG(D.sample_value) FROM dataview \
               WHERE D.sample_time < '2010-01-03T00:00:00.000'";
    somm.flush_caches();
    let t = std::time::Instant::now();
    somm.query(sql).unwrap();
    let cold = t.elapsed();
    let t = std::time::Instant::now();
    somm.query(sql).unwrap();
    let hot = t.elapsed();
    assert!(
        cold > hot * 2,
        "simulated I/O should separate cold ({cold:?}) from hot ({hot:?})"
    );
}

#[test]
fn buffer_pool_budget_bounds_residency() {
    let dir = TempDir::new("budget");
    let repo = fiam_repo(&dir, 4, 256);
    let config =
        SommelierConfig { buffer_pool_bytes: 256 * 1024, ..SommelierConfig::default() };
    let somm = disk_system(&dir.join("db"), &repo, config).unwrap();
    somm.prepare(LoadingMode::EagerPlain).unwrap();
    somm.query(
        "SELECT AVG(D.sample_value) FROM dataview \
         WHERE D.sample_time < '2010-01-05T00:00:00.000'",
    )
    .unwrap();
    assert!(somm.db().pool().resident_bytes() <= 256 * 1024, "pool stays within budget");
    assert!(somm.db().pool().stats().snapshot().evictions > 0);
}

#[test]
fn sommelier_reopens_prepared_database() {
    let dir = TempDir::new("somm-reopen");
    let repo = fiam_repo(&dir, 3, 64);
    let db_dir = dir.join("db");
    let sql = "SELECT AVG(D.sample_value) FROM dataview \
               WHERE D.sample_time < '2010-01-03T00:00:00.000'";
    let (want, h_rows) = {
        let somm = disk_system(&db_dir, &repo, SommelierConfig::default()).unwrap();
        somm.prepare(LoadingMode::Lazy).unwrap();
        let want = somm.query(sql).unwrap();
        // Materialize some DMd so the reopen can recover coverage.
        somm.query(
            "SELECT window_max_val FROM H \
             WHERE window_station = 'FIAM' AND window_channel = 'HHZ' \
             AND window_start_ts < '2010-01-01T05:00:00.000'",
        )
        .unwrap();
        (want.relation.value(0, "avg").unwrap(), somm.db().table_rows("H").unwrap())
    };
    assert!(h_rows > 0);
    // Reopen: lazy mode inferred (D empty), registry rebuilt from F/S,
    // DMd coverage recovered from H.
    let somm = open_system(&db_dir, &repo, SommelierConfig::default()).unwrap();
    assert_eq!(somm.mode(), Some(LoadingMode::Lazy));
    assert_eq!(somm.registered_chunks(), 3);
    assert!(somm.dmd_manager().covered_count() >= h_rows as usize);
    let got = somm.query(sql).unwrap();
    assert_eq!(got.relation.value(0, "avg").unwrap(), want);
    // Previously derived windows are not re-derived.
    let r = somm
        .query(
            "SELECT window_max_val FROM H \
             WHERE window_station = 'FIAM' AND window_channel = 'HHZ' \
             AND window_start_ts < '2010-01-01T05:00:00.000'",
        )
        .unwrap();
    assert_eq!(r.dmd.unwrap().missing, 0);
}

#[test]
fn second_create_in_same_dir_fails() {
    let dir = TempDir::new("dup");
    let repo = fiam_repo(&dir, 1, 16);
    let db_dir = dir.join("db");
    let _first = disk_system(&db_dir, &repo, SommelierConfig::default()).unwrap();
    assert!(disk_system(&db_dir, &repo, SommelierConfig::default()).is_err());
}

#[test]
fn reopened_system_restores_prepared_mode() {
    // The mode-inference bug this guards against: a reopened
    // `EagerIndex` database used to silently downgrade to `EagerPlain`
    // (the mode was guessed from D's row count), losing
    // `use_index_joins` after every restart. The mode is persisted now.
    let dir = TempDir::new("mode-persist");
    let repo = fiam_repo(&dir, 2, 32);
    let db_dir = dir.join("db");
    let sql = "SELECT AVG(D.sample_value) FROM dataview \
               WHERE D.sample_time < '2010-01-02T00:00:00.000'";
    let want = {
        let somm = disk_system(&db_dir, &repo, SommelierConfig::default()).unwrap();
        somm.prepare(LoadingMode::EagerIndex).unwrap();
        assert!(somm.db().join_index("D", "F").is_some());
        somm.query(sql).unwrap().relation.value(0, "avg").unwrap()
    };
    let somm = open_system(&db_dir, &repo, SommelierConfig::default()).unwrap();
    assert_eq!(somm.mode(), Some(LoadingMode::EagerIndex), "mode restored, not guessed");
    // Join indices are rebuilt on open so index-join plans still work.
    assert!(somm.db().join_index("D", "F").is_some());
    assert_eq!(somm.query(sql).unwrap().relation.value(0, "avg").unwrap(), want);
}
