//! Behavioural properties of the two-stage execution model: which
//! chunks get loaded, how the recycler changes access paths, and how
//! selectivity drives work (the mechanisms behind Figs. 7–9).

use sommelier_core::{LoadingMode, SommelierConfig};
use sommelier_integration::{fiam_repo, ingv_repo, prepared, TempDir};

#[test]
fn chunk_loads_scale_with_time_selectivity() {
    let dir = TempDir::new("selectivity");
    let repo = fiam_repo(&dir, 10, 32);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let mut loaded = Vec::new();
    for days in [1, 4, 10] {
        somm.flush_caches();
        let r = somm
            .query(&format!(
                "SELECT AVG(D.sample_value) FROM dataview \
                 WHERE D.sample_time >= '2010-01-01T00:00:00.000' \
                 AND D.sample_time < '2010-01-{:02}T00:00:00.000'",
                1 + days
            ))
            .unwrap();
        loaded.push(r.stats.files_loaded);
    }
    assert!(loaded[0] <= 2, "one day touches at most 2 chunks, got {}", loaded[0]);
    assert!(loaded[0] < loaded[1] && loaded[1] < loaded[2], "monotone: {loaded:?}");
    assert_eq!(loaded[2], 10, "full range loads every chunk");
}

#[test]
fn station_predicate_prunes_other_stations() {
    let dir = TempDir::new("station-prune");
    let repo = ingv_repo(&dir, 5, 32); // 4 stations × 5 days
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let r = somm
        .query(
            "SELECT COUNT(*) FROM dataview WHERE F.station = 'TRI' \
             AND D.sample_time < '2010-01-06T00:00:00.000'",
        )
        .unwrap();
    assert_eq!(r.stats.files_selected, 5, "only TRI's five chunks");
}

#[test]
fn metadata_only_queries_load_nothing() {
    let dir = TempDir::new("meta-only");
    let repo = ingv_repo(&dir, 3, 32);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let r = somm.query("SELECT station, COUNT(*) AS files FROM F GROUP BY station").unwrap();
    assert_eq!(r.relation.rows(), 4);
    assert_eq!(r.stats.files_loaded, 0);
    assert_eq!(r.stats.files_selected, 0);
    assert_eq!(somm.cellar().unwrap().resident_chunks(), 0);
    // T1 with joins: still metadata-only.
    let r = somm
        .query("SELECT SUM(S.sample_count) FROM segview WHERE F.station = 'AQU'")
        .unwrap();
    assert_eq!(r.stats.files_loaded, 0);
}

#[test]
fn recycler_turns_loads_into_cache_scans() {
    let dir = TempDir::new("recycler");
    let repo = fiam_repo(&dir, 6, 32);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    // Mid-day boundaries: segment end times sit exactly on day
    // boundaries, where float rounding may (soundly) over-select the
    // neighbouring chunk; 12:00 cut points are unambiguous.
    let q = |from: u32, to: u32| {
        format!(
            "SELECT AVG(D.sample_value) FROM dataview \
             WHERE D.sample_time >= '2010-01-{from:02}T12:00:00.000' \
             AND D.sample_time < '2010-01-{to:02}T12:00:00.000'"
        )
    };
    // Days 1⁠–⁠3 (half-open at noon): chunks 1, 2, 3 loaded.
    let r = somm.query(&q(1, 3)).unwrap();
    assert_eq!((r.stats.files_loaded, r.stats.cache_hits), (3, 0));
    // Days 2–5: chunks 2, 3 cached; 4, 5 loaded.
    let r = somm.query(&q(2, 5)).unwrap();
    assert_eq!((r.stats.files_loaded, r.stats.cache_hits), (2, 2));
    // Everything again: all five cached.
    let r = somm.query(&q(1, 5)).unwrap();
    assert_eq!((r.stats.files_loaded, r.stats.cache_hits), (0, 5));
}

#[test]
fn tiny_recycler_budget_evicts_and_reloads() {
    let dir = TempDir::new("evict");
    let repo = fiam_repo(&dir, 4, 64);
    let config = SommelierConfig { recycler_bytes: 1, ..SommelierConfig::default() };
    let somm = prepared(&repo, LoadingMode::Lazy, config);
    let sql = "SELECT AVG(D.sample_value) FROM dataview \
               WHERE D.sample_time < '2010-01-03T00:00:00.000'";
    let a = somm.query(sql).unwrap();
    let b = somm.query(sql).unwrap();
    assert_eq!(a.stats.files_loaded, 2);
    assert_eq!(b.stats.files_loaded, 2, "no cache: loads repeat");
    assert_eq!(b.stats.cache_hits, 0);
}

#[test]
fn disabling_recycler_behaves_like_zero_budget() {
    let dir = TempDir::new("nocache");
    let repo = fiam_repo(&dir, 3, 32);
    let config = SommelierConfig { use_recycler: false, ..SommelierConfig::default() };
    let somm = prepared(&repo, LoadingMode::Lazy, config);
    let sql = "SELECT COUNT(*) FROM dataview WHERE D.sample_time < '2010-01-02T00:00:00.000'";
    somm.query(sql).unwrap();
    let again = somm.query(sql).unwrap();
    assert_eq!(again.stats.cache_hits, 0);
    assert!(again.stats.files_loaded > 0);
}

#[test]
fn eager_modes_never_touch_the_chunk_source() {
    let dir = TempDir::new("eager-no-chunks");
    let repo = ingv_repo(&dir, 2, 32);
    for mode in [LoadingMode::EagerPlain, LoadingMode::EagerIndex, LoadingMode::EagerDmd] {
        let somm = prepared(&repo, mode, SommelierConfig::default());
        let r = somm
            .query(
                "SELECT AVG(D.sample_value) FROM dataview \
                 WHERE F.station = 'ISK' AND D.sample_time < '2010-01-02T00:00:00.000'",
            )
            .unwrap();
        assert_eq!(r.stats.files_loaded, 0, "{mode:?} reads from the database");
        assert_eq!(r.stats.files_selected, 0);
        assert_eq!(somm.cellar().unwrap().resident_chunks(), 0);
    }
}

#[test]
fn empty_chunk_selection_yields_empty_result() {
    let dir = TempDir::new("empty-selection");
    let repo = ingv_repo(&dir, 2, 32);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    // A station that does not exist.
    let r = somm
        .query("SELECT COUNT(*) AS n, AVG(D.sample_value) AS a FROM dataview WHERE F.station = 'XXXX'")
        .unwrap();
    assert_eq!(r.stats.files_selected, 0);
    // Global aggregate over an empty input: zero rows (engine contract).
    assert_eq!(r.relation.rows(), 0);
    // A time range before any data.
    let r = somm
        .query(
            "SELECT COUNT(*) AS n FROM dataview \
             WHERE D.sample_time < '2009-01-01T00:00:00.000'",
        )
        .unwrap();
    assert_eq!(r.stats.files_selected, 0);
}

#[test]
fn explain_reflects_access_path_rewrites() {
    let dir = TempDir::new("explain-paths");
    let repo = ingv_repo(&dir, 2, 16);
    let lazy = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let eager = prepared(&repo, LoadingMode::EagerIndex, SommelierConfig::default());
    let sql = "SELECT AVG(D.sample_value) FROM dataview WHERE F.station = 'ISK'";
    let lazy_plan = lazy.explain(sql).unwrap();
    let eager_plan = eager.explain(sql).unwrap();
    assert!(lazy_plan.contains("LazyScan D"), "{lazy_plan}");
    assert!(lazy_plan.contains("QfMark"), "{lazy_plan}");
    assert!(!eager_plan.contains("LazyScan"), "{eager_plan}");
    assert!(!eager_plan.contains("QfMark"), "{eager_plan}");
}
