//! End-to-end behaviour of incremental metadata derivation
//! (Algorithm 1): coverage bookkeeping, partial reuse across
//! overlapping queries, and equivalence with eager materialization.

use sommelier_core::{LoadingMode, SommelierConfig};
use sommelier_integration::{fiam_repo, ingv_repo, prepared, TempDir};
use sommelier_storage::Value;

fn window_query(from_hour: &str, to_hour: &str) -> String {
    format!(
        "SELECT window_start_ts, window_max_val FROM H \
         WHERE window_station = 'FIAM' AND window_channel = 'HHZ' \
         AND window_start_ts >= '{from_hour}' AND window_start_ts < '{to_hour}' \
         ORDER BY window_start_ts"
    )
}

#[test]
fn overlapping_queries_derive_only_the_delta() {
    let dir = TempDir::new("delta");
    let repo = fiam_repo(&dir, 2, 64);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());

    // Hours [0, 6) derived.
    let r1 = somm
        .query(&window_query("2010-01-01T00:00:00.000", "2010-01-01T06:00:00.000"))
        .unwrap();
    let d1 = r1.dmd.unwrap();
    assert_eq!((d1.requested, d1.missing), (6, 6));

    // Hours [3, 9): only [6, 9) is new.
    let r2 = somm
        .query(&window_query("2010-01-01T03:00:00.000", "2010-01-01T09:00:00.000"))
        .unwrap();
    let d2 = r2.dmd.unwrap();
    assert_eq!((d2.requested, d2.missing), (6, 3), "partial reuse");

    // Strict subset: nothing new.
    let r3 = somm
        .query(&window_query("2010-01-01T04:00:00.000", "2010-01-01T08:00:00.000"))
        .unwrap();
    assert_eq!(r3.dmd.unwrap().missing, 0);
    assert_eq!(somm.dmd_manager().covered_count(), 9);
    assert_eq!(somm.db().table_rows("H").unwrap(), 9);
}

#[test]
fn derivation_matches_eager_dmd_materialization() {
    let dir = TempDir::new("equiv");
    let repo = fiam_repo(&dir, 2, 64);

    // Eagerly materialized H.
    let eager = prepared(&repo, LoadingMode::EagerDmd, SommelierConfig::default());
    // Lazily derived H over the same span.
    let lazy = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let q = window_query("2010-01-01T00:00:00.000", "2010-01-03T00:00:00.000");
    let want = eager.query(&q).unwrap();
    let got = lazy.query(&q).unwrap();
    assert_eq!(want.relation.rows(), got.relation.rows());
    assert!(want.relation.rows() > 0);
    for r in 0..want.relation.rows() {
        let a = want.relation.value(r, "window_max_val").unwrap();
        let b = got.relation.value(r, "window_max_val").unwrap();
        match (a, b) {
            (Value::Float(x), Value::Float(y)) => {
                assert!((x - y).abs() < 1e-6, "row {r}: {x} vs {y}")
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn unconstrained_station_widens_to_all_sensors() {
    let dir = TempDir::new("widen");
    let repo = ingv_repo(&dir, 1, 32); // 4 stations × 1 day
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    // No station predicate: PSq spans all four sensors for one hour.
    let r = somm
        .query(
            "SELECT window_station, window_max_val FROM H \
             WHERE window_start_ts = '2010-01-01T05:00:00.000' \
             ORDER BY window_station",
        )
        .unwrap();
    let dmd = r.dmd.unwrap();
    // 4 stations × 4 channels × 1 hour (stations and channels widen
    // independently; nonexistent combinations derive to nothing).
    assert_eq!(dmd.requested, 16);
    assert_eq!(r.relation.rows(), 4, "one window per real sensor");
}

#[test]
fn derivation_rows_survive_cold_restarts_of_caches() {
    // Flushing buffer/chunk caches must not lose materialized DMd
    // (it is a table, not a cache).
    let dir = TempDir::new("cold-dmd");
    let repo = fiam_repo(&dir, 1, 64);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let q = window_query("2010-01-01T00:00:00.000", "2010-01-01T04:00:00.000");
    somm.query(&q).unwrap();
    let rows_before = somm.db().table_rows("H").unwrap();
    somm.flush_caches();
    let r = somm.query(&q).unwrap();
    assert_eq!(r.dmd.unwrap().missing, 0, "coverage survives cache flush");
    assert_eq!(somm.db().table_rows("H").unwrap(), rows_before);
}

#[test]
fn reset_dmd_forces_rederivation() {
    let dir = TempDir::new("reset");
    let repo = fiam_repo(&dir, 1, 64);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let q = window_query("2010-01-01T00:00:00.000", "2010-01-01T03:00:00.000");
    assert_eq!(somm.query(&q).unwrap().dmd.unwrap().missing, 3);
    assert_eq!(somm.query(&q).unwrap().dmd.unwrap().missing, 0);
    somm.reset_dmd().unwrap();
    assert_eq!(somm.db().table_rows("H").unwrap(), 0);
    assert_eq!(somm.query(&q).unwrap().dmd.unwrap().missing, 3);
}

#[test]
fn t5_uses_windows_to_prune_chunks() {
    // The point of DMd in the lazy system: a T5 whose window predicate
    // matches nothing must not load any chunks for stage 2 (the
    // derivation itself needs the chunks once, though).
    let dir = TempDir::new("prune");
    let repo = fiam_repo(&dir, 3, 64);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let r = somm
        .query(
            "SELECT AVG(D.sample_value) FROM windowdataview \
             WHERE F.station = 'FIAM' AND F.channel = 'HHZ' \
             AND H.window_start_ts < '2010-01-04T00:00:00.000' \
             AND H.window_max_val > 999999999",
        )
        .unwrap();
    // Derivation loaded the 3 chunks; the main query selected none.
    assert!(r.dmd.unwrap().files_loaded > 0);
    assert_eq!(r.stats.files_selected, 0, "no qualifying windows → no chunks");
    assert_eq!(r.relation.rows(), 0);
}

#[test]
fn derived_metadata_values_are_window_statistics() {
    // Cross-check one derived window against direct aggregation.
    let dir = TempDir::new("stats-check");
    let repo = fiam_repo(&dir, 1, 128);
    let somm = prepared(&repo, LoadingMode::Lazy, SommelierConfig::default());
    let window = somm
        .query(
            "SELECT window_max_val, window_min_val, window_mean_val FROM H \
             WHERE window_station = 'FIAM' AND window_channel = 'HHZ' \
             AND window_start_ts = '2010-01-01T10:00:00.000'",
        )
        .unwrap();
    assert_eq!(window.relation.rows(), 1);
    let direct = somm
        .query(
            "SELECT MAX(D.sample_value) AS mx, MIN(D.sample_value) AS mn, \
             AVG(D.sample_value) AS me FROM dataview \
             WHERE F.station = 'FIAM' \
             AND D.sample_time >= '2010-01-01T10:00:00.000' \
             AND D.sample_time < '2010-01-01T11:00:00.000'",
        )
        .unwrap();
    for (wcol, dcol) in
        [("window_max_val", "mx"), ("window_min_val", "mn"), ("window_mean_val", "me")]
    {
        let w = window.relation.value(0, wcol).unwrap();
        let d = direct.relation.value(0, dcol).unwrap();
        match (w, d) {
            (Value::Float(x), Value::Float(y)) => {
                assert!((x - y).abs() < 1e-9, "{wcol}: {x} vs {y}")
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
