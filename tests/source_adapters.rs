//! The source-adapter API, end to end: the CSV event-log adapter as a
//! genuinely different scenario, and a two-source system serving the
//! seismology and event-log schemas side by side under one cellar.

use sommelier_core::adapters::{generate_event_logs, EventLogAdapter, EventLogSpec};
use sommelier_core::{LoadingMode, QueryType, Sommelier, SommelierConfig, SourceAdapter};
use sommelier_integration::{ingv_repo, TempDir};
use sommelier_mseed::{MseedAdapter, Repository};
use std::path::{Path, PathBuf};

fn eventlog_repo(dir: &TempDir, days: u32, events: u32) -> PathBuf {
    let logs = dir.join("logs");
    generate_event_logs(&logs, &EventLogSpec::small(days, events)).unwrap();
    logs
}

fn eventlog_system(logs: &Path) -> Sommelier {
    Sommelier::builder().source(EventLogAdapter::new(logs)).build().unwrap()
}

/// One system over both sources (the tentpole scenario).
fn dual_system(repo: &Repository, logs: &Path) -> Sommelier {
    Sommelier::builder()
        .source(MseedAdapter::new(Repository::at(repo.dir())))
        .source(EventLogAdapter::new(logs))
        .config(SommelierConfig::default())
        .build()
        .unwrap()
}

/// The paper's T1–T5 taxonomy, phrased against the seismology source.
fn mseed_queries() -> Vec<(&'static str, QueryType)> {
    vec![
        ("SELECT COUNT(*) AS n FROM F WHERE station = 'ISK'", QueryType::T1),
        (
            "SELECT window_start_ts, window_max_val FROM H \
             WHERE window_station = 'ISK' AND window_channel = 'BHE' \
             AND window_start_ts < '2010-01-01T04:00:00.000' \
             ORDER BY window_start_ts",
            QueryType::T2,
        ),
        (
            "SELECT COUNT(*) AS n FROM windowview \
             WHERE F.station = 'ISK' AND H.window_max_val > -1000000000 \
             AND H.window_start_ts < '2010-01-01T04:00:00.000'",
            QueryType::T3,
        ),
        (
            "SELECT AVG(D.sample_value) FROM dataview \
             WHERE F.station = 'ISK' AND F.channel = 'BHE' \
             AND D.sample_time >= '2010-01-01T00:00:00.000' \
             AND D.sample_time < '2010-01-02T00:00:00.000'",
            QueryType::T4,
        ),
        (
            "SELECT AVG(D.sample_value) FROM windowdataview \
             WHERE F.station = 'ISK' AND H.window_max_val > -1000000000 \
             AND H.window_start_ts < '2010-01-01T04:00:00.000'",
            QueryType::T5,
        ),
    ]
}

/// The same taxonomy against the event-log source (daily summaries
/// instead of hourly windows).
fn eventlog_queries() -> Vec<(&'static str, QueryType)> {
    vec![
        ("SELECT COUNT(*) AS n FROM G WHERE host = 'web-1'", QueryType::T1),
        (
            "SELECT day_start_ts, day_max_val FROM Y \
             WHERE day_host = 'web-1' AND day_service = 'api' \
             AND day_start_ts < '2011-03-03T00:00:00.000' \
             ORDER BY day_start_ts",
            QueryType::T2,
        ),
        (
            "SELECT COUNT(*) AS n FROM dayview \
             WHERE G.host = 'web-1' AND Y.day_max_val > 0 \
             AND Y.day_start_ts < '2011-03-03T00:00:00.000'",
            QueryType::T3,
        ),
        (
            "SELECT AVG(E.val) FROM eventview \
             WHERE G.host = 'web-1' AND G.service = 'api' \
             AND E.ts >= '2011-03-01T00:00:00.000' \
             AND E.ts < '2011-03-02T00:00:00.000'",
            QueryType::T4,
        ),
        (
            "SELECT AVG(E.val) FROM daylogview \
             WHERE G.host = 'web-1' AND Y.day_max_val > 0 \
             AND Y.day_start_ts < '2011-03-03T00:00:00.000'",
            QueryType::T5,
        ),
    ]
}

/// Render a result relation deterministically (the queries above either
/// aggregate to one row or carry ORDER BY).
fn rendered(r: &sommelier_core::QueryResult) -> String {
    format!("{:?}", r.relation)
}

/// Cell-wise comparison across *loading modes*: exact for ints, texts
/// and timestamps, relative-1e-9 for floats — lazy plans aggregate
/// chunk-by-chunk (partial aggregation), so float sums may differ from
/// an eager plan's straight-line summation in the last ulp. (Serial vs
/// parallel within one mode stays byte-identical; see
/// `parallel_and_ablations.rs`.)
fn assert_results_close(
    l: &sommelier_core::QueryResult,
    e: &sommelier_core::QueryResult,
    sql: &str,
) {
    let (lr, er) = (&l.relation, &e.relation);
    assert_eq!(lr.names(), er.names(), "schema diverged on {sql}");
    assert_eq!(lr.rows(), er.rows(), "cardinality diverged on {sql}");
    for row in 0..lr.rows() {
        for name in lr.names() {
            let a = lr.value(row, name).unwrap();
            let b = er.value(row, name).unwrap();
            match (&a, &b) {
                (sommelier_storage::Value::Float(x), sommelier_storage::Value::Float(y)) => {
                    let tol = 1e-9 * x.abs().max(y.abs()).max(1.0);
                    assert!((x - y).abs() <= tol, "{name}[{row}]: {x} vs {y} on {sql}");
                }
                _ => assert_eq!(a, b, "{name}[{row}] diverged on {sql}"),
            }
        }
    }
}

#[test]
fn eventlog_lazy_matches_eager_on_all_query_types() {
    let dir = TempDir::new("evl-consistency");
    let logs = eventlog_repo(&dir, 3, 32);
    let lazy = eventlog_system(&logs);
    lazy.prepare(LoadingMode::Lazy).unwrap();
    let eager = eventlog_system(&logs);
    eager.prepare(LoadingMode::EagerIndex).unwrap();
    for (sql, expected) in eventlog_queries() {
        let l = lazy.query(sql).unwrap();
        let e = eager.query(sql).unwrap();
        assert_eq!(l.qtype, expected, "classification of {sql}");
        assert_eq!(e.qtype, expected);
        assert_results_close(&l, &e, sql);
    }
}

#[test]
fn eventlog_selective_predicate_loads_a_chunk_subset() {
    let dir = TempDir::new("evl-selectivity");
    let logs = eventlog_repo(&dir, 4, 16);
    let somm = eventlog_system(&logs);
    somm.prepare(LoadingMode::Lazy).unwrap();
    assert_eq!(somm.registered_chunks(), 8, "4 days × 2 hosts");
    // One host, one day: exactly one of the eight chunks qualifies.
    let r = somm
        .query(
            "SELECT COUNT(*) AS n FROM eventview \
             WHERE G.host = 'web-2' AND G.service = 'api' \
             AND E.ts >= '2011-03-02T00:00:00.000' \
             AND E.ts < '2011-03-03T00:00:00.000'",
        )
        .unwrap();
    assert_eq!(r.stats.files_selected, 1);
    assert_eq!(r.stats.files_loaded, 1);
    assert!(r.stats.files_loaded < somm.registered_chunks());
    assert_eq!(
        r.relation.value(0, "n").unwrap(),
        sommelier_storage::Value::Int(16),
        "the whole chunk's events qualify"
    );
}

#[test]
fn eventlog_eager_csv_round_trip_matches_plain() {
    let dir = TempDir::new("evl-csv");
    let logs = eventlog_repo(&dir, 2, 16);
    let via_csv = eventlog_system(&logs);
    let csv_report = via_csv.prepare(LoadingMode::EagerCsv).unwrap();
    assert!(csv_report.csv_bytes > 0);
    let plain = eventlog_system(&logs);
    plain.prepare(LoadingMode::EagerPlain).unwrap();
    assert_eq!(via_csv.db().table_rows("E").unwrap(), plain.db().table_rows("E").unwrap());
    let sql = "SELECT AVG(E.val) FROM eventview WHERE G.host = 'web-1'";
    assert_eq!(rendered(&via_csv.query(sql).unwrap()), rendered(&plain.query(sql).unwrap()));
}

#[test]
fn two_sources_register_into_one_system() {
    let dir = TempDir::new("dual-register");
    let repo = ingv_repo(&dir, 2, 16); // 8 seismology chunks
    let logs = eventlog_repo(&dir, 3, 16); // 6 event-log chunks
    let somm = dual_system(&repo, &logs);
    assert_eq!(somm.source_names(), vec!["mseed", "eventlog"]);
    let report = somm.prepare(LoadingMode::Lazy).unwrap();
    assert_eq!(report.registrar.files, 14, "both sources registered");
    assert_eq!(somm.registered_chunks(), 14);
    // Given metadata of both sources landed in their own tables.
    assert_eq!(somm.db().table_rows("F").unwrap(), 8);
    assert_eq!(somm.db().table_rows("G").unwrap(), 6);
    assert_eq!(somm.db().table_rows("D").unwrap(), 0);
    assert_eq!(somm.db().table_rows("E").unwrap(), 0);
}

#[test]
fn dual_source_queries_touch_only_their_own_chunks() {
    let dir = TempDir::new("dual-isolation");
    let repo = ingv_repo(&dir, 2, 16);
    let logs = eventlog_repo(&dir, 3, 16);
    let somm = dual_system(&repo, &logs);
    somm.prepare(LoadingMode::Lazy).unwrap();
    let cellar = somm.cellar().unwrap();
    // A pure actual-data query has no metadata to narrow the chunk
    // list: it must load *every* chunk of its source — and none of the
    // other source's.
    let r = somm.query("SELECT COUNT(E.val) AS n FROM E").unwrap();
    assert_eq!(r.qtype, QueryType::AdOnly);
    assert_eq!(r.stats.files_selected, 6, "all event-log chunks, no seismology chunks");
    assert_eq!(cellar.stats().loads, 6);
    let r = somm.query("SELECT COUNT(D.sample_value) AS n FROM D").unwrap();
    assert_eq!(r.stats.files_selected, 8, "all seismology chunks, no event-log chunks");
    assert_eq!(cellar.stats().loads, 14);
    // Selective queries narrow within their own source as usual.
    let r = somm
        .query(
            "SELECT AVG(D.sample_value) FROM dataview WHERE F.station = 'ISK' \
             AND D.sample_time < '2010-01-02T00:00:00.000'",
        )
        .unwrap();
    assert_eq!(r.stats.files_selected, 1);
    let r = somm
        .query(
            "SELECT AVG(E.val) FROM eventview WHERE G.host = 'web-1' \
             AND E.ts < '2011-03-02T00:00:00.000'",
        )
        .unwrap();
    assert_eq!(r.stats.files_selected, 1);
}

#[test]
fn dual_source_answers_t1_to_t5_on_each_source_lazy_equals_eager() {
    let dir = TempDir::new("dual-t1t5");
    let repo = ingv_repo(&dir, 2, 16);
    let logs = eventlog_repo(&dir, 3, 16);
    let lazy = dual_system(&repo, &logs);
    lazy.prepare(LoadingMode::Lazy).unwrap();
    let eager = dual_system(&repo, &logs);
    eager.prepare(LoadingMode::EagerIndex).unwrap();
    for (sql, expected) in mseed_queries().into_iter().chain(eventlog_queries()) {
        let l = lazy.query(sql).unwrap();
        let e = eager.query(sql).unwrap();
        assert_eq!(l.qtype, expected, "classification of {sql}");
        assert_results_close(&l, &e, sql);
        assert!(l.relation.rows() > 0, "degenerate (empty) answer for {sql}");
    }
    // Each source keeps its own derived-metadata bookkeeping.
    assert!(lazy.dmd_manager_of("mseed").unwrap().covered_count() > 0);
    assert!(lazy.dmd_manager_of("eventlog").unwrap().covered_count() > 0);
}

#[test]
fn dual_source_cross_source_query_is_rejected() {
    let dir = TempDir::new("dual-cross");
    let repo = ingv_repo(&dir, 1, 8);
    let logs = eventlog_repo(&dir, 1, 8);
    let somm = dual_system(&repo, &logs);
    somm.prepare(LoadingMode::Lazy).unwrap();
    // The binder itself has no join path between the two schemas; a
    // hand-built spec spanning sources must be refused by the router.
    let catalog = sommelier_core::source::assemble_catalog(&[
        &sommelier_mseed::mseed_descriptor(),
        &EventLogAdapter::new(dir.join("logs")).descriptor().clone(),
    ])
    .unwrap();
    let mut spec = sommelier_sql::compile("SELECT COUNT(*) AS n FROM F", &catalog).unwrap();
    spec.tables.push(sommelier_engine::TableRef {
        name: "G".into(),
        class: sommelier_storage::TableClass::MetadataGiven,
    });
    assert!(matches!(somm.query_spec(spec), Err(sommelier_core::SommelierError::Usage(_))));
}
