//! Decode-hot-path equivalence: the single-pass arena-backed chunk
//! decode and the indexed stage-1 candidate selection must never change
//! answers, only costs.
//!
//! * T1–T5 on both built-in adapters, new decode vs the retained
//!   reference decode (per-segment relations + unions), byte-identical.
//! * Per-chunk decode equality across projections, including the
//!   projection × empty-chunk regression (the projected width must
//!   survive a chunk with no rows on both adapters).
//! * The zone interval index used as the pruning pass's prefilter must
//!   leave the surviving chunk list identical to the per-chunk scan.

use sommelier_core::adapters::{
    generate_event_logs, write_log_file, EventLogAdapter, EventLogSpec,
};
use sommelier_core::chunks::{ChunkRegistry, FileEntry};
use sommelier_core::source::SourceAdapter;
use sommelier_core::{LoadingMode, QueryResult, Sommelier, SommelierConfig};
use sommelier_engine::expr::CmpOp;
use sommelier_engine::logical::LogicalPlan;
use sommelier_engine::optimizer::{self, Stage2Options, ZoneCandidates, ZoneConstraint};
use sommelier_engine::physical::ChunkRef;
use sommelier_engine::{ColumnZone, Expr, Relation};
use sommelier_integration::{ingv_repo, TempDir};
use sommelier_mseed::{MseedAdapter, Repository};
use sommelier_storage::{Database, Value};
use std::path::Path;

/// Every query decodes (no recycler), so the decode path is what runs.
fn config() -> SommelierConfig {
    SommelierConfig { use_recycler: false, ..SommelierConfig::default() }
}

fn mseed_system(repo: &Repository, reference: bool) -> Sommelier {
    let adapter = MseedAdapter::new(Repository::at(repo.dir()));
    let adapter = if reference { adapter.with_reference_decode() } else { adapter };
    let somm = Sommelier::builder().source(adapter).config(config()).build().unwrap();
    somm.prepare(LoadingMode::Lazy).unwrap();
    somm
}

fn eventlog_system(logs: &Path, reference: bool) -> Sommelier {
    let adapter = EventLogAdapter::new(logs);
    let adapter = if reference { adapter.with_reference_decode() } else { adapter };
    let somm = Sommelier::builder().source(adapter).config(config()).build().unwrap();
    somm.prepare(LoadingMode::Lazy).unwrap();
    somm
}

/// T1–T5 against the seismology source (the same shapes the optimizer
/// equivalence suite runs).
fn mseed_queries() -> Vec<&'static str> {
    vec![
        "SELECT COUNT(*) AS n FROM F WHERE station = 'ISK'",
        "SELECT window_start_ts, window_max_val FROM H \
         WHERE window_station = 'ISK' AND window_channel = 'BHE' \
         AND window_start_ts < '2010-01-01T04:00:00.000' \
         ORDER BY window_start_ts",
        "SELECT COUNT(*) AS n FROM windowview \
         WHERE F.station = 'ISK' AND H.window_max_val > -1000000000 \
         AND H.window_start_ts < '2010-01-01T04:00:00.000'",
        "SELECT AVG(D.sample_value) FROM dataview \
         WHERE F.station = 'ISK' \
         AND D.sample_time >= '2010-01-01T00:00:00.000' \
         AND D.sample_time < '2010-01-02T00:00:00.000'",
        "SELECT AVG(D.sample_value) FROM windowdataview \
         WHERE F.station = 'ISK' AND H.window_max_val > -1000000000 \
         AND H.window_start_ts < '2010-01-01T04:00:00.000'",
    ]
}

fn eventlog_queries() -> Vec<&'static str> {
    vec![
        "SELECT COUNT(*) AS n FROM G WHERE host = 'web-1'",
        "SELECT day_start_ts, day_max_val FROM Y \
         WHERE day_host = 'web-1' AND day_service = 'api' \
         AND day_start_ts < '2011-03-03T00:00:00.000' \
         ORDER BY day_start_ts",
        "SELECT COUNT(*) AS n FROM dayview \
         WHERE G.host = 'web-1' AND Y.day_max_val > 0 \
         AND Y.day_start_ts < '2011-03-03T00:00:00.000'",
        "SELECT AVG(E.val) FROM eventview WHERE G.host = 'web-1'",
        "SELECT AVG(E.val) FROM daylogview \
         WHERE G.host = 'web-1' AND Y.day_max_val > 0 \
         AND Y.day_start_ts < '2011-03-03T00:00:00.000'",
    ]
}

/// Exact bit-level rendering of a result (floats as their raw bits).
fn bits(r: &QueryResult) -> String {
    relation_bits(&r.relation)
}

fn relation_bits(rel: &Relation) -> String {
    let mut out = format!("{:?}|", rel.names());
    for row in 0..rel.rows() {
        for name in rel.names() {
            match rel.value(row, name).unwrap() {
                Value::Float(f) => out.push_str(&format!("f{:016x},", f.to_bits())),
                other => out.push_str(&format!("{other:?},")),
            }
        }
        out.push(';');
    }
    out
}

#[test]
fn mseed_t1_t5_byte_identical_new_vs_reference_decode() {
    let dir = TempDir::new("deceq-mseed");
    let repo = ingv_repo(&dir, 3, 16);
    let new = mseed_system(&repo, false);
    let reference = mseed_system(&repo, true);
    for sql in mseed_queries() {
        assert_eq!(
            bits(&new.query(sql).unwrap()),
            bits(&reference.query(sql).unwrap()),
            "single-pass decode changed the answer of {sql}"
        );
    }
}

#[test]
fn eventlog_t1_t5_byte_identical_new_vs_reference_decode() {
    let dir = TempDir::new("deceq-evl");
    let logs = dir.join("logs");
    generate_event_logs(&logs, &EventLogSpec::small(4, 64)).unwrap();
    let new = eventlog_system(&logs, false);
    let reference = eventlog_system(&logs, true);
    for sql in eventlog_queries() {
        assert_eq!(
            bits(&new.query(sql).unwrap()),
            bits(&reference.query(sql).unwrap()),
            "single-pass decode changed the answer of {sql}"
        );
    }
}

/// Chunk-level equality across projections: every registered mSEED
/// chunk decodes to bit-identical relations on both paths, for the
/// full width and for each single-column projection.
#[test]
fn mseed_per_chunk_decode_matches_reference_across_projections() {
    let dir = TempDir::new("decchunk-mseed");
    let repo = ingv_repo(&dir, 2, 32);
    let adapter = MseedAdapter::new(Repository::at(repo.dir()));
    let db = sommelier_storage::Database::in_memory(Default::default());
    for s in sommelier_mseed::adapter::all_schemas() {
        db.create_table(s, sommelier_storage::catalog::Disposition::Resident).unwrap();
    }
    let (registry, _) = sommelier_core::registrar::register_source(&db, &adapter, 2).unwrap();
    let projections: Vec<Option<Vec<String>>> = vec![
        None,
        Some(vec!["D.sample_value".into()]),
        Some(vec!["D.sample_time".into()]),
        Some(vec!["D.file_id".into(), "D.sample_value".into()]),
    ];
    for entry in registry.entries() {
        for projection in &projections {
            let p = projection.as_deref();
            let new = adapter.decode(entry, p).unwrap();
            let reference = adapter.decode_reference(entry, p).unwrap();
            assert_eq!(
                relation_bits(&new),
                relation_bits(&reference),
                "chunk {} projection {projection:?}",
                entry.uri
            );
        }
    }
}

/// Projection × empty chunk: a chunk with no rows must still produce
/// the projected width, on both adapters and both decode paths.
#[test]
fn empty_chunks_keep_projected_width() {
    let dir = TempDir::new("decempty");

    // mSEED: a zero-segment chunk file.
    let msd = dir.join("empty.msd");
    let file = sommelier_mseed::MseedFile {
        meta: sommelier_mseed::FileMeta::new("IV", "ISK", "", "BHE"),
        segments: vec![],
    };
    sommelier_mseed::write_file(&msd, &file).unwrap();
    let entry = FileEntry {
        uri: msd.to_string_lossy().into_owned(),
        file_id: 1,
        seg_base: 0,
        seg_count: 0,
        zones: vec![],
    };
    let adapter = MseedAdapter::new(Repository::at(dir.join("unused")));
    let cases: Vec<(Option<Vec<String>>, Vec<&str>)> = vec![
        (None, vec!["D.file_id", "D.seg_id", "D.sample_time", "D.sample_value"]),
        (Some(vec!["D.sample_value".into()]), vec!["D.sample_value"]),
        (
            Some(vec!["D.seg_id".into(), "D.sample_time".into()]),
            vec!["D.seg_id", "D.sample_time"],
        ),
    ];
    for (projection, want) in &cases {
        for rel in [
            adapter.decode(&entry, projection.as_deref()).unwrap(),
            adapter.decode_reference(&entry, projection.as_deref()).unwrap(),
        ] {
            assert_eq!(rel.rows(), 0);
            assert_eq!(&rel.names(), want, "projection {projection:?}");
        }
    }

    // Event log: a header-only chunk file.
    let evl = dir.join("empty.evl");
    write_log_file(&evl, "web-1", "api", 0, &[]).unwrap();
    let entry = FileEntry {
        uri: evl.to_string_lossy().into_owned(),
        file_id: 2,
        seg_base: 0,
        seg_count: 1,
        zones: vec![],
    };
    let adapter = EventLogAdapter::new(dir.join("unused"));
    let cases: Vec<(Option<Vec<String>>, Vec<&str>)> = vec![
        (None, vec!["E.log_id", "E.ts", "E.val"]),
        (Some(vec!["E.val".into()]), vec!["E.val"]),
        (Some(vec!["E.log_id".into(), "E.ts".into()]), vec!["E.log_id", "E.ts"]),
    ];
    for (projection, want) in &cases {
        for rel in [
            adapter.decode(&entry, projection.as_deref()).unwrap(),
            adapter.decode_reference(&entry, projection.as_deref()).unwrap(),
        ] {
            assert_eq!(rel.rows(), 0);
            assert_eq!(&rel.names(), want, "projection {projection:?}");
        }
    }
}

/// The pruning pass with the interval index as prefilter must keep
/// exactly the chunks the per-chunk scan keeps — same surviving list,
/// same order, same pruned count.
#[test]
fn indexed_pruning_pass_matches_per_chunk_scan() {
    // A synthetic day-partitioned registry: chunk i covers
    // [i*1000, i*1000+999] on D.sample_time; every 7th chunk has no
    // zones (never prunable).
    let entries: Vec<FileEntry> = (0..200)
        .map(|i| FileEntry {
            uri: format!("chunk-{i:04}"),
            file_id: i,
            seg_base: 0,
            seg_count: 1,
            zones: if i % 7 == 0 {
                vec![]
            } else {
                vec![ColumnZone {
                    column: "D.sample_time".into(),
                    min: Value::Time(i * 1000),
                    max: Value::Time(i * 1000 + 999),
                }]
            },
        })
        .collect();
    let registry = ChunkRegistry::new(entries);
    let chunk_refs: Vec<ChunkRef> = registry
        .entries()
        .iter()
        .map(|e| ChunkRef { uri: e.uri.clone(), cached: false })
        .collect();

    // A window predicate pushed down onto the lazy scan.
    let plan = LogicalPlan::LazyScan {
        table: "D".into(),
        columns: vec!["D.sample_time".into(), "D.sample_value".into()],
        predicate: Some(
            Expr::col("D.sample_time").cmp(CmpOp::Ge, Expr::lit(Value::Time(42_000))).and(
                Expr::col("D.sample_time").cmp(CmpOp::Lt, Expr::lit(Value::Time(51_000))),
            ),
        ),
    };
    let db = Database::in_memory(Default::default());
    let opts = Stage2Options {
        use_index_joins: false,
        pushdown: true,
        projection_pushdown: true,
        zone_map_pruning: true,
    };
    let zones = |uri: &str| registry.zones_of(uri);
    let candidates = |constraints: &[ZoneConstraint]| -> Option<ZoneCandidates> {
        registry.zone_candidates(constraints)
    };

    let indexed = optimizer::rewrite_stage2(
        &plan,
        &db,
        Some(chunk_refs.clone()),
        Some(&zones),
        Some(&candidates),
        None,
        &opts,
    )
    .unwrap();
    let scanned = optimizer::rewrite_stage2(
        &plan,
        &db,
        Some(chunk_refs.clone()),
        Some(&zones),
        None,
        None,
        &opts,
    )
    .unwrap();

    let uris = |chunks: &Option<Vec<ChunkRef>>| -> Vec<String> {
        chunks.as_ref().unwrap().iter().map(|c| c.uri.clone()).collect()
    };
    assert_eq!(uris(&indexed.chunks), uris(&scanned.chunks));
    assert_eq!(indexed.pruned, scanned.pruned);
    // The window covers the zoned chunks 42..=50 (minus the two that
    // are 7-multiples and hence unzoned) plus all 29 unzoned chunks.
    assert_eq!(indexed.chunks.as_ref().unwrap().len(), 7 + 29);
    assert!(indexed.pruned > 0);
    let detail = indexed
        .trace
        .iter()
        .find(|t| t.name == "zone_map_pruning")
        .expect("pass traced")
        .detail
        .clone();
    assert!(detail.contains("indexed"), "prefilter path recorded: {detail}");
}
